"""Normalised sets of time intervals.

The appendix requires that, per variable instantiation, the satisfaction
intervals stored in ``R_g`` be non-overlapping **and non-consecutive**:
"there is a non-zero gap separating intervals in tuples that give identical
values to corresponding variables".  :class:`IntervalSet` maintains exactly
that invariant — its intervals are sorted, pairwise disjoint, and no two of
them are mergeable in the set's time domain — so the algorithm's chain
construction can rely on it.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.errors import TemporalError
from repro.temporal.domain import DENSE, TimeDomain
from repro.temporal.interval import Interval


class IntervalSet:
    """An immutable, normalised union of closed time intervals.

    Construction coalesces overlapping / adjacent intervals according to the
    given :class:`~repro.temporal.TimeDomain`.  All set operations return new
    instances in the same domain.
    """

    __slots__ = ("_intervals", "_domain")

    def __init__(
        self,
        intervals: Iterable[Interval] = (),
        domain: TimeDomain = DENSE,
    ) -> None:
        self._domain = domain
        self._intervals: tuple[Interval, ...] = self._normalise(intervals, domain)

    @staticmethod
    def _normalise(
        intervals: Iterable[Interval], domain: TimeDomain
    ) -> tuple[Interval, ...]:
        items = sorted(intervals)
        merged: list[Interval] = []
        for iv in items:
            if merged and merged[-1].mergeable(iv, domain):
                last = merged.pop()
                merged.append(last.hull(iv))
            else:
                merged.append(iv)
        return tuple(merged)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, domain: TimeDomain = DENSE) -> "IntervalSet":
        """The empty set of time points."""
        return cls((), domain)

    @classmethod
    def point(cls, t: float, domain: TimeDomain = DENSE) -> "IntervalSet":
        """The singleton set ``{t}``."""
        return cls((Interval(t, t),), domain)

    @classmethod
    def span(
        cls, start: float, end: float, domain: TimeDomain = DENSE
    ) -> "IntervalSet":
        """The single interval ``[start, end]``."""
        return cls((Interval(start, end),), domain)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[float, float]],
        domain: TimeDomain = DENSE,
    ) -> "IntervalSet":
        """Build from ``(start, end)`` pairs."""
        return cls((Interval(s, e) for s, e in pairs), domain)

    @classmethod
    def from_ticks(
        cls, ticks: Iterable[int], domain: TimeDomain
    ) -> "IntervalSet":
        """Build from individual integer ticks (discrete domains)."""
        return cls((Interval(t, t) for t in ticks), domain)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self) -> TimeDomain:
        """The time domain governing adjacency."""
        return self._domain

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The normalised intervals in increasing order."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        """Whether the set contains no time point."""
        return not self._intervals

    @property
    def earliest(self) -> float:
        """Smallest time point in the set."""
        if self.is_empty:
            raise TemporalError("empty interval set has no earliest point")
        return self._intervals[0].start

    @property
    def latest(self) -> float:
        """Largest time point in the set (may be ``inf``)."""
        if self.is_empty:
            raise TemporalError("empty interval set has no latest point")
        return self._intervals[-1].end

    @property
    def total_duration(self) -> float:
        """Sum of interval lengths."""
        return sum(iv.duration for iv in self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __bool__(self) -> bool:
        return not self.is_empty

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return (
            self._domain == other._domain
            and self._intervals == other._intervals
        )

    def __hash__(self) -> int:
        return hash((self._domain, self._intervals))

    def __repr__(self) -> str:
        body = ", ".join(str(iv) for iv in self._intervals)
        return f"IntervalSet({{{body}}}, {self._domain.name})"

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def contains(self, t: float) -> bool:
        """Whether the time point ``t`` belongs to the set (binary search)."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if t < iv.start:
                hi = mid - 1
            elif t > iv.end:
                lo = mid + 1
            else:
                return True
        return False

    def interval_containing(self, t: float) -> Interval | None:
        """The unique interval containing ``t``, or ``None``."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if t < iv.start:
                hi = mid - 1
            elif t > iv.end:
                lo = mid + 1
            else:
                return iv
        return None

    def first_point_at_or_after(self, t: float) -> float | None:
        """Earliest point of the set that is ``>= t`` (``None`` if none)."""
        for iv in self._intervals:
            if iv.end >= t:
                return max(iv.start, t)
        return None

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def _check_domain(self, other: "IntervalSet") -> None:
        if self._domain != other._domain:
            raise TemporalError(
                f"domain mismatch: {self._domain.name} vs {other._domain.name}"
            )

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union (re-normalised)."""
        self._check_domain(other)
        return IntervalSet(self._intervals + other._intervals, self._domain)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection via a linear merge of the two sorted lists."""
        self._check_domain(other)
        out: list[Interval] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersection(b[j])
            if overlap is not None:
                out.append(overlap)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(out, self._domain)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other``.

        In the dense domain the result of removing a closed interval is
        half-open; we approximate by keeping closed remainders that share
        the cut endpoint, which is exact for the discrete domain and
        measure-preserving for the dense one.  Discrete cuts step a full
        tick past the removed interval.
        """
        self._check_domain(other)
        step = self._domain.gap
        out: list[Interval] = []
        for iv in self._intervals:
            pieces = [iv]
            for cut in other._intervals:
                if cut.start > iv.end:
                    break
                next_pieces: list[Interval] = []
                for piece in pieces:
                    if not piece.overlaps(cut):
                        next_pieces.append(piece)
                        continue
                    if cut.start - step >= piece.start:
                        next_pieces.append(
                            Interval(piece.start, cut.start - step)
                        )
                    if cut.end + step <= piece.end and cut.end != math.inf:
                        next_pieces.append(Interval(cut.end + step, piece.end))
                pieces = next_pieces
            out.extend(pieces)
        return IntervalSet(out, self._domain)

    def complement(self, within: Interval) -> "IntervalSet":
        """Complement relative to the bounding interval ``within``."""
        return IntervalSet((within,), self._domain).difference(self)

    def clip(self, lo: float, hi: float) -> "IntervalSet":
        """Intersection with the single interval ``[lo, hi]``."""
        return self.intersection(
            IntervalSet((Interval(lo, hi),), self._domain)
        )

    def shift(self, delta: float) -> "IntervalSet":
        """Translate every interval by ``delta``."""
        return IntervalSet(
            (iv.shift(delta) for iv in self._intervals), self._domain
        )

    def clamp_start(self, lo: float) -> "IntervalSet":
        """Drop everything before ``lo`` (keep partial overlaps)."""
        out = []
        for iv in self._intervals:
            if iv.end < lo:
                continue
            out.append(Interval(max(iv.start, lo), iv.end))
        return IntervalSet(out, self._domain)

    def covers(self, probe: Interval) -> bool:
        """Whether a single stored interval contains ``probe`` entirely."""
        for iv in self._intervals:
            if iv.contains_interval(probe):
                return True
            if iv.start > probe.start:
                break
        return False

    # ------------------------------------------------------------------
    # Discrete helpers (testing and the naive FTL evaluator)
    # ------------------------------------------------------------------
    def ticks(self, horizon: int | None = None) -> list[int]:
        """All integer ticks in the set, optionally clipped to
        ``[0, horizon]``.  Only valid when every interval is bounded or a
        horizon is supplied."""
        out: list[int] = []
        for iv in self._intervals:
            end = iv.end
            if end == math.inf:
                if horizon is None:
                    raise TemporalError(
                        "cannot enumerate an unbounded interval set"
                    )
                end = horizon
            lo = math.ceil(iv.start)
            hi = math.floor(min(end, horizon) if horizon is not None else end)
            out.extend(range(lo, hi + 1))
        return out

    def discretized(self) -> "IntervalSet":
        """Project a dense satisfaction set onto integer clock ticks.

        The kinetic solvers work in continuous time but the paper's
        database history has one state per tick (section 2.2): tick ``t``
        satisfies iff it falls inside some dense interval.  Each interval
        ``[s, e]`` becomes ``[ceil(s), floor(e)]`` (dropped when empty).
        """
        from repro.temporal.domain import DISCRETE

        out = []
        for iv in self._intervals:
            lo = math.ceil(iv.start)
            hi = iv.end if iv.end == math.inf else math.floor(iv.end)
            if lo <= hi:
                out.append(Interval(lo, hi))
        return IntervalSet(out, DISCRETE)

    @classmethod
    def from_boolean_samples(
        cls,
        samples: Sequence[bool],
        domain: TimeDomain,
        start: int = 0,
    ) -> "IntervalSet":
        """Build from a dense boolean vector over consecutive ticks.

        Used by the naive FTL reference evaluator: ``samples[i]`` says
        whether the predicate holds at tick ``start + i``.
        """
        out: list[Interval] = []
        run_start: int | None = None
        for offset, flag in enumerate(samples):
            t = start + offset
            if flag and run_start is None:
                run_start = t
            elif not flag and run_start is not None:
                out.append(Interval(run_start, t - 1))
                run_start = None
        if run_start is not None:
            out.append(Interval(run_start, start + len(samples) - 1))
        return cls(out, domain)
