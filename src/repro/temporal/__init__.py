"""Temporal algebra: time domains, intervals, interval sets, clocks.

This package is the foundation of the reproduction: the MOST data model
interprets queries over *database histories* (one state per clock tick,
section 2.2 of the paper), and the appendix FTL algorithm manipulates
relations whose last column is a *time interval*.  Everything temporal —
interval normalisation, the coalescing rule that keeps satisfaction
intervals "non-consecutive" (appendix), and the interval-level temporal
operators (`until`, `eventually`, `always`, and their bounded variants) —
lives here so the FTL evaluator can stay purely structural.

Two time domains are supported:

* :data:`DISCRETE` — the paper's natural-number clock; intervals hold
  integer ticks and two intervals are *consecutive* when one starts exactly
  one tick after the other ends.
* :data:`DENSE` — real-valued time, used by the kinetic geometry solvers;
  intervals coalesce only when they touch.
"""

from repro.temporal.domain import DENSE, DISCRETE, TimeDomain
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet
from repro.temporal.clock import SimulationClock
from repro.temporal.operators import (
    always,
    always_for,
    eventually,
    eventually_after,
    eventually_within,
    nexttime,
    until,
    until_within,
)

__all__ = [
    "DENSE",
    "DISCRETE",
    "TimeDomain",
    "Interval",
    "IntervalSet",
    "SimulationClock",
    "always",
    "always_for",
    "eventually",
    "eventually_after",
    "eventually_within",
    "nexttime",
    "until",
    "until_within",
]
