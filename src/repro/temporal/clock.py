"""The global database clock.

Section 2 of the paper: "A special database object called *time* gives the
current time at every instant; its domain is the set of natural numbers,
and its value increases by one in each clock tick."  The simulation clock
below is that object: every MOST database holds one, dynamic attributes
evaluate against it, and the discrete-event layers (continuous-query
maintenance, the distributed simulation) advance it explicitly.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import TemporalError

TickListener = Callable[[int], None]


class SimulationClock:
    """A monotonically non-decreasing integer clock with tick listeners.

    Listeners registered via :meth:`on_tick` are invoked once per tick in
    registration order — the hook used by continuous-query re-display and
    the delayed-transmission policy of section 5.2.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise TemporalError("clock cannot start before time 0")
        self._now = start
        self._listeners: list[TickListener] = []

    @property
    def now(self) -> int:
        """The current clock tick."""
        return self._now

    def on_tick(self, listener: TickListener) -> None:
        """Register a callback invoked with the new time after every tick."""
        self._listeners.append(listener)

    def remove_listener(self, listener: TickListener) -> None:
        """Unregister a previously registered callback (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def tick(self, steps: int = 1) -> int:
        """Advance the clock by ``steps`` ticks, firing listeners per tick.

        Returns:
            The new current time.
        """
        if steps < 0:
            raise TemporalError("clock cannot move backwards")
        for _ in range(steps):
            self._now += 1
            for listener in list(self._listeners):
                listener(self._now)
        return self._now

    def advance_to(self, t: int) -> int:
        """Advance the clock to absolute time ``t`` (must not be in the past)."""
        if t < self._now:
            raise TemporalError(
                f"cannot move clock backwards from {self._now} to {t}"
            )
        return self.tick(t - self._now)

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now})"
