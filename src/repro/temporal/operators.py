"""Interval-level temporal operators.

These functions implement, at the level of satisfaction-interval sets, the
temporal connectives of FTL (section 3 of the paper).  The FTL evaluator
(appendix algorithm) computes, per variable instantiation, the interval set
on which a subformula holds; the connectives below combine those sets:

* :func:`until` — the chain-merging construction of the appendix: ``g1
  Until g2`` holds at ``t`` iff ``g2`` holds at ``t``, or ``g2`` holds at
  some future ``t'`` and ``g1`` holds throughout ``[t, t')``.
* :func:`nexttime` — discrete-shift by one tick.
* :func:`eventually` / :func:`always` — derived operators (``true Until f``
  and its dual), evaluated against an explicit horizon because the paper
  assumes continuous queries "expire after a predefined (but very large)
  amount of time" (section 2.3).
* the bounded real-time forms of section 3.4: ``Eventually within c``,
  ``Eventually after c``, ``Always for c`` and ``g until within c h``.

All functions are pure and domain-aware (discrete tick adjacency vs dense
touching); they are property-tested against a brute-force per-tick reference
in ``tests/temporal/test_operators.py``.
"""

from __future__ import annotations

import math

from repro.errors import TemporalError
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet


def until(g1: IntervalSet, g2: IntervalSet) -> IntervalSet:
    """Satisfaction set of ``g1 Until g2``.

    ``t`` satisfies the formula iff ``t`` is in ``g2``, or there is a
    ``t' > t`` in ``g2`` with ``[t, t')`` contained in ``g1``.  On
    normalised interval sets this reduces to extending every ``g2``
    interval ``[m, n]`` leftwards through the unique ``g1`` interval
    ``[l, u]`` that still touches ``m`` (``u >= m - gap``), then taking the
    union; chains through alternating ``g1``/``g2`` intervals coalesce
    because the extended pieces touch (this mirrors the appendix's
    *maximal chain* construction).
    """
    if g1.domain != g2.domain:
        raise TemporalError("until: operand domain mismatch")
    domain = g1.domain
    pieces: list[Interval] = list(g2.intervals)
    for target in g2.intervals:
        m = target.start
        # The carrying g1 interval must cover up to m (dense: contain m
        # itself; discrete: contain the preceding tick m - 1).
        carrier = g1.interval_containing(m - domain.gap)
        if carrier is not None and carrier.start < m:
            pieces.append(Interval(carrier.start, target.end))
    return IntervalSet(pieces, domain)


def until_within(c: float, g1: IntervalSet, g2: IntervalSet) -> IntervalSet:
    """Satisfaction set of ``g1 until within c g2`` (section 3.4).

    Like :func:`until` but the witness ``t'`` must satisfy
    ``t' - t <= c``; the leftward extension is therefore truncated at
    ``m - c`` for a ``g2`` interval starting at ``m``.
    """
    if c < 0:
        raise TemporalError("until_within: bound must be non-negative")
    if g1.domain != g2.domain:
        raise TemporalError("until_within: operand domain mismatch")
    domain = g1.domain
    pieces: list[Interval] = list(g2.intervals)
    for target in g2.intervals:
        m = target.start
        carrier = g1.interval_containing(m - domain.gap)
        if carrier is not None and carrier.start < m:
            lo = max(carrier.start, m - c)
            if lo < m:
                pieces.append(Interval(lo, target.end))
    return IntervalSet(pieces, domain)


def nexttime(f: IntervalSet, start: float = 0.0) -> IntervalSet:
    """Satisfaction set of ``Nexttime f`` in the discrete domain.

    ``t`` satisfies iff ``t + 1`` satisfies ``f``; i.e. shift the set one
    tick earlier and clip at the history start.
    """
    if not f.domain.is_discrete:
        raise TemporalError("Nexttime is only defined on the discrete domain")
    return f.shift(-1).clamp_start(start)


def eventually(f: IntervalSet, start: float = 0.0) -> IntervalSet:
    """Satisfaction set of ``Eventually f`` (= ``true Until f``).

    ``t`` satisfies iff some point of ``f`` lies at or after ``t``; hence
    the result is the single interval from ``start`` to the last point of
    ``f`` (empty if ``f`` is empty or lies entirely before ``start``).
    """
    if f.is_empty:
        return IntervalSet.empty(f.domain)
    latest = f.latest
    if latest < start:
        return IntervalSet.empty(f.domain)
    return IntervalSet((Interval(start, latest),), f.domain)


def eventually_within(c: float, f: IntervalSet, start: float = 0.0) -> IntervalSet:
    """Satisfaction set of ``Eventually within c f`` (section 3.4).

    ``t`` satisfies iff ``f`` holds somewhere in ``[t, t + c]``; every
    ``f`` interval ``[m, n]`` therefore contributes ``[m - c, n]``.
    """
    if c < 0:
        raise TemporalError("eventually_within: bound must be non-negative")
    pieces = []
    for iv in f.intervals:
        lo = max(iv.start - c, start)
        if lo <= iv.end:
            pieces.append(Interval(lo, iv.end))
    return IntervalSet(pieces, f.domain).clamp_start(start)


def eventually_after(
    c: float, f: IntervalSet, start: float = 0.0
) -> IntervalSet:
    """Satisfaction set of ``Eventually after c f`` (section 3.4).

    ``t`` satisfies iff ``f`` holds at some ``t' >= t + c``; equivalently
    ``t <= latest(f) - c``.
    """
    if c < 0:
        raise TemporalError("eventually_after: bound must be non-negative")
    if f.is_empty:
        return IntervalSet.empty(f.domain)
    hi = f.latest - c if f.latest != math.inf else math.inf
    if hi < start:
        return IntervalSet.empty(f.domain)
    return IntervalSet((Interval(start, hi),), f.domain)


def always(f: IntervalSet, start: float, horizon: float) -> IntervalSet:
    """Satisfaction set of ``Always f`` relative to an evaluation horizon.

    The paper defines ``Always f`` over the *infinite* future history; any
    finite evaluation needs the expiration horizon of section 2.3.  ``t``
    satisfies iff ``f`` holds throughout ``[t, horizon]``.
    """
    for iv in f.intervals:
        if iv.start <= horizon <= iv.end:
            lo = max(iv.start, start)
            if lo > horizon:
                return IntervalSet.empty(f.domain)
            return IntervalSet((Interval(lo, horizon),), f.domain)
    return IntervalSet.empty(f.domain)


def always_for(c: float, f: IntervalSet) -> IntervalSet:
    """Satisfaction set of ``Always for c f`` (section 3.4).

    ``t`` satisfies iff ``f`` holds throughout ``[t, t + c]``; this erodes
    every interval ``[m, n]`` to ``[m, n - c]`` and drops intervals shorter
    than ``c``.
    """
    if c < 0:
        raise TemporalError("always_for: bound must be non-negative")
    pieces = []
    for iv in f.intervals:
        if iv.end == math.inf:
            pieces.append(iv)
        elif iv.end - c >= iv.start:
            pieces.append(Interval(iv.start, iv.end - c))
    return IntervalSet(pieces, f.domain)
