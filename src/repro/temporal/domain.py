"""Time domains: discrete (paper's clock-tick model) and dense (real time).

The paper's database history is "an infinite sequence of database states,
one for each clock tick" (section 2.2) — a discrete domain.  The kinetic
geometry layer, however, solves for satisfaction intervals in continuous
time.  A :class:`TimeDomain` captures the one parameter in which the two
differ for interval algebra: the *adjacency gap*.  Two closed intervals
``[a, b]`` and ``[c, d]`` with ``b < c`` are *consecutive* (and must be
coalesced into one, per the appendix's non-consecutiveness invariant) when
``c - b <= gap``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimeDomain:
    """A model of time for interval algebra.

    Attributes:
        name: human-readable name, ``"discrete"`` or ``"dense"``.
        gap: adjacency gap; ``1`` for integer ticks, ``0`` for real time.
    """

    name: str
    gap: float

    @property
    def is_discrete(self) -> bool:
        """True when this is the integer clock-tick domain."""
        return self.gap > 0

    def mergeable(self, end_a: float, start_b: float) -> bool:
        """Whether an interval ending at ``end_a`` coalesces with one
        starting at ``start_b`` (assuming ``end_a < start_b``)."""
        return start_b - end_a <= self.gap

    def snap(self, t: float) -> float:
        """Round a time point onto the domain grid (identity when dense)."""
        if self.is_discrete:
            return float(round(t))
        return t

    def floor(self, t: float) -> float:
        """Largest domain point ``<= t`` (identity when dense)."""
        if self.is_discrete:
            import math

            return float(math.floor(t))
        return t

    def ceil(self, t: float) -> float:
        """Smallest domain point ``>= t`` (identity when dense)."""
        if self.is_discrete:
            import math

            return float(math.ceil(t))
        return t


#: The paper's natural-number clock: one database state per tick.
DISCRETE = TimeDomain(name="discrete", gap=1)

#: Real-valued time, used by the kinetic solvers.
DENSE = TimeDomain(name="dense", gap=0)
