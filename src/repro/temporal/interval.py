"""Closed time intervals ``[start, end]``.

Intervals are the last column of every relation the appendix algorithm
manipulates: each tuple of ``R_g`` pairs a variable instantiation with "a
time interval during which the instantiation satisfies the formula".
Endpoints are floats (integers in the discrete domain are represented
exactly); ``math.inf`` is a legal ``end`` for unbounded satisfaction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TemporalError
from repro.temporal.domain import TimeDomain


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` of time points, ``start <= end``.

    Instances are immutable and ordered lexicographically by
    ``(start, end)``, which is the order :class:`~repro.temporal.IntervalSet`
    maintains internally.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isnan(self.end):
            raise TemporalError("interval endpoints may not be NaN")
        if self.start == math.inf:
            raise TemporalError("interval start may not be +inf")
        if self.end < self.start:
            raise TemporalError(
                f"interval end {self.end} precedes start {self.start}"
            )

    # ------------------------------------------------------------------
    # Basic predicates
    # ------------------------------------------------------------------
    def contains(self, t: float) -> bool:
        """Whether time point ``t`` lies in this interval."""
        return self.start <= t <= self.end

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is a subset of this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one point."""
        return self.start <= other.end and other.start <= self.end

    def precedes(self, other: "Interval") -> bool:
        """Whether this interval ends strictly before ``other`` starts."""
        return self.end < other.start

    def mergeable(self, other: "Interval", domain: TimeDomain) -> bool:
        """Whether the union of the two intervals is a single interval in
        ``domain`` (they overlap, touch, or are consecutive ticks)."""
        lo, hi = (self, other) if self.start <= other.start else (other, self)
        return domain.mergeable(lo.end, hi.start) or lo.end >= hi.start

    def compatible(self, other: "Interval", domain: TimeDomain) -> bool:
        """The appendix's *compatibility* test between a ``g1`` interval
        (``self``) and a ``g2`` interval (``other``).

        ``[l1, u1]`` is compatible with ``[m1, n1]`` when ``m1 <= u1 + gap``
        and ``n1 >= u1`` — the two intervals overlap or are consecutive,
        with the ``g2`` interval not ending before the ``g1`` one.
        """
        return other.start <= self.end + domain.gap and other.end >= self.end

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlap of two intervals, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start > end:
            return None
        return Interval(start, end)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both inputs."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def shift(self, delta: float) -> "Interval":
        """Translate both endpoints by ``delta``."""
        end = self.end if self.end == math.inf else self.end + delta
        return Interval(self.start + delta, end)

    def clip(self, lo: float, hi: float) -> "Interval | None":
        """Intersection with ``[lo, hi]``, or ``None`` when empty."""
        return self.intersection(Interval(lo, hi))

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Length of the interval (``inf`` when unbounded)."""
        return self.end - self.start

    @property
    def is_unbounded(self) -> bool:
        """Whether the interval extends to infinity."""
        return self.end == math.inf

    def ticks(self) -> range:
        """Integer ticks covered, for small *bounded* discrete intervals.

        Raises:
            TemporalError: if the interval is unbounded.
        """
        if self.is_unbounded:
            raise TemporalError("cannot enumerate ticks of an unbounded interval")
        return range(math.ceil(self.start), math.floor(self.end) + 1)

    def __str__(self) -> str:
        return f"[{self.start:g}, {self.end:g}]"
