"""Exception hierarchy for the MOST/FTL reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything originating in this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TemporalError(ReproError):
    """Invalid temporal value or operation (bad interval bounds, etc.)."""


class SpatialError(ReproError):
    """Invalid geometry (degenerate polygon, bad dimension, etc.)."""


class MotionError(ReproError):
    """Invalid motion function (e.g. ``function(0) != 0``)."""


class SchemaError(ReproError):
    """Schema violation in the DBMS substrate (unknown column, type clash)."""


class SqlError(ReproError):
    """Syntax or semantic error in a mini-SQL statement."""


class FtlSyntaxError(ReproError):
    """Syntax error in an FTL query string.

    When raised by the lexer or parser the message names the source
    position as ``line L, col C`` and :attr:`span` carries the offending
    :class:`~repro.ftl.lexer.Span` (``None`` for programmatic raises).
    """

    def __init__(self, message: str, span: object | None = None) -> None:
        super().__init__(message)
        self.span = span


class FtlSemanticsError(ReproError):
    """Ill-formed FTL query (unbound variable, unsafe negation, ...)."""


class FtlAnalysisError(ReproError):
    """Static analysis rejected an FTL query before evaluation.

    Carries the full diagnostic list (:attr:`diagnostics`, a list of
    :class:`~repro.ftl.analysis.Diagnostic`) so callers can render every
    error — not just the first — with rule codes and source spans.
    """

    def __init__(self, diagnostics: list) -> None:
        self.diagnostics = list(diagnostics)
        lines = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(
            "FTL static analysis failed with "
            f"{len(self.diagnostics)} error(s): {lines}"
        )


class IndexError_(ReproError):
    """Dynamic-attribute index misuse (out-of-horizon insert, etc.)."""


class DistributedError(ReproError):
    """Invalid operation in the mobile/distributed simulation."""


class QueryError(ReproError):
    """Invalid MOST query construction or evaluation request."""


class ConfigError(ReproError):
    """Invalid environment configuration (``REPRO_*`` variables)."""
