"""Exception hierarchy for the MOST/FTL reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything originating in this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TemporalError(ReproError):
    """Invalid temporal value or operation (bad interval bounds, etc.)."""


class SpatialError(ReproError):
    """Invalid geometry (degenerate polygon, bad dimension, etc.)."""


class MotionError(ReproError):
    """Invalid motion function (e.g. ``function(0) != 0``)."""


class SchemaError(ReproError):
    """Schema violation in the DBMS substrate (unknown column, type clash)."""


class SqlError(ReproError):
    """Syntax or semantic error in a mini-SQL statement."""


class FtlSyntaxError(ReproError):
    """Syntax error in an FTL query string."""


class FtlSemanticsError(ReproError):
    """Ill-formed FTL query (unbound variable, unsafe negation, ...)."""


class IndexError_(ReproError):
    """Dynamic-attribute index misuse (out-of-horizon insert, etc.)."""


class DistributedError(ReproError):
    """Invalid operation in the mobile/distributed simulation."""


class QueryError(ReproError):
    """Invalid MOST query construction or evaluation request."""
