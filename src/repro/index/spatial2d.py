"""2-D moving objects via a 3-D (x, y, t) index.

"For an object moving in 2-dimensional space, the above scheme can be
mimicked using an index of 3-dimensional space, with the third dimension
being, obviously, time" (section 4).  Trajectories of 2-D moving points
become line segments in (x, y, t) space, indexed by an octree (the 3-D
instance of the recursive decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexError_
from repro.geometry import Point
from repro.index.regiontree import RegionTree
from repro.index.segments import TrajectorySegment
from repro.motion.moving import MovingPoint
from repro.spatial.regions import Box


@dataclass(frozen=True)
class SpatialHit:
    """One continuous-query hit: the object and an interval during which
    it lies in the probed rectangle."""

    object_id: object
    begin: float
    end: float


class MovingObjectIndex2D:
    """Octree over (x, y, t) trajectory segments of 2-D moving points."""

    def __init__(
        self,
        epoch: float,
        horizon: float,
        bounds: Box,
        node_capacity: int = 8,
    ) -> None:
        if horizon <= epoch:
            raise IndexError_("horizon must exceed the epoch")
        if bounds.dim != 2:
            raise IndexError_("bounds must be a 2-D box (x and y ranges)")
        self.epoch = float(epoch)
        self.horizon = float(horizon)
        self.bounds = bounds
        cube = Box(
            Point(bounds.lo.x, bounds.lo.y, self.epoch),
            Point(bounds.hi.x, bounds.hi.y, self.horizon),
        )
        self._tree = RegionTree(cube, capacity=node_capacity)
        self._movers: dict[object, MovingPoint] = {}
        self._segments: dict[object, list[TrajectorySegment]] = {}

    @property
    def last_nodes_visited(self) -> int:
        """Octree nodes touched by the most recent probe."""
        return self._tree.last_nodes_visited

    def __len__(self) -> int:
        return len(self._movers)

    # ------------------------------------------------------------------
    def insert(self, object_id: object, mover: MovingPoint) -> None:
        """Plot one moving point's trajectory into the octree."""
        if object_id in self._movers:
            raise IndexError_(f"object {object_id!r} already indexed")
        if mover.dim != 2:
            raise IndexError_("MovingObjectIndex2D indexes 2-D motion")
        start = max(self.epoch, mover.anchor_time)
        pieces = mover.linear_pieces(start, self.horizon)
        if pieces is None:
            raise IndexError_(
                "section 4 indexing requires piecewise-linear motion"
            )
        segments = []
        for piece in pieces:
            p0 = piece.position_at(piece.start)
            p1 = piece.position_at(piece.end)
            segment = TrajectorySegment(
                object_id,
                Point(p0.x, p0.y, piece.start),
                Point(p1.x, p1.y, piece.end),
            )
            if segment.intersects(self._tree.bounds):
                self._tree.insert(segment)
                segments.append(segment)
        self._movers[object_id] = mover
        self._segments[object_id] = segments

    def update(self, object_id: object, mover: MovingPoint) -> None:
        """Replace an object's trajectory after a motion-vector update."""
        self.remove(object_id)
        self.insert(object_id, mover)

    def remove(self, object_id: object) -> None:
        """Drop an object's trajectory."""
        segments = self._segments.pop(object_id, None)
        if segments is None:
            raise IndexError_(f"object {object_id!r} not indexed")
        for segment in segments:
            self._tree.delete(segment)
        del self._movers[object_id]

    # ------------------------------------------------------------------
    def objects_in_rectangle(
        self, rect: Box, at_time: float, eps: float = 0.5
    ) -> set[object]:
        """Objects inside ``rect`` at ``at_time`` — "Retrieve the objects
        that are currently in the polygon P" with P a rectangle."""
        if not self.epoch <= at_time <= self.horizon:
            raise IndexError_("query time outside the index window")
        probe = Box(
            Point(rect.lo.x, rect.lo.y, max(self.epoch, at_time - eps)),
            Point(rect.hi.x, rect.hi.y, min(self.horizon, at_time + eps)),
        )
        out = set()
        for object_id in self._tree.query(probe):
            pos = self._movers[object_id].position_at(at_time)
            if rect.contains(pos):
                out.add(object_id)
        return out

    def continuous_rectangle(
        self, rect: Box, from_time: float
    ) -> list[SpatialHit]:
        """Exact in-rectangle intervals per candidate over
        ``[from_time, horizon]``."""
        if not self.epoch <= from_time <= self.horizon:
            raise IndexError_("query time outside the index window")
        probe = Box(
            Point(rect.lo.x, rect.lo.y, from_time),
            Point(rect.hi.x, rect.hi.y, self.horizon),
        )
        hits: list[SpatialHit] = []
        for object_id in sorted(self._tree.query(probe), key=str):
            mover = self._movers[object_id]
            start = max(from_time, mover.anchor_time)
            intervals = self._inside_intervals(mover, rect, start)
            for iv in intervals:
                hits.append(SpatialHit(object_id, iv.start, iv.end))
        return hits

    def _inside_intervals(self, mover: MovingPoint, rect: Box, start: float):
        from repro.spatial.kinetic import when_inside_polygon
        from repro.spatial.polygon import Polygon
        from repro.temporal import Interval

        polygon = Polygon.rectangle(
            rect.lo.x, rect.lo.y, rect.hi.x, rect.hi.y
        )
        return when_inside_polygon(
            mover, polygon, Interval(start, self.horizon)
        )

    def scan_in_rectangle(self, rect: Box, at_time: float) -> set[object]:
        """Baseline: examine every object."""
        return {
            object_id
            for object_id, mover in self._movers.items()
            if rect.contains(mover.position_at(at_time))
        }
