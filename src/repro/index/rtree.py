"""An R-tree over bounding boxes (Guttman, quadratic split).

Section 7 of the paper plans to "experimentally compare various mechanisms
for indexing dynamic attributes"; the R-tree is the natural competitor to
the region-decomposition scheme of section 4 and is what experiment E3's
ablation compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexError_
from repro.spatial.regions import Box


@dataclass
class _Entry:
    box: Box
    child: "_Node | None"  # internal entries
    payload: object | None  # leaf entries


class _Node:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []

    def mbr(self) -> Box:
        box = self.entries[0].box
        for e in self.entries[1:]:
            box = box.union(e.box)
        return box


def _enlargement(box: Box, extra: Box) -> float:
    return box.union(extra).volume - box.volume


class RTree:
    """An in-memory R-tree mapping boxes to payloads."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 4:
            raise IndexError_("R-tree max_entries must be at least 4")
        self._max = max_entries
        self._min = max(2, max_entries // 2)
        self._root = _Node(is_leaf=True)
        self._size = 0
        #: Nodes touched by the last query (experiment E3 reads this).
        self.last_nodes_visited = 0
        #: Cumulative probe instrumentation (atom-pruning benchmarks read
        #: these; ``last_nodes_visited`` resets per search).
        self.nodes_visited_total = 0
        self.search_count = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, box: Box, payload: object) -> None:
        """Insert one (box, payload) pair."""
        split = self._insert(self._root, _Entry(box, None, payload))
        if split is not None:
            old_root = self._root
            self._root = _Node(is_leaf=False)
            self._root.entries = [
                _Entry(old_root.mbr(), old_root, None),
                _Entry(split.mbr(), split, None),
            ]
        self._size += 1

    def _insert(self, node: _Node, entry: _Entry) -> "_Node | None":
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best = min(
                node.entries,
                key=lambda e: (
                    _enlargement(e.box, entry.box),
                    e.box.volume,
                ),
            )
            split = self._insert(best.child, entry)
            best.box = best.box.union(entry.box)
            if split is not None:
                node.entries.append(_Entry(split.mbr(), split, None))
        if len(node.entries) > self._max:
            return self._split(node)
        return None

    def _split(self, node: _Node) -> _Node:
        """Guttman's quadratic split."""
        entries = node.entries
        # Pick the pair wasting the most area as seeds.
        worst = None
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i].box.union(entries[j].box).volume
                    - entries[i].box.volume
                    - entries[j].box.volume
                )
                if worst is None or waste > worst:
                    worst = waste
                    seeds = (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        rest = [
            e for k, e in enumerate(entries) if k not in seeds
        ]
        box_a = group_a[0].box
        box_b = group_b[0].box
        for e in rest:
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self._min:
                group_a.append(e)
                box_a = box_a.union(e.box)
                continue
            if len(group_b) + remaining <= self._min:
                group_b.append(e)
                box_b = box_b.union(e.box)
                continue
            da = _enlargement(box_a, e.box)
            db = _enlargement(box_b, e.box)
            if da < db or (da == db and len(group_a) <= len(group_b)):
                group_a.append(e)
                box_a = box_a.union(e.box)
            else:
                group_b.append(e)
                box_b = box_b.union(e.box)
        node.entries = group_a
        sibling = _Node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        return sibling

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, box: Box) -> list[object]:
        """Payloads whose boxes intersect the probe box."""
        self.last_nodes_visited = 0
        self.search_count += 1
        out: list[object] = []
        self._search(self._root, box, out)
        return out

    def _search(self, node: _Node, box: Box, out: list[object]) -> None:
        self.last_nodes_visited += 1
        self.nodes_visited_total += 1
        for entry in node.entries:
            if not entry.box.intersects(box):
                continue
            if node.is_leaf:
                out.append(entry.payload)
            else:
                self._search(entry.child, box, out)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, box: Box, payload: object) -> bool:
        """Remove one (box, payload) pair; returns whether it existed.

        Underflowing nodes are dissolved and their entries reinserted
        (Guttman's condense-tree, simplified).
        """
        orphans: list[_Entry] = []
        removed = self._delete(self._root, box, payload, orphans)
        if removed:
            self._size -= 1
            if not self._root.is_leaf and not self._root.entries:
                self._root = _Node(is_leaf=True)
            if not self._root.is_leaf and len(self._root.entries) == 1:
                child = self._root.entries[0].child
                if child is not None:
                    self._root = child
            for entry in orphans:
                split = self._insert(self._root, entry)
                if split is not None:
                    old_root = self._root
                    self._root = _Node(is_leaf=False)
                    self._root.entries = [
                        _Entry(old_root.mbr(), old_root, None),
                        _Entry(split.mbr(), split, None),
                    ]
        return removed

    def _delete(
        self,
        node: _Node,
        box: Box,
        payload: object,
        orphans: list[_Entry],
    ) -> bool:
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.payload == payload and entry.box.lo == box.lo and entry.box.hi == box.hi:
                    node.entries.pop(i)
                    return True
            return False
        for entry in node.entries:
            if entry.box.intersects(box) and entry.child is not None:
                if self._delete(entry.child, box, payload, orphans):
                    if entry.child.is_leaf and len(entry.child.entries) < self._min:
                        orphans.extend(entry.child.entries)
                        node.entries.remove(entry)
                    elif not entry.child.entries:
                        # An internal child emptied by leaf dissolution.
                        node.entries.remove(entry)
                    else:
                        entry.box = entry.child.mbr()
                    return True
        return False

    # ------------------------------------------------------------------
    def height(self) -> int:
        """Number of levels."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child
            h += 1
        return h
