"""Function-line segments in (time, value) or (x, y, time) space."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dynamic import DynamicAttribute
from repro.errors import IndexError_
from repro.geometry import Point
from repro.spatial.regions import Box


@dataclass(frozen=True)
class TrajectorySegment:
    """One linear leg of an object's function-line.

    ``a`` and ``b`` are endpoints in index space; the first coordinate of
    a 2-D segment is time, the last coordinate of a 3-D segment is time
    (matching the paper's (t, value) plot and (x, y, t) extension).
    """

    object_id: object
    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.dim != self.b.dim:
            raise IndexError_("segment endpoints must share a dimension")

    @property
    def dim(self) -> int:
        """Dimensionality of the index space."""
        return self.a.dim

    def bbox(self) -> Box:
        """Axis-aligned bounding box of the segment."""
        lo = Point(*(min(x, y) for x, y in zip(self.a, self.b)))
        hi = Point(*(max(x, y) for x, y in zip(self.a, self.b)))
        return Box(lo, hi)

    def intersects(self, box: Box) -> bool:
        """Exact segment/box intersection via parametric slab clipping.

        This is the hot path of region-tree construction (every segment is
        tested against every candidate cell), hence the tuple unpacking
        instead of per-axis :class:`Point` indexing.
        """
        s0, s1 = 0.0, 1.0
        a = self.a.coords
        b = self.b.coords
        lo_c = box.lo.coords
        hi_c = box.hi.coords
        for start, end, lo, hi in zip(a, b, lo_c, hi_c):
            delta = end - start
            if -1e-15 < delta < 1e-15:
                if start < lo or start > hi:
                    return False
                continue
            t_lo = (lo - start) / delta
            t_hi = (hi - start) / delta
            if t_lo > t_hi:
                t_lo, t_hi = t_hi, t_lo
            if t_lo > s0:
                s0 = t_lo
            if t_hi < s1:
                s1 = t_hi
            if s0 > s1:
                return False
        return True


def segments_of_function(
    object_id: object,
    attribute: DynamicAttribute,
    from_time: float,
    horizon: float,
) -> list[TrajectorySegment]:
    """Plot a dynamic attribute's function-line over ``[from_time,
    horizon]`` as (t, value) segments.

    Linear functions produce one segment (the paper's simplifying
    assumption); piecewise-linear functions one per leg.  Nonlinear
    functions are rejected — section 4 notes the extension is possible but
    scopes the method to linear function-lines.
    """
    if horizon <= from_time:
        raise IndexError_(
            f"horizon {horizon} must exceed the start time {from_time}"
        )
    duration = horizon - attribute.updatetime
    breakpoints = attribute.function.linear_breakpoints(duration)
    if breakpoints is None:
        raise IndexError_(
            "section 4 indexing requires piecewise-linear functions"
        )
    cuts = {from_time, horizon}
    for rel_t, _slope in breakpoints:
        abs_t = rel_t + attribute.updatetime
        if from_time < abs_t < horizon:
            cuts.add(abs_t)
    ordered = sorted(cuts)
    segments = []
    for t0, t1 in zip(ordered, ordered[1:]):
        segments.append(
            TrajectorySegment(
                object_id,
                Point(t0, attribute.value_at(t0)),
                Point(t1, attribute.value_at(t1)),
            )
        )
    return segments
