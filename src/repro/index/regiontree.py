"""The hierarchical recursive decomposition of section 4.

A region tree over a bounding box: each node covers a box; when a node
holds more than ``capacity`` segments (and is above ``max_depth``) it
splits into 2^dim equal children — quadrants in the (t, value) plane,
octants in (x, y, t) space — and its segments are pushed down into every
child they cross.  "The id of each object o is stored in the records
representing the rectangles crossed by the A.function of o."
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.index.segments import TrajectorySegment
from repro.spatial.regions import Box


class _Node:
    __slots__ = ("box", "segments", "children")

    def __init__(self, box: Box) -> None:
        self.box = box
        self.segments: list[TrajectorySegment] = []
        self.children: list[_Node] | None = None


class RegionTree:
    """A region quadtree/octree over trajectory segments."""

    def __init__(self, bounds: Box, capacity: int = 8, max_depth: int = 12) -> None:
        if capacity < 1:
            raise IndexError_("node capacity must be positive")
        if max_depth < 1:
            raise IndexError_("max depth must be positive")
        self._root = _Node(bounds)
        self._capacity = capacity
        self._max_depth = max_depth
        self._size = 0
        #: Nodes touched by the last query (experiment E3 reads this).
        self.last_nodes_visited = 0

    @property
    def bounds(self) -> Box:
        """The indexed region of (time, value) space."""
        return self._root.box

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def insert(self, segment: TrajectorySegment) -> None:
        """Insert one segment (must lie within the index bounds)."""
        if segment.dim != self._root.box.dim:
            raise IndexError_(
                f"segment dim {segment.dim} != index dim {self._root.box.dim}"
            )
        if not segment.intersects(self._root.box):
            raise IndexError_(
                f"segment {segment} outside index bounds {self._root.box} — "
                "reconstruct the index (section 4's periodic rebuild)"
            )
        self._insert(self._root, segment, depth=0)
        self._size += 1

    def _insert(self, node: _Node, segment: TrajectorySegment, depth: int) -> None:
        if node.children is None:
            node.segments.append(segment)
            if (
                len(node.segments) > self._capacity
                and depth < self._max_depth
            ):
                self._split(node, depth)
            return
        for child in node.children:
            if segment.intersects(child.box):
                self._insert(child, segment, depth + 1)

    def _split(self, node: _Node, depth: int) -> None:
        node.children = [_Node(box) for box in node.box.split()]
        segments = node.segments
        node.segments = []
        for segment in segments:
            for child in node.children:
                if segment.intersects(child.box):
                    self._insert(child, segment, depth + 1)

    # ------------------------------------------------------------------
    def delete(self, segment: TrajectorySegment) -> bool:
        """Remove one segment ("o is removed from the records representing
        rectangles crossed by the old function-line")."""
        return self._delete(self._root, segment)

    def _delete(self, node: _Node, segment: TrajectorySegment) -> bool:
        removed = False
        if node.children is None:
            before = len(node.segments)
            node.segments = [s for s in node.segments if s != segment]
            removed = len(node.segments) < before
        else:
            for child in node.children:
                if segment.intersects(child.box):
                    removed = self._delete(child, segment) or removed
        if removed and node is self._root:
            self._size -= 1
        return removed

    def delete_object(self, object_id: object) -> int:
        """Remove every segment of one object; returns the count removed."""
        seen: set[TrajectorySegment] = set()
        self._collect_object(self._root, object_id, seen)
        for segment in seen:
            self._delete(self._root, segment)
        return len(seen)

    def _collect_object(
        self, node: _Node, object_id: object, out: set[TrajectorySegment]
    ) -> None:
        if node.children is None:
            out.update(s for s in node.segments if s.object_id == object_id)
            return
        for child in node.children:
            self._collect_object(child, object_id, out)

    # ------------------------------------------------------------------
    def query(self, box: Box) -> set[object]:
        """Candidate object ids whose function-line crosses ``box``.

        Exact at the segment level (segments are clipped against the probe
        box), so the only post-verification callers need is semantic (e.g.
        strict vs closed bounds).
        """
        self.last_nodes_visited = 0
        out: set[object] = set()
        self._query(self._root, box, out)
        return out

    def _query(self, node: _Node, box: Box, out: set[object]) -> None:
        self.last_nodes_visited += 1
        if not node.box.intersects(box):
            return
        if node.children is None:
            for segment in node.segments:
                if segment.object_id not in out and segment.intersects(box):
                    out.add(segment.object_id)
            return
        for child in node.children:
            self._query(child, box, out)

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Maximum depth of the decomposition."""
        def walk(node: _Node) -> int:
            if node.children is None:
                return 1
            return 1 + max(walk(c) for c in node.children)

        return walk(self._root)

    def node_count(self) -> int:
        """Total number of tree nodes."""
        def walk(node: _Node) -> int:
            if node.children is None:
                return 1
            return 1 + sum(walk(c) for c in node.children)

        return walk(self._root)
