"""The dynamic-attribute index of section 4.

One index per dynamic attribute ``A``: the (time, value) plane from the
index epoch to the horizon ``T`` is indexed by a spatial structure holding
the function-line segments of every object.

* **Instantaneous query** "retrieve the objects for which currently
  ``lo < A < hi``" — probe the rectangle ``[t - eps, t + eps] x [lo, hi]``
  and verify each candidate exactly.
* **Continuous query** — probe ``[t, T] x [lo, hi]`` and, per candidate,
  "determine the time intervals when ``lo < o.A < hi``" analytically.
* **Update** — "o is removed from the records representing rectangles
  crossed by the old function-line, and it is added to the records
  representing rectangles crossed by the new function-line."
* **Reconstruction** — "the index needs to be reconstructed every T time
  units": :meth:`reconstruct` re-plots every live attribute over the next
  window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dynamic import DynamicAttribute
from repro.errors import IndexError_
from repro.index.regiontree import RegionTree
from repro.index.rtree import RTree
from repro.index.segments import TrajectorySegment, segments_of_function
from repro.spatial.kinetic import when_value_in_range
from repro.spatial.regions import Box
from repro.temporal import Interval


@dataclass(frozen=True)
class RangeHit:
    """One tuple of a continuous range query's answer: the object and one
    interval during which its attribute value lies in the range."""

    object_id: object
    begin: float
    end: float


class DynamicAttributeIndex:
    """Spatial index over one dynamic attribute's function-lines."""

    def __init__(
        self,
        epoch: float,
        horizon: float,
        value_lo: float,
        value_hi: float,
        structure: str = "regiontree",
        node_capacity: int = 8,
        max_depth: int = 12,
    ) -> None:
        if horizon <= epoch:
            raise IndexError_("horizon must exceed the epoch")
        if value_hi <= value_lo:
            raise IndexError_("empty value range")
        self.epoch = float(epoch)
        self.horizon = float(horizon)
        self.value_lo = float(value_lo)
        self.value_hi = float(value_hi)
        self.structure = structure
        self._node_capacity = node_capacity
        self._max_depth = max_depth
        self._attributes: dict[object, DynamicAttribute] = {}
        self._segments: dict[object, list[TrajectorySegment]] = {}
        self._tree = self._new_tree()

    def _new_tree(self):
        bounds = Box.from_bounds(
            (self.epoch, self.horizon), (self.value_lo, self.value_hi)
        )
        if self.structure == "regiontree":
            return RegionTree(
                bounds,
                capacity=self._node_capacity,
                max_depth=self._max_depth,
            )
        if self.structure == "rtree":
            return RTree(max_entries=max(4, self._node_capacity))
        raise IndexError_(f"unknown index structure {self.structure!r}")

    # ------------------------------------------------------------------
    @property
    def last_nodes_visited(self) -> int:
        """Nodes touched by the most recent probe (E3 instrumentation)."""
        return self._tree.last_nodes_visited

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._attributes

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, object_id: object, attribute: DynamicAttribute) -> None:
        """Plot one object's function-line into the index."""
        if object_id in self._attributes:
            raise IndexError_(f"object {object_id!r} already indexed")
        self._plot(object_id, attribute)

    def _plot(self, object_id: object, attribute: DynamicAttribute) -> None:
        start = max(self.epoch, attribute.updatetime)
        segments = segments_of_function(
            object_id, attribute, start, self.horizon
        )
        clipped = []
        for s in segments:
            sub = self._clip_to_value_range(s)
            if sub is not None:
                clipped.append(sub)
        for segment in clipped:
            self._tree_insert(segment)
        self._attributes[object_id] = attribute
        self._segments[object_id] = clipped

    def _clip_to_value_range(
        self, s: TrajectorySegment
    ) -> TrajectorySegment | None:
        """Parametrically clip the segment to the indexed value band.

        Portions outside the band cannot satisfy any in-band query, so
        discarding them is safe; the in-band portion keeps its exact
        geometry (clamping endpoints would distort the line and cause
        false negatives)."""
        from repro.geometry import Point

        y0, y1 = s.a.y, s.b.y
        lo, hi = self.value_lo, self.value_hi
        if y0 == y1:
            if lo <= y0 <= hi:
                return s
            return None
        s_lo = (lo - y0) / (y1 - y0)
        s_hi = (hi - y0) / (y1 - y0)
        if s_lo > s_hi:
            s_lo, s_hi = s_hi, s_lo
        s0 = max(0.0, s_lo)
        s1 = min(1.0, s_hi)
        if s0 > s1:
            return None
        a = Point(
            s.a.x + s0 * (s.b.x - s.a.x), y0 + s0 * (y1 - y0)
        )
        b = Point(
            s.a.x + s1 * (s.b.x - s.a.x), y0 + s1 * (y1 - y0)
        )
        return TrajectorySegment(s.object_id, a, b)

    def _tree_insert(self, segment: TrajectorySegment) -> None:
        if isinstance(self._tree, RegionTree):
            self._tree.insert(segment)
        else:
            self._tree.insert(segment.bbox(), segment)

    def _tree_delete(self, segment: TrajectorySegment) -> None:
        if isinstance(self._tree, RegionTree):
            self._tree.delete(segment)
        else:
            self._tree.delete(segment.bbox(), segment)

    def update(self, object_id: object, attribute: DynamicAttribute) -> None:
        """Replace an object's function-line after an explicit update."""
        self.remove(object_id)
        self._plot(object_id, attribute)

    def remove(self, object_id: object) -> None:
        """Remove an object from the index."""
        segments = self._segments.pop(object_id, None)
        if segments is None:
            raise IndexError_(f"object {object_id!r} not indexed")
        for segment in segments:
            self._tree_delete(segment)
        del self._attributes[object_id]

    def reconstruct(self, new_epoch: float) -> None:
        """Periodic reconstruction: re-plot every live attribute over the
        next ``T``-length window starting at ``new_epoch``."""
        window = self.horizon - self.epoch
        self.epoch = float(new_epoch)
        self.horizon = float(new_epoch) + window
        attributes = self._attributes
        # Values drift over time; widen the indexed band to cover every
        # live function-line over the new window (spatial indexing is
        # limited to finite space — section 4 — so the band is recomputed
        # at each rebuild).
        for attribute in attributes.values():
            start = max(self.epoch, attribute.updatetime)
            breakpoints = attribute.function.linear_breakpoints(
                self.horizon - attribute.updatetime
            )
            times = [start, self.horizon] + [
                t + attribute.updatetime
                for t, _slope in (breakpoints or [])
                if start < t + attribute.updatetime < self.horizon
            ]
            for t in times:
                value = attribute.value_at(t)
                self.value_lo = min(self.value_lo, value - 1.0)
                self.value_hi = max(self.value_hi, value + 1.0)
        self._attributes = {}
        self._segments = {}
        self._tree = self._new_tree()
        for object_id, attribute in attributes.items():
            self._plot(object_id, attribute)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_window(self, t: float) -> None:
        if not self.epoch <= t <= self.horizon:
            raise IndexError_(
                f"time {t} outside the index window "
                f"[{self.epoch}, {self.horizon}] — reconstruct first"
            )

    def _candidates(self, box: Box) -> set[object]:
        if isinstance(self._tree, RegionTree):
            return self._tree.query(box)
        return {s.object_id for s in self._tree.search(box)}

    def candidates_in_band(
        self,
        lo: float,
        hi: float,
        from_time: float | None = None,
        until: float | None = None,
    ) -> set[object]:
        """Conservative candidate set: every object whose function-line
        *may* take a value in ``[lo, hi]`` during the probed time span
        (defaulting to the whole index window).  A superset of the exact
        answer — callers verify candidates analytically; objects outside
        the set are guaranteed non-matches, which is what index-pruned
        atom evaluation (DESIGN.md §7) relies on."""
        t0 = self.epoch if from_time is None else max(self.epoch, from_time)
        t1 = self.horizon if until is None else min(self.horizon, until)
        if t1 < t0:
            return set()
        box = Box.from_bounds((t0, t1), (lo, hi))
        return self._candidates(box)

    def instantaneous_range(
        self, lo: float, hi: float, at_time: float, eps: float = 0.5
    ) -> set[object]:
        """Objects with ``lo < A < hi`` at ``at_time`` (section 4's
        "Retrieve the objects for which currently 4 < A < 5")."""
        self._check_window(at_time)
        box = Box.from_bounds(
            (
                max(self.epoch, at_time - eps),
                min(self.horizon, at_time + eps),
            ),
            (lo, hi),
        )
        out = set()
        for object_id in self._candidates(box):
            value = self._attributes[object_id].value_at(at_time)
            if lo < value < hi:
                out.add(object_id)
        return out

    def satisfying(
        self, op: str, bound: float, at_time: float, eps: float = 0.5
    ) -> set[object]:
        """Objects whose current value satisfies ``value op bound`` for
        ``op`` in ``< <= > >=`` — the satisfying set the section 5.1
        indexed variant joins against.  Candidates come from a half-band
        probe; each is verified exactly."""
        if op not in ("<", "<=", ">", ">="):
            raise IndexError_(f"unsupported comparison {op!r}")
        self._check_window(at_time)
        if op in ("<", "<="):
            band = (self.value_lo - 1.0, bound)
        else:
            band = (bound, self.value_hi + 1.0)
        box = Box.from_bounds(
            (
                max(self.epoch, at_time - eps),
                min(self.horizon, at_time + eps),
            ),
            (min(band), max(band)),
        )
        checks = {
            "<": lambda v: v < bound,
            "<=": lambda v: v <= bound,
            ">": lambda v: v > bound,
            ">=": lambda v: v >= bound,
        }
        check = checks[op]
        out = set()
        for object_id in self._candidates(box):
            if check(self._attributes[object_id].value_at(at_time)):
                out.add(object_id)
        return out

    def continuous_range(
        self, lo: float, hi: float, from_time: float
    ) -> list[RangeHit]:
        """``Answer(CQ)`` of the continuous range query: per candidate,
        the exact in-range intervals within ``[from_time, horizon]``."""
        self._check_window(from_time)
        box = Box.from_bounds((from_time, self.horizon), (lo, hi))
        hits: list[RangeHit] = []
        for object_id in sorted(self._candidates(box), key=str):
            attribute = self._attributes[object_id]
            intervals = when_value_in_range(
                attribute.value,
                attribute.function,
                lo,
                hi,
                Interval(max(from_time, attribute.updatetime), self.horizon),
                anchor_time=attribute.updatetime,
            )
            for iv in intervals:
                hits.append(RangeHit(object_id, iv.start, iv.end))
        return hits

    def scan_range(self, lo: float, hi: float, at_time: float) -> set[object]:
        """Baseline: answer the instantaneous query by examining every
        object (what section 4 sets out to avoid)."""
        return {
            object_id
            for object_id, attribute in self._attributes.items()
            if lo < attribute.value_at(at_time) < hi
        }
