"""Indexing dynamic attributes (section 4 of the paper).

"The method plots all the functions representing the way a dynamic
attribute A changes with time.  Thus, the x-axis represents time, and the
y-axis represents the value of A ... We use a spatial index for each
dynamic attribute A.  Spatial indexes use a hierarchical recursive
decomposition of space, usually into rectangles; the id of each object o
is stored in the records representing the rectangles crossed by the
A.function of o."

Implemented here:

* :class:`~repro.index.segments.TrajectorySegment` — one linear leg of a
  function-line in the (time, value) plane (or (x, y, t) space).
* :class:`~repro.index.regiontree.RegionTree` — the hierarchical
  recursive decomposition (a region quadtree in 2-D, an octree in 3-D).
* :class:`~repro.index.rtree.RTree` — an alternative access method
  (R-tree with quadratic split), for the "experimentally compare various
  mechanisms" future work of section 7.
* :class:`~repro.index.dynamicindex.DynamicAttributeIndex` — the 1-D
  attribute index of section 4: instantaneous and continuous range
  retrieval, update = remove old function-line + insert new one, periodic
  reconstruction at the horizon ``T``.
* :class:`~repro.index.spatial2d.MovingObjectIndex2D` — 2-D movement via
  the 3-D (x, y, t) scheme the paper sketches.
"""

from repro.index.segments import TrajectorySegment, segments_of_function
from repro.index.regiontree import RegionTree
from repro.index.rtree import RTree
from repro.index.dynamicindex import DynamicAttributeIndex
from repro.index.spatial2d import MovingObjectIndex2D

__all__ = [
    "TrajectorySegment",
    "segments_of_function",
    "RegionTree",
    "RTree",
    "DynamicAttributeIndex",
    "MovingObjectIndex2D",
]
