"""The persistent shard-worker pool.

Workers are long-lived processes (one pool per ``(worker count, start
method)``, shared by every query in the process): each holds a database
replica rebuilt from the last shipped :class:`~repro.parallel.motion.
MotionSnapshot` and answers ``eval`` tasks against it.  The parent ships
a snapshot only when the database *epoch* changes — a cheap token over
the update-log length, population, class/region names and window start —
so a refresh round evaluating many queries against the same database
state pays the flatten-and-ship cost once, not once per query.

Transport: motion arrays travel through
:class:`multiprocessing.shared_memory.SharedMemory` (workers copy out
and ack before the parent unlinks); tasks and results travel through
ordinary queues.  Worker exceptions are shipped back and re-raised in
the parent, so error behaviour matches serial evaluation.
"""

from __future__ import annotations

import atexit
import itertools
import pickle
from multiprocessing import get_context
from multiprocessing.context import BaseContext
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import QueryError
from repro.parallel.motion import MotionSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MpQueue

    from repro.core.history import History

__all__ = ["ShardWorkerPool", "get_pool", "shutdown_pools"]

#: Seconds a blocked result read waits between worker-liveness checks.
_POLL_INTERVAL = 0.5
#: Seconds without any result before a task is declared wedged.
_TASK_TIMEOUT = 300.0

_db_uids = itertools.count(1)


def _db_uid(db: object) -> int:
    """A stable per-database identity that survives ``id()`` reuse."""
    uid = getattr(db, "_parallel_uid", None)
    if uid is None:
        uid = next(_db_uids)
        try:
            db._parallel_uid = uid  # type: ignore[attr-defined]
        except AttributeError:  # pragma: no cover - db without __dict__
            return id(db)
    return int(uid)


def epoch_token(history: "History") -> tuple[object, ...]:
    """The snapshot-identity token of a database-backed history.

    Two histories with equal tokens have byte-identical snapshots: every
    mutation path of :class:`~repro.core.database.MostDatabase` either
    appends to the update log or changes the population / class / region
    signature, and the window start pins the statics read point.  A
    *snapshotting* :class:`~repro.core.history.FutureHistory` froze its
    contents at construction, so its content version is the log length
    recorded then (``build_log_len``), not the database's current one —
    a stale snapshot history must never be served from a newer cached
    replica, nor the other way round.
    """
    db = history.db
    if getattr(history, "_snapshot", False):
        log_len = getattr(history, "build_log_len", 0)
        population = sum(
            len(ids) for ids in history._population.values()
        )
    else:
        log_len = len(db.log())
        population = len(db)
    return (
        _db_uid(db),
        int(log_len),
        population,
        tuple(db.class_names()),
        tuple(db.region_names()),
        float(history.start),
    )


def _reraise(err: tuple[str, object]) -> None:
    """Re-raise a worker-shipped exception in the parent."""
    kind, payload = err
    if kind == "pickled":
        assert isinstance(payload, bytes)
        raise pickle.loads(payload)
    # Fallback: the exception itself would not pickle; rebuild by name.
    module, qualname, message = payload  # type: ignore[misc]
    exc_type: type[BaseException] = RuntimeError
    try:
        import importlib

        mod = importlib.import_module(module)
        candidate = mod
        for part in str(qualname).split("."):
            candidate = getattr(candidate, part)
        if isinstance(candidate, type) and issubclass(
            candidate, BaseException
        ):
            exc_type = candidate
    except Exception:  # pragma: no cover - defensive
        pass
    raise exc_type(message)


class ShardWorkerPool:
    """A fixed set of persistent shard-worker processes."""

    def __init__(
        self, workers: int, start_method: str | None = None
    ) -> None:
        if workers < 1:
            raise QueryError(f"worker count must be >= 1, got {workers}")
        if start_method is None:
            from repro.config import parallel_start_method

            start_method = parallel_start_method()
        ctx: BaseContext
        if start_method is None:
            methods = __import__("multiprocessing").get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = get_context(start_method)
        self.workers = workers
        self.start_method = start_method
        self._result_queue: "MpQueue[tuple[Any, ...]]" = ctx.Queue()
        self._task_queues: list["MpQueue[tuple[Any, ...]]"] = []
        self._processes: list["BaseProcess"] = []
        self._snap_ids = itertools.count(1)
        self._snap_token: tuple[object, ...] | None = None
        self._closed = False
        from repro.parallel.worker import worker_main

        for i in range(workers):
            tq: "MpQueue[tuple[Any, ...]]" = ctx.Queue()
            proc = ctx.Process(
                target=worker_main,
                args=(i, tq, self._result_queue),
                daemon=True,
                name=f"repro-shard-{i}",
            )
            proc.start()
            self._task_queues.append(tq)
            self._processes.append(proc)

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        dead = [p.name for p in self._processes if not p.is_alive()]
        if dead:
            raise QueryError(
                f"shard worker(s) died: {', '.join(dead)}; "
                "shut the pool down and retry"
            )

    def _collect(self, expected: int) -> list[tuple[Any, ...]]:
        """Read ``expected`` messages, watching worker liveness."""
        import queue as _queue

        out: list[tuple[Any, ...]] = []
        waited = 0.0
        while len(out) < expected:
            try:
                out.append(self._result_queue.get(timeout=_POLL_INTERVAL))
                waited = 0.0
            except _queue.Empty:
                self._check_alive()
                waited += _POLL_INTERVAL
                if waited >= _TASK_TIMEOUT:
                    raise QueryError(
                        "shard evaluation timed out waiting for workers"
                    ) from None
        return out

    # ------------------------------------------------------------------
    def ensure_snapshot(self, history: "History") -> tuple[object, ...]:
        """Ship a motion snapshot of ``history`` unless the workers
        already hold one for the same database epoch.

        Returns the epoch token (diagnostics/tests).  Blocks until every
        worker has copied the arrays out of shared memory, then unlinks
        the segments — no shared state outlives the call.
        """
        if self._closed:
            raise QueryError("worker pool is closed")
        token = epoch_token(history)
        if token == self._snap_token:
            return token
        self._check_alive()
        snap = MotionSnapshot.build(history)
        snap_id = next(self._snap_ids)
        payload = snap.to_payload()
        try:
            for tq in self._task_queues:
                tq.put(("snapshot", snap_id, payload))
            acks = self._collect(self.workers)
        finally:
            snap.release()
        for msg in acks:
            if msg[0] != "snapack" or msg[2] != snap_id:
                raise QueryError(
                    f"unexpected worker message during snapshot: {msg[0]!r}"
                )
        self._snap_token = token
        return token

    def run(self, specs: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
        """Evaluate one spec per shard, round-robin across workers.

        Returns the per-shard result payloads in spec order.  The first
        shipped worker exception (by shard index) is re-raised here, so
        a failing sharded evaluation surfaces the same error type and
        message serial evaluation would.
        """
        if self._closed:
            raise QueryError("worker pool is closed")
        if not specs:
            return []
        self._check_alive()
        for i, spec in enumerate(specs):
            self._task_queues[i % self.workers].put(("eval", i, spec))
        results: dict[int, dict[str, Any]] = {}
        errors: dict[int, tuple[str, object]] = {}
        for msg in self._collect(len(specs)):
            kind, task_id = msg[0], msg[1]
            if kind == "result":
                results[task_id] = msg[2]
            elif kind == "error":
                errors[task_id] = msg[2]
            else:
                raise QueryError(
                    f"unexpected worker message during eval: {kind!r}"
                )
        if errors:
            _reraise(errors[min(errors)])
        return [results[i] for i in range(len(specs))]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and drop the queues.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for tq in self._task_queues:
            try:
                tq.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for proc in self._processes:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
        for tq in self._task_queues:
            tq.close()
        self._result_queue.close()
        self._task_queues.clear()
        self._processes.clear()
        self._snap_token = None


# ---------------------------------------------------------------------------
# Process-wide pool registry
# ---------------------------------------------------------------------------
_POOLS: dict[tuple[int, str | None], ShardWorkerPool] = {}


def get_pool(
    workers: int, start_method: str | None = None
) -> ShardWorkerPool:
    """The shared pool for a worker count (created on first use).

    Every query evaluated with ``parallel=N`` in this process shares the
    same N workers — and therefore the same shipped snapshot per database
    epoch, which is what makes server refresh rounds amortise the
    flatten-and-ship cost across registered queries.
    """
    key = (workers, start_method)
    pool = _POOLS.get(key)
    if pool is None or pool._closed:
        pool = ShardWorkerPool(workers, start_method=start_method)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Close every pool this process created (idempotent)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)
