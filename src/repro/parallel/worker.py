"""The shard-worker process body.

A worker loops over its task queue:

* ``("snapshot", snap_id, payload)`` — attach the shared-memory motion
  arrays, copy them out, rebuild the database replica, ack.  The replica
  replaces any previous one; per-process caches are reset first so a
  forked worker can never serve answers from memo state inherited from
  the parent's address space.
* ``("eval", task_id, spec)`` — evaluate the spec's query with the split
  variable's domain restricted to the spec's shard, and ship the
  relation, counters, per-atom stats and (optionally) the per-subformula
  trace back, all keyed by *node path* (deterministic tree position)
  rather than ``id()`` so the parent can re-key them onto its own tree.
* ``("stop",)`` — exit.

Exceptions escape to the parent as shipped errors, not worker deaths:
the parent re-raises them, so sharded evaluation fails exactly like
serial evaluation does.
"""

from __future__ import annotations

import pickle
import time
from typing import TYPE_CHECKING, Any

from repro.errors import FtlSemanticsError
from repro.ftl.atoms import clear_region_tokens
from repro.ftl.context import EvalContext
from repro.parallel.motion import MotionSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.queues import Queue as MpQueue

    from repro.core.history import FutureHistory

__all__ = ["reset_worker_caches", "worker_main"]


def reset_worker_caches() -> None:
    """Reset every process-global memo a forked worker may inherit.

    Under the ``fork`` start method the child begins with a byte copy of
    the parent's heap: module-level memos (the region-token table) are
    populated with entries keyed by parent-object identities.  They are
    identity-guarded, so they could at worst pin parent objects alive —
    but a worker must never depend on (or pay for) another address
    space's memo state, so it starts from a clean slate and repopulates
    against its own replica.
    """
    clear_region_tokens()


def _ship_error(exc: BaseException) -> tuple[str, object]:
    """Encode an exception for transport (pickle, else name + message)."""
    try:
        return ("pickled", pickle.dumps(exc))
    except Exception:
        return (
            "named",
            (type(exc).__module__, type(exc).__qualname__, str(exc)),
        )


def _evaluate(state: dict[str, Any], spec: dict[str, Any]) -> dict[str, Any]:
    """Run one shard-restricted evaluation against the replica."""
    from repro.parallel.evaluator import (
        ShardedWorkerEvaluator,
        enumerate_formula_nodes,
    )

    history: "FutureHistory | None" = state.get("history")
    if history is None:
        raise FtlSemanticsError("worker received eval before any snapshot")
    query = spec["query"]
    horizon = int(spec["horizon"])
    model = spec["model"]
    plan = None
    if model is not None:
        try:
            plan = query.plan_for(model=model, order=spec["ordered"])
        except FtlSemanticsError:
            plan = None
    root = plan.resolve(query.where) if plan is not None else query.where
    nodes = enumerate_formula_nodes(root)
    id_to_path = {id(node): path for path, node in enumerate(nodes)}
    validity = None
    validity_paths = spec.get("validity_paths")
    if validity_paths:
        validity = {
            id(nodes[path]): stamp
            for path, stamp in validity_paths.items()
            if 0 <= path < len(nodes)
        }
    ctx = EvalContext(
        history,
        horizon,
        query.bindings,
        domain_restrictions={spec["split_var"]: list(spec["shard_ids"])},
    )
    trace: dict[int, Any] | None = {} if spec["want_trace"] else None
    evaluator = ShardedWorkerEvaluator(
        ctx,
        split_var=spec["split_var"],
        shard_ids=tuple(spec["shard_ids"]),
        halo=spec.get("halo", True),
        analytic_atoms=spec.get("analytic_atoms", True),
        trace=trace,
        plan=plan,
        index_pruning=spec["index_pruning"],
        solve_cache=spec["solve_cache"],
        batch_solver=spec["batch_solver"],
        validity=validity,
    )
    t0 = time.perf_counter()
    c0 = time.process_time()
    relation = evaluator.evaluate(query.where)
    eval_cpu = time.process_time() - c0
    eval_time = time.perf_counter() - t0

    shipped_trace = None
    if trace is not None:
        shipped_trace = {
            id_to_path[node_id]: (rel.variables, dict(rel.rows()))
            for node_id, rel in trace.items()
            if node_id in id_to_path
        }
    atom_stats = {}
    for node_id, stats in evaluator.atom_stats.items():
        path = id_to_path.get(node_id)
        if path is not None:
            atom_stats[path] = {
                key: stats[key]
                for key in ("instantiations", "pruned", "solves", "cache_hits")
            }
    return {
        "relation": (relation.variables, dict(relation.rows())),
        "counters": evaluator.counters(),
        "atom_stats": atom_stats,
        "trace": shipped_trace,
        "eval_time": eval_time,
        # CPU seconds spent in this worker: on a time-sliced host the
        # wall span above stretches with contention, but CPU time is the
        # shard's true work — what a real core would take.
        "eval_cpu": eval_cpu,
        "halo_prunes": evaluator.halo_prunes,
    }


def worker_main(
    worker_id: int,
    task_queue: "MpQueue[tuple[Any, ...]]",
    result_queue: "MpQueue[tuple[Any, ...]]",
) -> None:
    """Entry point of one shard-worker process (spawn-safe: top level)."""
    reset_worker_caches()
    state: dict[str, Any] = {}
    while True:
        msg = task_queue.get()
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "snapshot":
            snap_id, payload = msg[1], msg[2]
            try:
                reset_worker_caches()
                snap = MotionSnapshot.from_payload(payload)
                db, history = snap.build_database()
                state.clear()
                state.update(snap_id=snap_id, db=db, history=history)
                result_queue.put(("snapack", worker_id, snap_id))
            except BaseException as exc:  # noqa: BLE001 - shipped upward
                # A snapshot failure must still unblock the parent's ack
                # collection; ship the error in ack position.
                state.clear()
                result_queue.put(("snapack", worker_id, snap_id))
                state["snapshot_error"] = _ship_error(exc)
        elif kind == "eval":
            task_id, spec = msg[1], msg[2]
            pending = state.get("snapshot_error")
            if pending is not None:
                result_queue.put(("error", task_id, pending))
                continue
            try:
                result_queue.put(("result", task_id, _evaluate(state, spec)))
            except BaseException as exc:  # noqa: BLE001 - shipped upward
                result_queue.put(("error", task_id, _ship_error(exc)))
