"""Sharded parallel FTL evaluation (DESIGN.md §12).

The appendix algorithm's per-subformula relations ``R_g`` are keyed by
variable instantiations, and every row's interval content depends only on
the instantiation's objects plus the frozen history — never on which
*other* objects happen to be in a variable's domain.  Restricting one
FROM-bound variable (the *split variable*) to a subset of its class
therefore yields exactly the serial relation's rows whose split-variable
value lies in the subset; evaluating the query once per subset and taking
the keyed union of the results reproduces the serial answer bit for bit.

This package exploits that: :func:`repro.parallel.partition.partition_ids`
cuts the split variable's class into spatially coherent shards,
:class:`repro.parallel.pool.ShardWorkerPool` keeps a persistent
``multiprocessing`` pool whose workers hold a database replica rebuilt
from shared-memory motion arrays (:mod:`repro.parallel.motion`), and
:class:`repro.parallel.evaluator.ShardedIntervalEvaluator` dispatches one
restricted evaluation per shard and merges the relations, counters and
(optionally) per-subformula traces.

``parallel=N`` on :meth:`repro.ftl.query.FtlQuery.evaluate`,
:class:`repro.core.queries.ContinuousQuery` and
:class:`repro.server.epoch.CQServer` routes through here; ``N in (None,
0, 1, False)`` keeps the serial path, ``"auto"`` resolves to
``REPRO_PARALLEL_WORKERS`` or ``os.cpu_count() - 1``.
"""

from __future__ import annotations

import os

from repro.errors import QueryError
from repro.parallel.evaluator import (
    ShardedIntervalEvaluator,
    enumerate_formula_nodes,
    merge_relations,
)
from repro.parallel.motion import MotionSnapshot
from repro.parallel.partition import ShardPlan, halo_members, partition_ids
from repro.parallel.pool import ShardWorkerPool, get_pool, shutdown_pools

__all__ = [
    "MotionSnapshot",
    "ShardPlan",
    "ShardWorkerPool",
    "ShardedIntervalEvaluator",
    "enumerate_formula_nodes",
    "get_pool",
    "halo_members",
    "merge_relations",
    "partition_ids",
    "resolve_workers",
    "shutdown_pools",
]


def resolve_workers(parallel: object) -> int:
    """Normalise a ``parallel=`` knob value to a worker count.

    ``None`` / ``False`` / ``0`` / ``1`` mean serial (returns 1);
    ``"auto"`` resolves to ``REPRO_PARALLEL_WORKERS`` when set, else
    ``max(1, os.cpu_count() - 1)``; a positive integer is taken as-is.
    Anything else raises :class:`~repro.errors.QueryError`.
    """
    if parallel is None or parallel is False:
        return 1
    if isinstance(parallel, str):
        if parallel != "auto":
            raise QueryError(
                f"parallel must be an integer, 'auto' or None; got "
                f"{parallel!r}"
            )
        from repro.config import parallel_workers

        configured = parallel_workers()
        if configured is not None:
            return configured
        return max(1, (os.cpu_count() or 2) - 1)
    if isinstance(parallel, bool):  # True is not a worker count
        raise QueryError(
            "parallel must be an integer, 'auto' or None; got True"
        )
    if isinstance(parallel, int):
        if parallel < 0:
            raise QueryError(
                f"parallel must be non-negative, got {parallel}"
            )
        return max(1, parallel)
    raise QueryError(
        f"parallel must be an integer, 'auto' or None; got {parallel!r}"
    )
