"""Spatial sharding of an object class plus the halo exchange.

Partitioning only affects *load balance*, never correctness: the sharded
evaluator is exact for any partition of the split variable's domain
(DESIGN.md §12), so the partitioner is free to use a cheap heuristic — a
row-major grid over each object's mid-window position — rather than the
full trajectory index.  Objects whose motion cannot be positioned
(nonlinear without a spatial class, unknown attributes) are appended in
domain order, which keeps the assignment deterministic.

The *halo* of a shard is the superset of objects that may come within a
given radius of any shard member during the window.  It reuses
:meth:`repro.ftl.atoms.AtomIndexPruner.pair_candidates` — the same
trajectory-MBR probes, with the same ``radius + pad`` inflation — so halo
soundness reduces to candidate-set soundness, which
``tests/index/test_candidate_soundness.py`` and the mirror suite in
``tests/parallel/test_halo_soundness.py`` verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import MotionError, QueryError, SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History
    from repro.ftl.atoms import AtomIndexPruner

__all__ = ["ShardPlan", "halo_members", "partition_ids"]

#: Cells per axis of the partitioning grid.  Coarse on purpose: with
#: contiguous chunking after the row-major sort, anything comfortably
#: above the worker count preserves spatial locality.
_GRID = 16


def _rep_point(
    history: "History", oid: object, mid: float
) -> tuple[float, ...] | None:
    """The object's mid-window position, or ``None`` when unpositionable."""
    try:
        mover = history.moving_point(oid)
        point = mover.position_at(mid)
    except (QueryError, SchemaError, MotionError):
        return None
    return tuple(float(c) for c in point)


def partition_ids(
    history: "History",
    ids: Sequence[object],
    shard_count: int,
    start: float,
    end: float,
) -> list[list[object]]:
    """Split ``ids`` into up to ``shard_count`` spatially coherent shards.

    Deterministic: the same history, ids and window always produce the
    same shards.  Every id appears in exactly one shard; shard sizes
    differ by at most one; fewer (never empty) shards come back when
    there are fewer ids than requested shards.
    """
    if shard_count < 1:
        raise QueryError(f"shard_count must be >= 1, got {shard_count}")
    n = len(ids)
    shard_count = min(shard_count, n)
    if shard_count <= 1:
        return [list(ids)] if ids else []

    mid = (float(start) + float(end)) / 2.0
    reps: list[tuple[object, tuple[float, ...] | None]] = [
        (oid, _rep_point(history, oid, mid)) for oid in ids
    ]
    points = [p for _oid, p in reps if p is not None]
    los: list[float] = []
    spans: list[float] = []
    if points:
        dims = min(len(p) for p in points)
        for d in range(dims):
            coords = [p[d] for p in points]
            lo, hi = min(coords), max(coords)
            los.append(lo)
            spans.append((hi - lo) or 1.0)

    def cell_key(p: tuple[float, ...] | None, seq: int) -> tuple[int, int, int]:
        if p is None or not los:
            return (1, 0, seq)  # unpositionable: stable domain order
        key = 0
        for d in range(len(los)):
            frac = (p[d] - los[d]) / spans[d]
            cell = min(_GRID - 1, max(0, int(frac * _GRID)))
            key = key * _GRID + cell
        return (0, key, seq)

    order = sorted(
        range(n), key=lambda i: cell_key(reps[i][1], i)
    )
    base, extra = divmod(n, shard_count)
    shards: list[list[object]] = []
    cursor = 0
    for s in range(shard_count):
        size = base + (1 if s < extra else 0)
        shards.append([ids[i] for i in order[cursor : cursor + size]])
        cursor += size
    return shards


def halo_members(
    pruner: "AtomIndexPruner",
    members: Sequence[object],
    radius: float,
) -> frozenset[object] | None:
    """Objects that may come within ``radius`` of any shard member during
    the window, or ``None`` when the halo cannot be bounded (a member is
    unindexable, so *every* object is a potential partner).

    Superset guarantee, inherited from
    :meth:`~repro.ftl.atoms.AtomIndexPruner.pair_candidates`: if
    ``DIST(m, b) <= radius`` holds at any time of the window for a member
    ``m``, then ``b`` is in the returned set.
    """
    if not math.isfinite(radius) or radius < 0:
        return None
    halo: set[object] = set()
    for oid in members:
        cands = pruner.pair_candidates(oid, float(radius))
        if cands is None:
            return None
        halo.update(cands)
    return frozenset(halo)


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one split variable's class into shards."""

    split_var: str
    class_name: str
    shards: tuple[tuple[object, ...], ...]

    @classmethod
    def build(
        cls,
        history: "History",
        split_var: str,
        class_name: str,
        shard_count: int,
        start: float,
        end: float,
    ) -> "ShardPlan":
        """Partition the class population as of ``history``."""
        ids = history.object_ids(class_name)
        shards = partition_ids(history, ids, shard_count, start, end)
        return cls(
            split_var=split_var,
            class_name=class_name,
            shards=tuple(tuple(s) for s in shards),
        )

    @property
    def shard_count(self) -> int:
        """Number of (non-empty) shards."""
        return len(self.shards)

    def shard_of(self, oid: object) -> int | None:
        """Index of the shard containing ``oid`` (``None`` when absent)."""
        for i, members in enumerate(self.shards):
            if oid in members:
                return i
        return None

    def halo(
        self, pruner: "AtomIndexPruner", idx: int, radius: float
    ) -> frozenset[object] | None:
        """The radius-inflated halo of shard ``idx`` (see
        :func:`halo_members`)."""
        return halo_members(pruner, self.shards[idx], radius)
