"""Shared-memory motion snapshots for shard workers.

A :class:`MotionSnapshot` flattens a history's population into numpy
triple arrays — ``value`` / ``updatetime`` / ``slope`` per dynamic
attribute row, plus a ragged breakpoint pool for piecewise-linear motion —
that ship to worker processes through
:class:`multiprocessing.shared_memory.SharedMemory` instead of pickled
object graphs.  Workers rebuild a :class:`~repro.core.database.
MostDatabase` replica from the arrays; evaluating on the replica is
bit-identical to evaluating on the original because every reconstructed
triple reproduces the original's *values and value types* exactly:

* int-typed values, update times and slopes (the common case — worlds are
  built from integer coordinates) are flagged per row and restored as
  ``int``, so instantiation keys and ``Assign`` value domains keep their
  types (``str((5, 'c0')) != str((5.0, 'c0'))`` — display ordering would
  drift otherwise);
* values that do not round-trip through ``float64``, non-numeric values,
  and non-linear functions (``ShiftedFunction``, ``PolynomialFunction``,
  ``SinusoidFunction``) fall back to a per-row pickle — exact by
  construction and rare by construction (the batch solver cannot
  vectorize them either).

The arrays feed the PR 6 batch solver directly: a worker's evaluator
builds its :class:`~repro.motion.batch.LinearTable` rows from the very
triples reconstructed here (see :func:`repro.motion.batch.export_motion_rows`
for the shared flattening core).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

try:  # gated: sharded evaluation falls back to serial without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.core.database import MostDatabase
from repro.core.dynamic import DynamicAttribute
from repro.core.history import FutureHistory
from repro.core.objects import ObjectClass
from repro.errors import QueryError
from repro.motion.batch import export_motion_rows
from repro.motion.functions import LinearFunction, PiecewiseLinearFunction
from repro.temporal import SimulationClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History

__all__ = ["MotionSnapshot", "SharedPayload"]

#: ``kind`` codes of one dynamic-attribute row.
KIND_LINEAR = 0
KIND_PIECEWISE = 1
KIND_PICKLED = 2

#: ``intflags`` bits: which fields were ``int``-typed in the original.
FLAG_VALUE_INT = 1
FLAG_UPDATETIME_INT = 2
FLAG_SLOPE_INT = 4

_ARRAY_NAMES = (
    "value",
    "updatetime",
    "slope",
    "kind",
    "intflags",
    "pw_offsets",
    "pw_starts",
    "pw_slopes",
)


def _attach_untracked(shm_name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker bookkeeping.

    Attaching registers the segment with the resource tracker a second
    time on Python < 3.13 (cpython#82300), and with the fork start
    method every worker shares the parent's tracker — duplicate
    register/unregister messages against its per-name *set* desync the
    accounting into "leaked segment" warnings or KeyErrors at shutdown.
    The parent owns every segment and unlinks it right after the workers
    ack, so worker attachments need no tracking at all: suppress the
    registration for the duration of the attach (the worker loop is
    single-threaded, so the patch cannot leak into other attaches).
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original


@dataclass
class SharedPayload:
    """The picklable wire form of a snapshot: small meta + shm names."""

    meta: bytes
    blocks: list[tuple[str, str, str, tuple[int, ...]]]


@dataclass
class MotionSnapshot:
    """A history's population flattened into transportable arrays."""

    meta: dict[str, object]
    arrays: dict[str, "np.ndarray[tuple[int], np.dtype[np.float64]] | np.ndarray[tuple[int], np.dtype[np.int64]] | np.ndarray[tuple[int], np.dtype[np.int8]]"]
    _segments: list[shared_memory.SharedMemory] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Build (parent side)
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, history: "History") -> "MotionSnapshot":
        """Flatten ``history``'s population (classes in database order,
        objects in class order, attributes in ``all_dynamic`` order)."""
        db = getattr(history, "db", None)
        if db is None:
            raise QueryError(
                "a motion snapshot needs a database-backed history"
            )
        classes: list[ObjectClass] = [
            db.object_class(name) for name in db.class_names()
        ]
        ids: dict[str, list[object]] = {
            c.name: history.object_ids(c.name) for c in classes
        }
        statics: dict[str, dict[object, dict[str, object]]] = {}
        for c in classes:
            if not c.static_attributes:
                continue
            per_class: dict[object, dict[str, object]] = {}
            for oid in ids[c.name]:
                values = {
                    attr: history.value(oid, attr, history.start)
                    for attr in c.static_attributes
                }
                values = {a: v for a, v in values.items() if v is not None}
                if values:
                    per_class[oid] = values
            if per_class:
                statics[c.name] = per_class

        triples: list[DynamicAttribute] = []
        for c in classes:
            for oid in ids[c.name]:
                for attr in c.all_dynamic:
                    triples.append(history.dynamic_triple(oid, attr))
        rows = export_motion_rows(triples)

        meta: dict[str, object] = {
            "start": history.start,
            "classes": classes,
            "ids": ids,
            "statics": statics,
            "regions": [(name, db.region(name)) for name in db.region_names()],
            "fallback": rows.fallback,
        }
        arrays = {
            "value": rows.value,
            "updatetime": rows.updatetime,
            "slope": rows.slope,
            "kind": rows.kind,
            "intflags": rows.intflags,
            "pw_offsets": rows.pw_offsets,
            "pw_starts": rows.pw_starts,
            "pw_slopes": rows.pw_slopes,
        }
        return cls(meta=meta, arrays=arrays)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def to_payload(self) -> SharedPayload:
        """Export the arrays into shared memory (kept alive on ``self``
        until :meth:`release`) and pickle the small meta."""
        blocks: list[tuple[str, str, str, tuple[int, ...]]] = []
        for name in _ARRAY_NAMES:
            arr = np.ascontiguousarray(self.arrays[name])
            if arr.nbytes:
                seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
                view: "np.ndarray[tuple[int], np.dtype[np.float64]]" = (
                    np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                )
                view[:] = arr
                self._segments.append(seg)
                blocks.append((name, seg.name, arr.dtype.str, arr.shape))
            else:
                blocks.append((name, "", arr.dtype.str, arr.shape))
        return SharedPayload(
            meta=pickle.dumps(self.meta, protocol=pickle.HIGHEST_PROTOCOL),
            blocks=blocks,
        )

    def release(self) -> None:
        """Close and unlink every shared-memory segment this snapshot
        exported.  Safe to call more than once."""
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._segments.clear()

    @classmethod
    def from_payload(cls, payload: SharedPayload) -> "MotionSnapshot":
        """Worker side: attach the shared arrays and *copy* them out, so
        the worker holds no reference into the parent's segments."""
        meta = pickle.loads(payload.meta)
        arrays: dict[str, "np.ndarray[tuple[int], np.dtype[np.float64]]"] = {}
        for name, shm_name, dtype_str, shape in payload.blocks:
            if shm_name == "":
                arrays[name] = np.empty(shape, dtype=np.dtype(dtype_str))
                continue
            seg = _attach_untracked(shm_name)
            try:
                view = np.ndarray(
                    shape, dtype=np.dtype(dtype_str), buffer=seg.buf
                )
                arrays[name] = view.copy()
            finally:
                seg.close()
        return cls(meta=meta, arrays=arrays)

    # ------------------------------------------------------------------
    # Rebuild (worker side)
    # ------------------------------------------------------------------
    def build_database(self) -> tuple[MostDatabase, FutureHistory]:
        """Reconstruct a database replica and its read-through history.

        The replica is private to the calling process and never mutated,
        so the history reads through (``snapshot=False``) at O(1)
        construction cost per evaluation.
        """
        meta = self.meta
        start = meta["start"]
        assert isinstance(start, (int, float))
        clock = SimulationClock(start=max(0, int(start)))
        db = MostDatabase(clock=clock)
        classes = meta["classes"]
        assert isinstance(classes, list)
        ids = meta["ids"]
        assert isinstance(ids, dict)
        statics = meta["statics"]
        assert isinstance(statics, dict)
        regions = meta["regions"]
        assert isinstance(regions, list)
        fallback = meta["fallback"]
        assert isinstance(fallback, dict)

        for c in classes:
            db.create_class(c)
        for name, region in regions:
            db.define_region(name, region)

        value = self.arrays["value"]
        updatetime = self.arrays["updatetime"]
        slope = self.arrays["slope"]
        kind = self.arrays["kind"]
        intflags = self.arrays["intflags"]
        pw_offsets = self.arrays["pw_offsets"]
        pw_starts = self.arrays["pw_starts"]
        pw_slopes = self.arrays["pw_slopes"]

        row = 0
        pw_seq = 0
        for c in classes:
            class_statics = statics.get(c.name, {})
            for oid in ids[c.name]:
                dynamic: dict[str, DynamicAttribute] = {}
                for attr in c.all_dynamic:
                    k = int(kind[row])
                    if k == KIND_PICKLED:
                        dynamic[attr] = fallback[row]
                    else:
                        flags = int(intflags[row])
                        v: float | int = float(value[row])
                        if flags & FLAG_VALUE_INT:
                            v = int(v)
                        u: float | int = float(updatetime[row])
                        if flags & FLAG_UPDATETIME_INT:
                            u = int(u)
                        if k == KIND_LINEAR:
                            s: float | int = float(slope[row])
                            if flags & FLAG_SLOPE_INT:
                                s = int(s)
                            fn: LinearFunction | PiecewiseLinearFunction = (
                                LinearFunction(s)
                            )
                        else:
                            lo = int(pw_offsets[pw_seq])
                            hi = int(pw_offsets[pw_seq + 1])
                            fn = PiecewiseLinearFunction(
                                list(
                                    zip(
                                        pw_starts[lo:hi].tolist(),
                                        pw_slopes[lo:hi].tolist(),
                                    )
                                )
                            )
                        dynamic[attr] = DynamicAttribute(
                            value=v, updatetime=u, function=fn
                        )
                    if k == KIND_PIECEWISE:
                        pw_seq += 1
                    row += 1
                db.add_object(
                    c.name,
                    oid,
                    static=class_statics.get(oid),
                    dynamic=dynamic,
                )
        history = FutureHistory(db, start=start, snapshot=False)
        return db, history
