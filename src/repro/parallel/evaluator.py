"""Sharded interval evaluation: shard-local evaluators plus the merge.

Soundness (DESIGN.md §12, proven by ``tests/parallel/``): every row of an
``R_g`` relation keys a variable instantiation whose interval content
depends only on the instantiated objects and the frozen history — never
on which *other* values populate a domain.  Restricting the split
variable's domain to a shard therefore yields exactly the serial
relation's rows whose split value lies in the shard; the keyed union of
the per-shard relations *is* the serial relation, bit for bit.  The
union is associative, commutative and idempotent (``IntervalSet.union``
on normalised sets), so merge order is irrelevant —
``tests/parallel/test_merge_laws.py`` property-checks the laws.

Three pieces live here:

* :func:`enumerate_formula_nodes` — the deterministic node ordering that
  lets ``id()``-keyed traces, validity stamps and atom stats cross
  process boundaries as tree *paths*;
* :class:`ShardedWorkerEvaluator` — the in-worker evaluator: a plain
  :class:`~repro.ftl.evaluator.IntervalEvaluator` over a
  domain-restricted context, plus the halo fast path for distance atoms
  (a shard-level candidate superset answers far pairs with one set probe
  instead of a per-row index probe — returning exactly the rows the
  base gate would, so counters stay shard-exact);
* :class:`ShardedIntervalEvaluator` — the parent orchestrator: splits,
  dispatches to the persistent pool, merges relations / counters /
  traces, and degrades to in-process serial evaluation whenever sharding
  cannot help (no splittable variable, tiny domain, no numpy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.errors import FtlSemanticsError, QueryError
from repro.ftl.ast import (
    AndF,
    Assign,
    Compare,
    Formula,
    NotF,
    OrF,
    Until,
    UntilWithin,
    Var,
)
from repro.ftl.atoms import _DIST_OPS
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.ftl.relations import EMPTY_SET, FtlRelation
from repro.parallel.partition import ShardPlan, halo_members
from repro.temporal import DISCRETE, IntervalSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.history import History
    from repro.ftl.analysis.plan import EvalPlan
    from repro.ftl.query import FtlQuery
    from repro.parallel.pool import ShardWorkerPool

__all__ = [
    "ShardedIntervalEvaluator",
    "ShardedWorkerEvaluator",
    "enumerate_formula_nodes",
    "merge_relations",
]

#: Temporal counter names summed across shards.
_COUNTER_KEYS = (
    "kinetic_solves",
    "sampled_atom_evals",
    "pruned_instantiations",
    "cache_hits",
    "cache_misses",
    "cache_shift_hits",
)

_ATOM_STAT_KEYS = ("instantiations", "pruned", "solves", "cache_hits")


def enumerate_formula_nodes(root: Formula) -> list[Formula]:
    """Every formula node of a tree, in deterministic preorder.

    Shared (hash-consed) nodes appear once, at their first occurrence —
    matching how ``id()``-keyed traces store them.  Because evaluation
    plans are deterministic functions of (query, cost model), the parent
    and every worker enumerate *structurally identical* trees: a node's
    position in this list (its *path*) is the cross-process name for the
    ``id()``-keyed entries of traces, validity stamps and atom stats.
    """
    nodes: list[Formula] = []
    seen: set[int] = set()
    stack: list[Formula] = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        nodes.append(node)
        if isinstance(node, (AndF, OrF, Until, UntilWithin)):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Assign):
            stack.append(node.body)
        else:
            operand = getattr(node, "operand", None)
            if isinstance(operand, Formula):
                stack.append(operand)
    return nodes


def merge_relations(parts: Iterable[FtlRelation]) -> FtlRelation:
    """The keyed union of per-shard relations over identical variables.

    Rows keyed by instantiations appearing in exactly one shard (the
    common case: the instantiation mentions the split variable) are
    adopted as-is; rows appearing in several shards (the instantiation
    only mentions unsplit variables, so every shard computed the full —
    identical — answer) union their interval sets, which is idempotent
    on normalised sets.  The operation is associative and commutative.
    """
    parts = list(parts)
    if not parts:
        raise FtlSemanticsError("cannot merge zero shard relations")
    variables = parts[0].variables
    out = FtlRelation(variables)
    for part in parts:
        if part.variables != variables:
            raise FtlSemanticsError(
                f"shard relations disagree on variables: "
                f"{part.variables} != {variables}"
            )
        for inst, iset in part.rows():
            out.add(inst, iset)
    return out


class ShardedWorkerEvaluator(IntervalEvaluator):
    """The in-worker evaluator: serial semantics + the halo fast path.

    Evaluation itself is exactly :class:`IntervalEvaluator` over a
    context whose split-variable domain is restricted to the shard.  The
    only override is the distance-atom gate: when the split variable is
    the *left* leg of a ``DIST(split, other) op bound`` atom, the shard's
    radius-inflated halo (the union of every member's trajectory-MBR
    candidates, :func:`~repro.parallel.partition.halo_members`) answers
    far partners with one frozenset probe.  ``other ∉ halo`` implies
    ``other ∉ pair_candidates(member, bound)`` for every member, so the
    fast path fires only on rows the base gate would answer — with the
    identical answer — and falls through to the base gate otherwise:
    relations *and* counters are bit-identical with the halo on or off.
    """

    def __init__(
        self,
        ctx: EvalContext,
        *,
        split_var: str,
        shard_ids: Sequence[object],
        halo: bool = True,
        **kwargs: Any,
    ) -> None:
        super().__init__(ctx, **kwargs)
        self.split_var = split_var
        self.shard_ids = tuple(shard_ids)
        self.halo = halo
        #: Rows answered via the halo probe (instead of a per-row index
        #: probe) — diagnostics only; they are a subset of
        #: ``pruned_instantiations``.
        self.halo_prunes = 0
        self._halos: dict[float, frozenset[object] | None] = {}

    def _halo_for(self, radius: float) -> frozenset[object] | None:
        halo = self._halos.get(radius)
        if radius not in self._halos:
            halo = halo_members(
                self.ctx.atom_pruner(), self.shard_ids, radius
            )
            self._halos[radius] = halo
        return halo

    def _atom_gate(
        self, f: Formula
    ) -> "Callable[[dict[str, object]], IntervalSet | None] | None":
        gate: Callable[[dict[str, object]], IntervalSet | None] | None = (
            super()._atom_gate(f)
        )
        if gate is None or not self.halo or not isinstance(f, Compare):
            return gate
        pruner = self.ctx.atom_pruner()
        spec = pruner._dist_spec(f)
        if spec is None:
            return gate
        dist_term, bound_term, op = spec
        left = dist_term.left
        if not (isinstance(left, Var) and left.name == self.split_var):
            return gate
        other_leg = dist_term.right
        holds_when_far = _DIST_OPS[op]
        base_gate = gate
        ctx = self.ctx
        full = IntervalSet.span(ctx.start, ctx.end, DISCRETE)

        def halo_gate(env: dict[str, object]) -> IntervalSet | None:
            bound = ctx.eval_term(bound_term, env, ctx.start)
            if isinstance(bound, (int, float)) and bound >= 0:
                halo = self._halo_for(float(bound))
                if halo is not None:
                    partner = ctx.eval_term(other_leg, env, ctx.start)
                    if partner not in halo and partner in pruner._boxes:
                        # Disjoint from every member's inflated boxes:
                        # the base gate would answer identically.
                        self.halo_prunes += 1
                        return full if holds_when_far else EMPTY_SET
            return base_gate(env)

        return halo_gate


class ShardedIntervalEvaluator:
    """Parent-side orchestration of one sharded evaluation.

    Build one per :meth:`~repro.ftl.query.FtlQuery.evaluate_full` call
    with ``parallel=N``; :meth:`evaluate` returns the (uncompleted,
    unprojected) ``R_where`` relation exactly as a serial
    :class:`IntervalEvaluator` would.  After it returns, merged
    :attr:`counters`, :attr:`atom_stats`, per-shard :attr:`shard_times`
    and the (optionally merged) :attr:`trace` are available; when
    sharding could not apply, :attr:`sharded` is False and the numbers
    are the in-process serial evaluator's.
    """

    def __init__(
        self,
        query: "FtlQuery",
        history: "History",
        horizon: int,
        workers: int,
        *,
        plan: "EvalPlan | None" = None,
        ordered: bool = True,
        index_pruning: bool = True,
        solve_cache: bool = True,
        batch_solver: bool = True,
        analytic_atoms: bool = True,
        validity: "Mapping[int, float] | None" = None,
        want_trace: bool = False,
        halo: bool = True,
        start_method: str | None = None,
        pool: "ShardWorkerPool | None" = None,
    ) -> None:
        from repro.core.history import FutureHistory

        if not isinstance(history, FutureHistory):
            raise QueryError(
                "parallel evaluation requires a future (MOST) history; "
                "recorded histories replay an update log that has no "
                "shared-memory snapshot form"
            )
        if workers < 1:
            raise QueryError(f"worker count must be >= 1, got {workers}")
        self.query = query
        self.history = history
        self.horizon = int(horizon)
        self.workers = int(workers)
        if plan is None and ordered:
            try:
                plan = query.plan_for(history=history, horizon=horizon)
            except FtlSemanticsError:
                plan = None
        self.plan = plan
        self.index_pruning = index_pruning
        self.solve_cache = solve_cache
        self.batch_solver = batch_solver
        self.analytic_atoms = analytic_atoms
        self.validity = validity
        self.want_trace = want_trace
        self.halo = halo
        self.start_method = start_method
        self._pool = pool
        #: Full-domain context — the merge target and ``_complete`` input.
        self.ctx = EvalContext(history, self.horizon, query.bindings)
        self.split_var = self._choose_split_var()
        #: Filled by :meth:`evaluate`.
        self.sharded = False
        self.shard_plan: ShardPlan | None = None
        self.counters: dict[str, int] = {k: 0 for k in _COUNTER_KEYS}
        self.atom_stats: dict[int, dict[str, object]] = {}
        self.trace: dict[int, FtlRelation] | None = (
            {} if want_trace else None
        )
        #: Per-shard in-worker evaluation seconds (critical-path metric).
        self.shard_times: list[float] = []
        #: Per-shard in-worker CPU seconds — contention-immune work
        #: measure for critical-path estimates on time-sliced hosts.
        self.shard_cpu_times: list[float] = []
        #: Rows the workers answered through the halo probe.
        self.halo_prunes = 0

    # ------------------------------------------------------------------
    def _choose_split_var(self) -> str | None:
        """The FROM-bound variable to shard on: largest domain, name as
        tie-break — deterministic for a given query and history."""
        free = self.query.where.free_vars()
        best: tuple[int, str] | None = None
        for var in sorted(self.query.bindings):
            if var not in free:
                continue
            size = len(self.ctx.domain(var))
            if best is None or size > best[0]:
                best = (size, var)
        return None if best is None else best[1]

    @property
    def viable(self) -> bool:
        """Whether sharding can apply (enough workers, a splittable
        variable with at least two values, numpy present)."""
        from repro.motion.batch import available

        return (
            self.workers >= 2
            and self.split_var is not None
            and len(self.ctx.domain(self.split_var)) >= 2
            and available()
        )

    # ------------------------------------------------------------------
    def evaluate(self) -> FtlRelation:
        """The merged ``R_where`` (falls back to in-process serial
        evaluation — same answers, same trace keys — when not viable)."""
        if not self.viable:
            return self._evaluate_serial()
        return self._evaluate_sharded()

    def _evaluate_serial(self) -> FtlRelation:
        evaluator = IntervalEvaluator(
            self.ctx,
            analytic_atoms=self.analytic_atoms,
            trace=self.trace,
            plan=self.plan,
            index_pruning=self.index_pruning,
            solve_cache=self.solve_cache,
            batch_solver=self.batch_solver,
            validity=dict(self.validity) if self.validity else None,
        )
        relation = evaluator.evaluate(self.query.where)
        self.sharded = False
        self.counters = evaluator.counters()
        self.atom_stats = evaluator.atom_stats
        return relation

    def _parent_nodes(self) -> list[Formula]:
        root = (
            self.plan.resolve(self.query.where)
            if self.plan is not None
            else self.query.where
        )
        return enumerate_formula_nodes(root)

    def _evaluate_sharded(self) -> FtlRelation:
        from repro.parallel.pool import get_pool

        assert self.split_var is not None
        class_name = self.query.bindings[self.split_var]
        shard_count = min(
            self.workers, len(self.ctx.domain(self.split_var))
        )
        shard_plan = ShardPlan.build(
            self.history,
            self.split_var,
            class_name,
            shard_count,
            self.ctx.start,
            self.ctx.end,
        )
        self.shard_plan = shard_plan
        nodes = self._parent_nodes()
        id_to_path = {id(node): path for path, node in enumerate(nodes)}
        validity_paths = None
        if self.validity:
            validity_paths = {
                id_to_path[node_id]: stamp
                for node_id, stamp in self.validity.items()
                if node_id in id_to_path
            }
        spec_base: dict[str, Any] = {
            "query": self.query,
            "horizon": self.horizon,
            "split_var": self.split_var,
            "model": None if self.plan is None else self.plan.model,
            "ordered": True if self.plan is None else self.plan.ordered,
            "index_pruning": self.index_pruning,
            "solve_cache": self.solve_cache,
            "batch_solver": self.batch_solver,
            "analytic_atoms": self.analytic_atoms,
            "want_trace": self.want_trace,
            "validity_paths": validity_paths,
            "halo": self.halo,
        }
        specs = [
            dict(spec_base, shard_ids=shard)
            for shard in shard_plan.shards
        ]
        pool = self._pool or get_pool(
            self.workers, start_method=self.start_method
        )
        pool.ensure_snapshot(self.history)
        payloads = pool.run(specs)

        relation = merge_relations(
            FtlRelation(variables, rows)
            for variables, rows in (p["relation"] for p in payloads)
        )
        self.sharded = True
        self.shard_times = [float(p["eval_time"]) for p in payloads]
        self.shard_cpu_times = [
            float(p.get("eval_cpu", p["eval_time"])) for p in payloads
        ]
        self.halo_prunes = sum(int(p["halo_prunes"]) for p in payloads)
        counters = {key: 0 for key in _COUNTER_KEYS}
        for payload in payloads:
            for key in _COUNTER_KEYS:
                counters[key] += int(payload["counters"].get(key, 0))
        self.counters = counters
        for payload in payloads:
            for path, stats in payload["atom_stats"].items():
                node = nodes[path]
                merged = self.atom_stats.get(id(node))
                if merged is None:
                    merged = self.atom_stats[id(node)] = {
                        "formula": node,
                        **{key: 0 for key in _ATOM_STAT_KEYS},
                    }
                for key in _ATOM_STAT_KEYS:
                    merged[key] += int(stats[key])
        if self.trace is not None:
            merged_trace: dict[int, list[FtlRelation]] = {}
            for payload in payloads:
                shipped = payload["trace"] or {}
                for path, (variables, rows) in shipped.items():
                    merged_trace.setdefault(path, []).append(
                        FtlRelation(variables, rows)
                    )
            for path, parts in merged_trace.items():
                self.trace[id(nodes[path])] = merge_relations(parts)
        return relation
