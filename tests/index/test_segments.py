"""Unit tests for trajectory segments."""

import pytest

from repro.core import DynamicAttribute
from repro.errors import IndexError_
from repro.geometry import Point
from repro.index import TrajectorySegment, segments_of_function
from repro.motion import PiecewiseLinearFunction, SinusoidFunction
from repro.spatial import Box


class TestSegment:
    def test_dim_mismatch(self):
        with pytest.raises(IndexError_):
            TrajectorySegment("o", Point(0, 0), Point(1, 1, 1))

    def test_bbox(self):
        s = TrajectorySegment("o", Point(3, 9), Point(1, 2))
        assert s.bbox() == Box.from_bounds((1, 3), (2, 9))

    def test_intersects_crossing(self):
        s = TrajectorySegment("o", Point(0, 0), Point(10, 10))
        assert s.intersects(Box.from_bounds((4, 6), (4, 6)))
        assert not s.intersects(Box.from_bounds((0, 10), (11, 12)))

    def test_intersects_corner_graze(self):
        s = TrajectorySegment("o", Point(0, 0), Point(10, 10))
        assert s.intersects(Box.from_bounds((5, 10), (0, 5)))  # touches at (5,5)

    def test_intersects_through_box_without_endpoints(self):
        s = TrajectorySegment("o", Point(-10, 5), Point(10, 5))
        assert s.intersects(Box.from_bounds((0, 1), (0, 10)))

    def test_axis_parallel_segment(self):
        s = TrajectorySegment("o", Point(5, 0), Point(5, 10))
        assert s.intersects(Box.from_bounds((4, 6), (2, 3)))
        assert not s.intersects(Box.from_bounds((6, 7), (2, 3)))

    def test_3d_intersects(self):
        s = TrajectorySegment("o", Point(0, 0, 0), Point(10, 10, 10))
        assert s.intersects(Box.from_bounds((4, 6), (4, 6), (4, 6)))
        assert not s.intersects(Box.from_bounds((4, 6), (4, 6), (8, 9)))


class TestSegmentsOfFunction:
    def test_linear_single_segment(self):
        attr = DynamicAttribute.linear(10.0, 2.0)
        [s] = segments_of_function("o", attr, 0, 5)
        assert s.a == Point(0, 10)
        assert s.b == Point(5, 20)

    def test_updatetime_offset(self):
        attr = DynamicAttribute.linear(10.0, 2.0, updatetime=3)
        [s] = segments_of_function("o", attr, 3, 8)
        assert s.a == Point(3, 10)
        assert s.b == Point(8, 20)

    def test_piecewise(self):
        f = PiecewiseLinearFunction([(0, 1), (2, -1)])
        attr = DynamicAttribute(0.0, function=f)
        segs = segments_of_function("o", attr, 0, 5)
        assert len(segs) == 2
        assert segs[0].b == Point(2, 2)
        assert segs[1].b == Point(5, -1)

    def test_nonlinear_rejected(self):
        attr = DynamicAttribute(0.0, function=SinusoidFunction(1, 1))
        with pytest.raises(IndexError_):
            segments_of_function("o", attr, 0, 5)

    def test_bad_window(self):
        attr = DynamicAttribute.linear(0.0, 1.0)
        with pytest.raises(IndexError_):
            segments_of_function("o", attr, 5, 5)
