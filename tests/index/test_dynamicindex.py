"""Unit + property tests for the section 4 dynamic-attribute index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicAttribute
from repro.errors import IndexError_
from repro.geometry import Point
from repro.index import DynamicAttributeIndex, MovingObjectIndex2D
from repro.motion import PiecewiseLinearFunction, linear_moving_point
from repro.spatial import Box


def make_index(structure="regiontree") -> DynamicAttributeIndex:
    return DynamicAttributeIndex(
        epoch=0, horizon=100, value_lo=-100, value_hi=100, structure=structure
    )


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(IndexError_):
            DynamicAttributeIndex(5, 5, 0, 1)

    def test_bad_value_range(self):
        with pytest.raises(IndexError_):
            DynamicAttributeIndex(0, 1, 5, 5)

    def test_bad_structure(self):
        with pytest.raises(IndexError_):
            make_index(structure="skiplist")

    def test_duplicate_insert(self):
        idx = make_index()
        idx.insert("o", DynamicAttribute.linear(0, 1))
        with pytest.raises(IndexError_):
            idx.insert("o", DynamicAttribute.linear(0, 1))
        assert "o" in idx
        assert len(idx) == 1

    def test_remove_missing(self):
        with pytest.raises(IndexError_):
            make_index().remove("ghost")

    def test_query_outside_window(self):
        idx = make_index()
        with pytest.raises(IndexError_):
            idx.instantaneous_range(0, 1, at_time=500)
        with pytest.raises(IndexError_):
            idx.continuous_range(0, 1, from_time=-5)


@pytest.mark.parametrize("structure", ["regiontree", "rtree"])
class TestSection4Queries:
    def test_paper_instantaneous_query(self, structure):
        # "Retrieve the objects for which currently 4 < A < 5" at 1:00am.
        idx = make_index(structure)
        idx.insert("slow", DynamicAttribute.linear(4.5, 0.0))   # always in
        idx.insert("riser", DynamicAttribute.linear(0.0, 0.9))  # in around t=5
        idx.insert("far", DynamicAttribute.linear(50.0, 0.0))   # never
        assert idx.instantaneous_range(4, 5, at_time=1) == {"slow"}
        assert idx.instantaneous_range(4, 5, at_time=5) == {"slow", "riser"}

    def test_continuous_query_intervals(self, structure):
        idx = make_index(structure)
        idx.insert("riser", DynamicAttribute.linear(0.0, 1.0))
        hits = idx.continuous_range(4, 5, from_time=1)
        assert len(hits) == 1
        assert hits[0].object_id == "riser"
        assert hits[0].begin == pytest.approx(4)
        assert hits[0].end == pytest.approx(5)

    def test_update_moves_function_line(self, structure):
        idx = make_index(structure)
        attr = DynamicAttribute.linear(0.0, 1.0)
        idx.insert("o", attr)
        assert idx.instantaneous_range(9, 11, at_time=10) == {"o"}
        idx.update("o", attr.updated(5, function=PiecewiseLinearFunction([(0, 0)])))
        # After the update the value is frozen at 5.
        assert idx.instantaneous_range(9, 11, at_time=10) == set()
        assert idx.instantaneous_range(4, 6, at_time=10) == {"o"}

    def test_matches_scan_baseline(self, structure):
        idx = make_index(structure)
        for i in range(50):
            idx.insert(f"o{i}", DynamicAttribute.linear(float(i - 25), 0.5 * (i % 5 - 2)))
        for t in (0, 10, 60, 100):
            for lo, hi in ((-5, 5), (0, 1), (-80, 80)):
                assert idx.instantaneous_range(lo, hi, t) == idx.scan_range(lo, hi, t)

    def test_reconstruction(self, structure):
        idx = make_index(structure)
        idx.insert("o", DynamicAttribute.linear(0.0, 1.0))
        idx.reconstruct(new_epoch=100)
        assert idx.epoch == 100
        assert idx.horizon == 200
        assert idx.instantaneous_range(100, 160, at_time=150) == {"o"}
        with pytest.raises(IndexError_):
            idx.instantaneous_range(0, 1, at_time=50)


values = st.integers(min_value=-50, max_value=50)
speeds = st.integers(min_value=-3, max_value=3)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(values, speeds), min_size=1, max_size=25),
    st.integers(min_value=0, max_value=100),
    values,
    st.integers(min_value=1, max_value=30),
)
def test_index_equals_scan_property(attrs, t, lo, width):
    idx = make_index()
    for i, (v, s) in enumerate(attrs):
        idx.insert(f"o{i}", DynamicAttribute.linear(float(v), float(s)))
    hi = lo + width
    assert idx.instantaneous_range(lo, hi, t) == idx.scan_range(lo, hi, t)


class TestMovingObjectIndex2D:
    AREA = Box.from_bounds((0, 100), (0, 100))

    def make(self) -> MovingObjectIndex2D:
        return MovingObjectIndex2D(epoch=0, horizon=50, bounds=self.AREA)

    def test_validation(self):
        with pytest.raises(IndexError_):
            MovingObjectIndex2D(5, 5, self.AREA)
        with pytest.raises(IndexError_):
            MovingObjectIndex2D(0, 1, Box.from_bounds((0, 1), (0, 1), (0, 1)))

    def test_insert_and_instantaneous(self):
        idx = self.make()
        idx.insert("east", linear_moving_point(Point(0, 50), Point(2, 0)))
        idx.insert("still", linear_moving_point(Point(90, 90), Point(0, 0)))
        probe = Box.from_bounds((18, 22), (45, 55))
        assert idx.objects_in_rectangle(probe, at_time=10) == {"east"}
        assert idx.objects_in_rectangle(probe, at_time=0) == set()

    def test_continuous_rectangle(self):
        idx = self.make()
        idx.insert("east", linear_moving_point(Point(0, 50), Point(2, 0)))
        probe = Box.from_bounds((20, 30), (40, 60))
        [hit] = idx.continuous_rectangle(probe, from_time=0)
        assert hit.object_id == "east"
        assert hit.begin == pytest.approx(10)
        assert hit.end == pytest.approx(15)

    def test_update_and_remove(self):
        idx = self.make()
        idx.insert("o", linear_moving_point(Point(0, 0), Point(1, 1)))
        idx.update("o", linear_moving_point(Point(99, 99), Point(0, 0)))
        probe = Box.from_bounds((0, 10), (0, 10))
        assert idx.objects_in_rectangle(probe, at_time=5) == set()
        idx.remove("o")
        assert len(idx) == 0
        with pytest.raises(IndexError_):
            idx.remove("o")

    def test_matches_scan(self):
        idx = self.make()
        for i in range(30):
            idx.insert(
                f"o{i}",
                linear_moving_point(
                    Point(float(i * 3 % 100), float(i * 7 % 100)),
                    Point(float(i % 3 - 1), float(i % 5 - 2)),
                ),
            )
        for t in (0, 10, 25, 50):
            for probe in (
                Box.from_bounds((0, 30), (0, 30)),
                Box.from_bounds((40, 70), (20, 90)),
            ):
                assert idx.objects_in_rectangle(probe, t) == idx.scan_in_rectangle(probe, t)

    def test_rejects_nonlinear(self):
        from repro.motion import MovingPoint, SinusoidFunction, LinearFunction

        idx = self.make()
        mover = MovingPoint(
            Point(5.0, 5.0), [SinusoidFunction(1, 1), LinearFunction(0)]
        )
        with pytest.raises(IndexError_):
            idx.insert("osc", mover)

    def test_rejects_3d_motion(self):
        idx = self.make()
        with pytest.raises(IndexError_):
            idx.insert(
                "o", linear_moving_point(Point(0, 0, 0), Point(1, 1, 1))
            )

    def test_query_outside_window(self):
        idx = self.make()
        with pytest.raises(IndexError_):
            idx.objects_in_rectangle(self.AREA, at_time=999)
        with pytest.raises(IndexError_):
            idx.continuous_rectangle(self.AREA, from_time=-1)
