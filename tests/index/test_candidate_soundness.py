"""Property tests: index candidate sets are conservative supersets.

Two structures feed index-pruned atom evaluation (DESIGN.md §7) and both
must satisfy the same contract — every object the exact predicate can
ever match appears in the candidate set.  False positives are fine (the
solve path verifies them); a single false negative would silently drop
answer tuples.

* :meth:`~repro.index.dynamicindex.DynamicAttributeIndex.
  candidates_in_band` must contain every object whose attribute value
  enters the band during the probed span.
* :class:`~repro.ftl.atoms.AtomIndexPruner` region/pair candidate sets
  must contain every object that is ever inside the region / within the
  radius of the probe object during the window.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MostDatabase, ObjectClass
from repro.core.dynamic import DynamicAttribute
from repro.core.history import FutureHistory
from repro.ftl.context import EvalContext
from repro.geometry import Point
from repro.index.dynamicindex import DynamicAttributeIndex
from repro.spatial import Polygon

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

coord = st.integers(min_value=-50, max_value=50)
speed = st.integers(min_value=-4, max_value=4)


# ---------------------------------------------------------------------------
# DynamicAttributeIndex.candidates_in_band
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    lines=st.lists(
        st.tuples(coord, speed), min_size=1, max_size=12, unique=True
    ),
    band=st.tuples(coord, coord),
    span=st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    ),
    structure=st.sampled_from(["regiontree", "rtree"]),
)
def test_candidates_in_band_is_sound(lines, band, span, structure):
    lo, hi = min(band), max(band)
    t0, t1 = min(span), max(span)
    index = DynamicAttributeIndex(
        0.0, 20.0, -300.0, 300.0, structure=structure
    )
    for i, (value, slope) in enumerate(lines):
        index.insert(f"o{i}", DynamicAttribute.linear(value, slope))
    cands = index.candidates_in_band(lo, hi, from_time=t0, until=t1)
    # Exact check by dense sampling: a linear function enters [lo, hi]
    # within [t0, t1] iff it is in band at t0, at t1, or crosses a
    # boundary in between — integer grids catch all of these.
    for i, (value, slope) in enumerate(lines):
        enters = any(
            lo <= value + slope * t <= hi
            for t in [t0, t1]
            + [t / 4 for t in range(t0 * 4, t1 * 4 + 1)]
        )
        if enters:
            assert f"o{i}" in cands, (
                f"o{i} (v={value}, s={slope}) enters [{lo}, {hi}] during "
                f"[{t0}, {t1}] but was not a candidate"
            )


# ---------------------------------------------------------------------------
# AtomIndexPruner region / pair candidates
# ---------------------------------------------------------------------------

fleet = st.lists(
    st.tuples(coord, coord, speed, speed), min_size=1, max_size=10
)


def _build_ctx(objects, horizon=12):
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    for i, (x, y, vx, vy) in enumerate(objects):
        db.add_moving_object("cars", f"c{i}", Point(x, y), Point(vx, vy))
    return db, EvalContext(FutureHistory(db), horizon, {"c": "cars"})


@SETTINGS
@given(
    objects=fleet,
    rect=st.tuples(coord, coord, coord, coord),
)
def test_region_candidates_are_sound(objects, rect):
    x0, y0, x1, y1 = rect
    region = Polygon.rectangle(
        min(x0, x1), min(y0, y1), max(x0, x1) + 1, max(y0, y1) + 1
    )
    db, ctx = _build_ctx(objects)
    pruner = ctx.atom_pruner()
    cands = pruner.region_candidates(region)
    assert cands is not None
    for i in range(len(objects)):
        oid = f"c{i}"
        ever_inside = any(
            region.contains(ctx.history.position(oid, t))
            for t in ctx.ticks()
        )
        if ever_inside:
            assert oid in cands, (
                f"{oid} enters the region but was not a candidate"
            )


@SETTINGS
@given(
    objects=fleet,
    probe=st.integers(min_value=0, max_value=9),
    radius=st.integers(min_value=0, max_value=15),
)
def test_pair_candidates_are_sound(objects, probe, radius):
    probe = probe % len(objects)
    db, ctx = _build_ctx(objects)
    pruner = ctx.atom_pruner()
    oid = f"c{probe}"
    cands = pruner.pair_candidates(oid, float(radius))
    assert cands is not None and oid in cands
    for i in range(len(objects)):
        other = f"c{i}"
        ever_near = any(
            math.dist(
                tuple(ctx.history.position(oid, t)),
                tuple(ctx.history.position(other, t)),
            )
            <= radius
            for t in ctx.ticks()
        )
        if ever_near:
            assert other in cands, (
                f"{other} comes within {radius} of {oid} but was not a "
                "candidate"
            )
