"""Unit + property tests for the region tree and the R-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.geometry import Point
from repro.index import RegionTree, RTree, TrajectorySegment
from repro.spatial import Box

BOUNDS = Box.from_bounds((0, 100), (0, 100))

coords = st.integers(min_value=0, max_value=100)

segment_specs = st.lists(
    st.tuples(coords, coords, coords, coords), min_size=0, max_size=40
)
probe_specs = st.tuples(coords, coords, coords, coords)


def make_segments(specs):
    return [
        TrajectorySegment(f"o{i}", Point(x0, y0), Point(x1, y1))
        for i, (x0, y0, x1, y1) in enumerate(specs)
    ]


def make_box(spec):
    x0, y0, x1, y1 = spec
    return Box.from_bounds(
        (min(x0, x1), max(x0, x1)), (min(y0, y1), max(y0, y1))
    )


class TestRegionTree:
    def test_validation(self):
        with pytest.raises(IndexError_):
            RegionTree(BOUNDS, capacity=0)
        with pytest.raises(IndexError_):
            RegionTree(BOUNDS, max_depth=0)

    def test_out_of_bounds_insert_rejected(self):
        tree = RegionTree(BOUNDS)
        with pytest.raises(IndexError_):
            tree.insert(
                TrajectorySegment("o", Point(200, 200), Point(300, 300))
            )

    def test_dim_mismatch(self):
        tree = RegionTree(BOUNDS)
        with pytest.raises(IndexError_):
            tree.insert(
                TrajectorySegment("o", Point(0, 0, 0), Point(1, 1, 1))
            )

    def test_insert_query(self):
        tree = RegionTree(BOUNDS, capacity=2)
        segs = make_segments([(0, 0, 10, 10), (50, 50, 60, 60), (0, 90, 90, 0)])
        for s in segs:
            tree.insert(s)
        assert tree.query(Box.from_bounds((5, 6), (5, 6))) == {"o0"}
        # The anti-diagonal y = 90 - x passes through (85, 5).
        assert tree.query(Box.from_bounds((84, 86), (4, 6))) == {"o2"}
        assert tree.query(Box.from_bounds((55, 56), (55, 56))) == {"o1"}
        assert len(tree) == 3

    def test_split_happens(self):
        tree = RegionTree(BOUNDS, capacity=2)
        for s in make_segments([(i, 0, i, 99) for i in range(12)]):
            tree.insert(s)
        assert tree.depth() > 1
        assert tree.node_count() > 1

    def test_delete(self):
        tree = RegionTree(BOUNDS, capacity=2)
        segs = make_segments([(0, 0, 99, 99), (0, 99, 99, 0)])
        for s in segs:
            tree.insert(s)
        assert tree.delete(segs[0])
        assert not tree.delete(segs[0])
        assert tree.query(Box.from_bounds((0, 99), (0, 99))) == {"o1"}
        assert len(tree) == 1

    def test_delete_object(self):
        tree = RegionTree(BOUNDS, capacity=2)
        tree.insert(TrajectorySegment("a", Point(0, 0), Point(10, 10)))
        tree.insert(TrajectorySegment("a", Point(10, 10), Point(20, 5)))
        tree.insert(TrajectorySegment("b", Point(0, 50), Point(99, 50)))
        assert tree.delete_object("a") == 2
        assert tree.query(BOUNDS) == {"b"}

    def test_nodes_visited_counter(self):
        tree = RegionTree(BOUNDS, capacity=1)
        for s in make_segments([(i * 8, 0, i * 8, 99) for i in range(12)]):
            tree.insert(s)
        tree.query(Box.from_bounds((0, 1), (0, 1)))
        narrow = tree.last_nodes_visited
        tree.query(BOUNDS)
        wide = tree.last_nodes_visited
        assert narrow < wide

    @settings(max_examples=80, deadline=None)
    @given(segment_specs, probe_specs)
    def test_query_matches_linear_scan(self, specs, probe):
        tree = RegionTree(BOUNDS, capacity=3)
        segments = make_segments(specs)
        for s in segments:
            tree.insert(s)
        box = make_box(probe)
        want = {s.object_id for s in segments if s.intersects(box)}
        assert tree.query(box) == want


class TestRTree:
    def test_validation(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=2)

    def test_insert_search(self):
        tree = RTree(max_entries=4)
        for i in range(30):
            tree.insert(Box.from_bounds((i, i + 1), (0, 1)), i)
        got = tree.search(Box.from_bounds((10, 12), (0, 1)))
        assert set(got) == {9, 10, 11, 12}
        assert len(tree) == 30
        assert tree.height() >= 2

    def test_delete(self):
        tree = RTree(max_entries=4)
        boxes = [Box.from_bounds((i, i + 1), (0, 1)) for i in range(10)]
        for i, b in enumerate(boxes):
            tree.insert(b, i)
        assert tree.delete(boxes[5], 5)
        assert not tree.delete(boxes[5], 5)
        assert 5 not in set(tree.search(BOUNDS))
        assert len(tree) == 9

    def test_drain(self):
        tree = RTree(max_entries=4)
        boxes = [Box.from_bounds((i, i + 1), (i, i + 2)) for i in range(25)]
        for i, b in enumerate(boxes):
            tree.insert(b, i)
        for i, b in enumerate(boxes):
            assert tree.delete(b, i)
        assert len(tree) == 0
        assert tree.search(BOUNDS) == []

    def test_nodes_visited_counter(self):
        tree = RTree(max_entries=4)
        for i in range(100):
            tree.insert(Box.from_bounds((i, i + 1), (0, 1)), i)
        tree.search(Box.from_bounds((3, 4), (0, 1)))
        assert tree.last_nodes_visited < 100

    @settings(max_examples=80, deadline=None)
    @given(segment_specs, probe_specs)
    def test_search_superset_of_exact(self, specs, probe):
        # The R-tree returns bbox hits: a superset of exact segment hits.
        tree = RTree(max_entries=4)
        segments = make_segments(specs)
        for s in segments:
            tree.insert(s.bbox(), s)
        box = make_box(probe)
        got = {s.object_id for s in tree.search(box)}
        exact = {s.object_id for s in segments if s.intersects(box)}
        bbox_hits = {
            s.object_id for s in segments if s.bbox().intersects(box)
        }
        assert got == bbox_hits
        assert exact <= got

    @settings(max_examples=50, deadline=None)
    @given(segment_specs)
    def test_insert_delete_roundtrip(self, specs):
        tree = RTree(max_entries=4)
        segments = make_segments(specs)
        for s in segments:
            tree.insert(s.bbox(), s)
        for s in segments:
            assert tree.delete(s.bbox(), s)
        assert len(tree) == 0
