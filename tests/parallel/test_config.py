"""Environment configuration knobs (``REPRO_*``) and their validation.

The contract: unset/empty means "library default", a valid value is
honoured everywhere the knob feeds, and a nonsense value raises
:class:`ConfigError` naming the variable — never a silent fallback.
"""

import pytest

from repro.config import (
    KINETIC_CACHE_SIZE_VAR,
    PARALLEL_START_METHOD_VAR,
    PARALLEL_WORKERS_VAR,
    env_int,
    kinetic_cache_entries,
    parallel_start_method,
    parallel_workers,
)
from repro.core import MostDatabase
from repro.errors import ConfigError
from repro.parallel import resolve_workers


def test_unset_and_empty_mean_default(monkeypatch):
    for var in (
        KINETIC_CACHE_SIZE_VAR,
        PARALLEL_WORKERS_VAR,
        PARALLEL_START_METHOD_VAR,
    ):
        monkeypatch.delenv(var, raising=False)
    assert kinetic_cache_entries() is None
    assert parallel_workers() is None
    assert parallel_start_method() is None
    monkeypatch.setenv(KINETIC_CACHE_SIZE_VAR, "  ")
    assert kinetic_cache_entries() is None


@pytest.mark.parametrize("raw", ["zero", "1.5", "0x10", ""])
def test_env_int_rejects_non_integers(monkeypatch, raw):
    monkeypatch.setenv(KINETIC_CACHE_SIZE_VAR, raw)
    if raw.strip() == "":
        assert kinetic_cache_entries() is None
    else:
        with pytest.raises(ConfigError, match=KINETIC_CACHE_SIZE_VAR):
            kinetic_cache_entries()


@pytest.mark.parametrize("raw", ["0", "-3"])
def test_positive_knobs_reject_non_positive(monkeypatch, raw):
    monkeypatch.setenv(KINETIC_CACHE_SIZE_VAR, raw)
    with pytest.raises(ConfigError, match=">= 1"):
        kinetic_cache_entries()
    monkeypatch.setenv(PARALLEL_WORKERS_VAR, raw)
    with pytest.raises(ConfigError, match=">= 1"):
        parallel_workers()


def test_env_int_bounds(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_KNOB", "7")
    assert env_int("REPRO_TEST_KNOB", minimum=1) == 7
    with pytest.raises(ConfigError, match="<= 4"):
        env_int("REPRO_TEST_KNOB", minimum=1, maximum=4)


def test_kinetic_cache_size_env_feeds_database(monkeypatch):
    monkeypatch.setenv(KINETIC_CACHE_SIZE_VAR, "17")
    db = MostDatabase()
    assert db.kinetic_cache.max_entries == 17


def test_constructor_overrides_env(monkeypatch):
    monkeypatch.setenv(KINETIC_CACHE_SIZE_VAR, "17")
    db = MostDatabase(kinetic_cache_size=5)
    assert db.kinetic_cache.max_entries == 5


def test_parallel_workers_env_feeds_auto(monkeypatch):
    monkeypatch.setenv(PARALLEL_WORKERS_VAR, "3")
    assert resolve_workers("auto") == 3
    monkeypatch.delenv(PARALLEL_WORKERS_VAR)
    assert resolve_workers("auto") >= 1  # cpu-count fallback


def test_start_method_validation(monkeypatch):
    monkeypatch.setenv(PARALLEL_START_METHOD_VAR, "fork")
    assert parallel_start_method() == "fork"
    monkeypatch.setenv(PARALLEL_START_METHOD_VAR, "spawn")
    assert parallel_start_method() == "spawn"
    monkeypatch.setenv(PARALLEL_START_METHOD_VAR, "threads")
    with pytest.raises(ConfigError, match=PARALLEL_START_METHOD_VAR):
        parallel_start_method()
