"""Snapshot fidelity: the worker's replica answers exactly like the parent.

The shared-memory wire form flattens every dynamic attribute to float64
arrays plus int-flag bits (DESIGN.md §12).  Because answer ordering
sorts instantiation *strings*, an ``int`` position that came back as
``2.0`` would silently reorder answers — so type restoration is tested
value by value, and anything the arrays cannot carry exactly must round
trip through the per-row pickle fallback.
"""

from repro.core import MostDatabase, ObjectClass
from repro.core.history import FutureHistory
from repro.geometry import Point
from repro.motion.functions import (
    LinearFunction,
    PiecewiseLinearFunction,
    PolynomialFunction,
)
from repro.parallel import MotionSnapshot
from repro.parallel.pool import epoch_token
from repro.spatial import Polygon

HORIZON = 10


def build_db():
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "cars", static_attributes=("price",), spatial_dimensions=2
        )
    )
    db.create_class(ObjectClass("vans", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    db.add_moving_object(
        "cars", "c0", Point(1, 2), Point(1, -1), static={"price": 42}
    )
    db.add_moving_object(
        "cars", "c1", Point(0.5, -3.25), Point(0.25, 2), static={"price": 7}
    )
    db.add_moving_object("vans", "v0", Point(-4, 4), Point(2, 0))
    return db


def replica_of(db):
    snap = MotionSnapshot.build(FutureHistory(db))
    payload = snap.to_payload()
    try:
        remote = MotionSnapshot.from_payload(payload)
    finally:
        snap.release()
    return remote.build_database()


def all_attrs(db, oid):
    obj = db.get(oid)
    return tuple(obj.object_class.all_dynamic)


def test_replica_values_and_types_match():
    db = build_db()
    rdb, rhist = replica_of(db)
    hist = FutureHistory(db)
    for cls in ("cars", "vans"):
        assert rhist.object_ids(cls) == hist.object_ids(cls)
        for oid in hist.object_ids(cls):
            for attr in all_attrs(db, oid):
                for t4 in range(0, HORIZON * 4 + 1):
                    t = t4 / 4
                    a, b = hist.value(oid, attr, t), rhist.value(oid, attr, t)
                    assert a == b, (oid, attr, t)
                    assert type(a) is type(b), (oid, attr, t, a, b)


def test_replica_restores_int_typed_triples():
    db = build_db()
    rdb, rhist = replica_of(db)
    triple = rhist.dynamic_triple("c0", "x_position")
    original = FutureHistory(db).dynamic_triple("c0", "x_position")
    assert triple.value == original.value
    assert type(triple.value) is type(original.value)
    assert type(triple.updatetime) is type(original.updatetime)
    fn, rfn = original.function, triple.function
    assert isinstance(rfn, LinearFunction)
    assert rfn.slope == fn.slope
    assert type(rfn.slope) is type(fn.slope)


def test_replica_restores_statics_and_regions():
    db = build_db()
    rdb, rhist = replica_of(db)
    assert rhist.value("c0", "price", 0.0) == 42
    assert rhist.value("c1", "price", 0.0) == 7
    assert set(rdb.region_names()) == set(db.region_names())


def test_replica_restores_piecewise_functions():
    db = build_db()
    db.update_dynamic(
        "c0",
        "x_position",
        function=PiecewiseLinearFunction([(0, 1), (3, -2), (6, 0.5)]),
    )
    hist = FutureHistory(db)
    rdb, rhist = replica_of(db)
    rfn = rhist.dynamic_triple("c0", "x_position").function
    assert isinstance(rfn, PiecewiseLinearFunction)
    for t4 in range(0, HORIZON * 4 + 1):
        t = t4 / 4
        assert rhist.value("c0", "x_position", t) == hist.value(
            "c0", "x_position", t
        )


def test_replica_falls_back_to_pickle_for_nonlinear():
    db = build_db()
    db.update_dynamic(
        "c0", "x_position", function=PolynomialFunction([1.0, 0.5])
    )
    hist = FutureHistory(db)
    rdb, rhist = replica_of(db)
    rfn = rhist.dynamic_triple("c0", "x_position").function
    assert isinstance(rfn, PolynomialFunction)
    for t4 in range(0, HORIZON * 4 + 1):
        t = t4 / 4
        assert rhist.value("c0", "x_position", t) == hist.value(
            "c0", "x_position", t
        )


def test_payload_round_trip_preserves_meta():
    db = build_db()
    snap = MotionSnapshot.build(FutureHistory(db))
    payload = snap.to_payload()
    try:
        remote = MotionSnapshot.from_payload(payload)
    finally:
        snap.release()
    assert remote.meta == snap.meta
    for name, arr in snap.arrays.items():
        assert (remote.arrays[name] == arr).all()


def test_release_is_idempotent():
    db = build_db()
    snap = MotionSnapshot.build(FutureHistory(db))
    snap.to_payload()
    snap.release()
    snap.release()


# ---------------------------------------------------------------------------
# Epoch tokens: a stale snapshot history must never share a token with a
# fresh one
# ---------------------------------------------------------------------------


def test_epoch_token_distinguishes_stale_snapshot():
    db = build_db()
    frozen = FutureHistory(db, snapshot=True)
    before = epoch_token(frozen)
    db.update_motion("c0", Point(2, 2))
    fresh = FutureHistory(db, snapshot=True)
    assert epoch_token(frozen) == before, "frozen history must keep its token"
    assert epoch_token(fresh) != before
    assert epoch_token(FutureHistory(db)) != before


def test_epoch_token_tracks_population_changes():
    db = build_db()
    before = epoch_token(FutureHistory(db))
    db.add_moving_object("vans", "v9", Point(0, 0), Point(1, 1))
    assert epoch_token(FutureHistory(db)) != before


def test_epoch_token_differs_across_databases():
    assert epoch_token(FutureHistory(build_db())) != epoch_token(
        FutureHistory(build_db())
    )
