"""Process isolation: workers never trust the parent's memoized state.

Under the ``fork`` start method a worker inherits the parent's module
globals — including the region solve-token memo in ``repro.ftl.atoms``
— and any :class:`EvalContext` it is handed carries mover/pruner memos
built against the parent's object graph.  Serving either from a worker
would mean answering queries about one database from another's cached
motion state.  ``reset_worker_caches`` and ``EvalContext.reset_memos``
exist to sever both links; these tests pin their behaviour down and
prove the end-to-end property on a real forked pool.
"""

import multiprocessing

import pytest

from repro.core import MostDatabase, ObjectClass
from repro.core.history import FutureHistory
from repro.ftl import FtlQuery, Inside, Var
from repro.ftl import atoms as atoms_module
from repro.ftl.atoms import clear_region_tokens
from repro.ftl.context import EvalContext
from repro.geometry import Point
from repro.parallel.worker import reset_worker_caches
from repro.spatial import Polygon

HORIZON = 10


def build_db(vx=1):
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    db.add_moving_object("cars", "c0", Point(1, 1), Point(vx, 0))
    db.add_moving_object("cars", "c1", Point(20, 20), Point(0, 0))
    return db


def query():
    return FtlQuery(
        targets=("c",), bindings={"c": "cars"}, where=Inside(Var("c"), "P")
    )


def test_clear_region_tokens_empties_the_memo():
    db = build_db()
    query().evaluate(FutureHistory(db), HORIZON)
    assert atoms_module._REGION_TOKENS, "evaluation should prime the memo"
    clear_region_tokens()
    assert not atoms_module._REGION_TOKENS


def test_reset_worker_caches_clears_region_tokens():
    db = build_db()
    query().evaluate(FutureHistory(db), HORIZON)
    assert atoms_module._REGION_TOKENS
    reset_worker_caches()
    assert not atoms_module._REGION_TOKENS


def test_reset_memos_clears_context_state():
    db = build_db()
    ctx = EvalContext(FutureHistory(db), HORIZON, {"c": "cars"})
    ctx.moving_point("c0")
    ctx.atom_pruner()
    assert ctx._movers and ctx._pruner is not None
    ctx.reset_memos()
    assert not ctx._movers
    assert not ctx._motion_tokens
    assert ctx._pruner is None


def _forked_probe(result_queue):
    """Runs in the forked child: after the worker-style cache reset, the
    inherited parent memo must be empty."""
    inherited = len(atoms_module._REGION_TOKENS)
    reset_worker_caches()
    result_queue.put((inherited, len(atoms_module._REGION_TOKENS)))


def test_forked_worker_starts_with_empty_memo():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    db = build_db()
    query().evaluate(FutureHistory(db), HORIZON)
    assert atoms_module._REGION_TOKENS, "parent memo must be primed"
    ctx = multiprocessing.get_context("fork")
    result_queue = ctx.Queue()
    proc = ctx.Process(target=_forked_probe, args=(result_queue,))
    proc.start()
    inherited, after_reset = result_queue.get(timeout=30)
    proc.join(timeout=30)
    assert inherited > 0, "fork must actually inherit the parent memo"
    assert after_reset == 0, "reset_worker_caches must clear it"
    # The parent's own memo is untouched by the child's reset.
    assert atoms_module._REGION_TOKENS


def test_sharded_answers_survive_parent_memo_poisoning():
    """End to end: evaluate serially (priming parent memos), mutate the
    world, then evaluate sharded — the workers must answer from the
    *current* database state, not any forked-over memo."""
    db = build_db(vx=1)
    q = query()
    before = q.evaluate(FutureHistory(db), HORIZON).answer_tuples()
    assert before, "c0 starts inside P"
    # Reverse c0 away from the region: the correct answer changes.
    db.clock.tick()
    db.update_motion("c0", Point(-5, -5), position=Point(-20, -20))
    serial = q.evaluate(FutureHistory(db), HORIZON).answer_tuples()
    parallel = q.evaluate(FutureHistory(db), HORIZON, parallel=2).answer_tuples()
    assert parallel == serial
    assert parallel != before
