"""Property tests: shard-merge is a lawful union (DESIGN.md §12).

Sharded evaluation is only sound if combining per-shard relations is
order- and grouping-insensitive: the pool returns shard results in
arbitrary arrival order, and a rebalanced shard plan regroups rows.  So
the merge operation — keyed union of ``IntervalSet`` rows — must be
associative, commutative and idempotent, and incremental ``patch``
application must commute with union on disjoint keys (the property that
lets a merged trace seed the incremental cache).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ftl.relations import FtlRelation
from repro.parallel import merge_relations
from repro.temporal import DISCRETE, IntervalSet

SETTINGS = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

tick = st.integers(min_value=0, max_value=30)
interval = st.tuples(tick, tick).map(lambda p: (min(p), max(p)))
iset = st.lists(interval, max_size=4).map(
    lambda pairs: IntervalSet.from_pairs(pairs, DISCRETE)
)
key = st.sampled_from([("a",), ("b",), ("c",), ("d",), ("e",)])
relation = st.dictionaries(key, iset, max_size=5).map(
    lambda rows: FtlRelation(("x",), rows)
)


def as_dict(rel):
    return {inst: iset.intervals for inst, iset in rel.rows()}


# ---------------------------------------------------------------------------
# IntervalSet union laws
# ---------------------------------------------------------------------------


@SETTINGS
@given(a=iset, b=iset, c=iset)
def test_interval_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@SETTINGS
@given(a=iset, b=iset)
def test_interval_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@SETTINGS
@given(a=iset)
def test_interval_union_idempotent(a):
    assert a.union(a) == a


# ---------------------------------------------------------------------------
# merge_relations laws
# ---------------------------------------------------------------------------


@SETTINGS
@given(a=relation, b=relation, c=relation)
def test_merge_associative(a, b, c):
    left = merge_relations([merge_relations([a, b]), c])
    right = merge_relations([a, merge_relations([b, c])])
    assert as_dict(left) == as_dict(right)


@SETTINGS
@given(a=relation, b=relation)
def test_merge_commutative(a, b):
    assert as_dict(merge_relations([a, b])) == as_dict(
        merge_relations([b, a])
    )


@SETTINGS
@given(a=relation)
def test_merge_idempotent(a):
    assert as_dict(merge_relations([a, a])) == as_dict(a)


@SETTINGS
@given(a=relation, b=relation, c=relation)
def test_merge_flat_equals_nested(a, b, c):
    """One three-way merge equals any nesting — shard arrival order and
    pool topology cannot change the result."""
    flat = merge_relations([a, b, c])
    nested = merge_relations([c, merge_relations([b, a])])
    assert as_dict(flat) == as_dict(nested)


# ---------------------------------------------------------------------------
# patch ∘ union commutation on disjoint keys
# ---------------------------------------------------------------------------


@SETTINGS
@given(a=relation, b=relation, patch_rows=st.dictionaries(key, iset, max_size=3))
def test_patch_commutes_with_union_on_disjoint_keys(a, b, patch_rows):
    """Patching rows of one shard then merging equals merging then
    patching, provided the patched keys belong to that shard alone —
    exactly the split-variable partition guarantee."""
    b_keys = {inst for inst, _ in b.rows()}
    stale = [inst for inst in patch_rows if inst not in b_keys]
    fresh = {inst: patch_rows[inst] for inst in stale}

    def rebuild(rel, rows):
        out = FtlRelation(rel.variables)
        for inst, iv in rel.rows():
            out.add(inst, iv)
        for inst, iv in rows.items():
            out.set(inst, iv)
        return out

    patched_then_merged = merge_relations([rebuild(a, fresh), b])
    merged_then_patched = rebuild(merge_relations([a, b]), fresh)
    assert as_dict(patched_then_merged) == as_dict(merged_then_patched)
