"""Partitioner contract: exact cover, ±1 balance, determinism.

Correctness never depends on *which* shard an object lands in
(DESIGN.md §12) — but the evaluator does rely on the partition being a
partition, and reproducible runs rely on it being deterministic.
"""

import random

import pytest

from repro.core import MostDatabase, ObjectClass
from repro.core.history import FutureHistory
from repro.errors import QueryError
from repro.geometry import Point
from repro.parallel import ShardPlan, partition_ids

HORIZON = 12


def build_db(n, seed=0):
    rng = random.Random(seed)
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    for i in range(n):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(rng.randint(-30, 30), rng.randint(-30, 30)),
            Point(rng.randint(-3, 3), rng.randint(-3, 3)),
        )
    return db


@pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 25])
@pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 8])
def test_partition_is_exact_and_balanced(n, shard_count):
    db = build_db(n)
    history = FutureHistory(db)
    ids = history.object_ids("cars")
    shards = partition_ids(history, ids, shard_count, 0.0, HORIZON)
    flat = [oid for shard in shards for oid in shard]
    assert sorted(flat, key=str) == sorted(ids, key=str)
    assert len(flat) == len(set(flat)) == n
    assert all(shard for shard in shards), "no empty shards"
    if shards:
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
        assert len(shards) == min(shard_count, n)


def test_partition_is_deterministic():
    db = build_db(25, seed=3)
    history = FutureHistory(db)
    ids = history.object_ids("cars")
    first = partition_ids(history, ids, 4, 0.0, HORIZON)
    for _ in range(5):
        assert partition_ids(history, ids, 4, 0.0, HORIZON) == first
    # And across a rebuilt but identical world.
    other = FutureHistory(build_db(25, seed=3))
    assert partition_ids(other, other.object_ids("cars"), 4, 0.0, HORIZON) == first


def test_partition_rejects_bad_shard_count():
    history = FutureHistory(build_db(4))
    with pytest.raises(QueryError):
        partition_ids(history, history.object_ids("cars"), 0, 0.0, HORIZON)


def test_shard_plan_lookup():
    db = build_db(9, seed=1)
    history = FutureHistory(db)
    plan = ShardPlan.build(history, "c", "cars", 3, 0.0, HORIZON)
    assert plan.shard_count == 3
    for oid in history.object_ids("cars"):
        idx = plan.shard_of(oid)
        assert idx is not None
        assert oid in plan.shards[idx]
    assert plan.shard_of("ghost") is None


def test_spatial_locality_for_two_clusters():
    """Two far-apart clusters of equal size should land in different
    shards — the grid heuristic, not a correctness requirement, but the
    whole point of spatial partitioning for the halo."""
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    for i in range(4):
        db.add_moving_object(
            "cars", f"w{i}", Point(-100 + i, 0), Point(0, 0)
        )
    for i in range(4):
        db.add_moving_object(
            "cars", f"e{i}", Point(100 + i, 0), Point(0, 0)
        )
    history = FutureHistory(db)
    shards = partition_ids(
        history, history.object_ids("cars"), 2, 0.0, HORIZON
    )
    assert len(shards) == 2
    sides = [{str(oid)[0] for oid in shard} for shard in shards]
    assert sides in ([{"w"}, {"e"}], [{"e"}, {"w"}])
