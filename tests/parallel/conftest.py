"""Shared fixtures: one worker-pool lifetime per test session.

Pools are process-global (``repro.parallel.get_pool``) so every test in
the session reuses the same workers — spawning processes per test would
dominate the suite's runtime.  The session teardown closes them so the
test process exits promptly even when atexit ordering is unlucky.
"""

import pytest

from repro.parallel import shutdown_pools


@pytest.fixture(scope="session", autouse=True)
def _shutdown_pools_at_exit():
    yield
    shutdown_pools()
