"""Differential harness: sharded evaluation ≡ serial evaluation.

The merge-soundness argument (DESIGN.md §12) says restricting the split
variable's domain per shard and taking the keyed union of the shard
relations reproduces the serial ``R_f`` bit for bit.  These tests check
that claim on the same randomized worlds, formulas and update sequences
the method-differential suite uses — including the halo fast path, the
incremental continuous-query seeding, and the error paths.
"""

import random

import pytest

from repro.core.history import FutureHistory
from repro.core.queries import ContinuousQuery
from repro.errors import QueryError
from repro.ftl import Compare, Const, Dist, FtlQuery, Inside, Var
from repro.parallel import resolve_workers
from repro.parallel.evaluator import ShardedIntervalEvaluator

from tests.ftl.test_differential import (
    HORIZON,
    STEPS,
    apply_random_updates,
    build_world,
    random_query,
)


def rows_of(relation):
    """Canonical, comparison-stable view of an FtlRelation."""
    return sorted(
        (inst, iset.intervals) for inst, iset in relation.rows()
    )


# ---------------------------------------------------------------------------
# One-shot evaluation: parallel ≡ serial, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_matches_serial(seed, workers):
    rng = random.Random(seed)
    db = build_world(rng)
    query = random_query(rng)
    serial = query.evaluate_full(FutureHistory(db), HORIZON)
    parallel = query.evaluate_full(
        FutureHistory(db), HORIZON, parallel=workers
    )
    assert parallel.variables == serial.variables
    assert rows_of(parallel) == rows_of(serial)


@pytest.mark.parametrize("seed", range(8))
def test_sharded_matches_serial_after_updates(seed):
    rng = random.Random(10_000 + seed)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(2):
        rng.setstate(world_bits)
        dbs.append(build_world(rng))
    query = random_query(rng)
    for _ in range(STEPS):
        for db in dbs:
            db.clock.tick()
        apply_random_updates(rng, dbs)
        serial = query.evaluate_full(FutureHistory(dbs[0]), HORIZON)
        parallel = query.evaluate_full(
            FutureHistory(dbs[1]), HORIZON, parallel=2
        )
        assert rows_of(parallel) == rows_of(serial)


def test_halo_off_matches_halo_on():
    # Twin worlds: each evaluation ships its own snapshot, so the
    # workers' per-replica solve caches start cold both times and the
    # counters are comparable.
    rng = random.Random(7)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(2):
        rng.setstate(world_bits)
        dbs.append(build_world(rng))
    query = FtlQuery(
        targets=("c",),
        bindings={"c": "cars", "v": "vans"},
        where=Compare("<=", Dist(Var("c"), Var("v")), Const(6)),
    )
    on = ShardedIntervalEvaluator(
        query, FutureHistory(dbs[0]), HORIZON, 2, halo=True
    )
    off = ShardedIntervalEvaluator(
        query, FutureHistory(dbs[1]), HORIZON, 2, halo=False
    )
    r_on, r_off = on.evaluate(), off.evaluate()
    assert rows_of(r_on) == rows_of(r_off)
    # Gate answers are part of the pruner contract, so the halo fast
    # path must leave every counter — not just the answers — untouched.
    assert on.counters == off.counters


# ---------------------------------------------------------------------------
# Counter semantics under sharding
# ---------------------------------------------------------------------------


def test_counters_coherent_and_exact_for_single_atom():
    """A single region atom gives per-object solve keys that never
    collide across shards, so the summed counters equal serial exactly."""
    rng = random.Random(11)
    db = build_world(rng)
    query = FtlQuery(
        targets=("c",),
        bindings={"c": "cars"},
        where=Inside(Var("c"), "P"),
    )
    history = FutureHistory(db)
    sharded = ShardedIntervalEvaluator(query, history, HORIZON, 2)
    merged = sharded.evaluate()
    assert sharded.sharded, "2 cars minimum: sharding must engage"
    serial = ShardedIntervalEvaluator(query, history, HORIZON, 1)
    assert rows_of(merged) == rows_of(serial.evaluate())
    assert not serial.sharded
    assert sharded.counters == serial.counters


@pytest.mark.parametrize("seed", range(6))
def test_counter_coherence_random(seed):
    """Solve caches are per-worker, so sharded solves can only exceed
    the serial count; pruning and sampling totals stay non-negative."""
    rng = random.Random(20_000 + seed)
    db = build_world(rng)
    query = random_query(rng)
    history = FutureHistory(db)
    serial = ShardedIntervalEvaluator(query, history, HORIZON, 1)
    sharded = ShardedIntervalEvaluator(query, history, HORIZON, 2)
    assert rows_of(sharded.evaluate()) == rows_of(serial.evaluate())
    if not sharded.sharded:
        return
    assert sharded.counters["kinetic_solves"] >= serial.counters[
        "kinetic_solves"
    ]
    assert all(v >= 0 for v in sharded.counters.values())


# ---------------------------------------------------------------------------
# Continuous queries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize(
    "method,workers", [("interval", 2), ("incremental", 2), ("incremental", 4)]
)
def test_continuous_query_parallel_differential(seed, method, workers):
    rng = random.Random(30_000 + seed)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(2):
        rng.setstate(world_bits)
        dbs.append(build_world(rng))
    query = random_query(rng)
    serial_cq = ContinuousQuery(dbs[0], query, horizon=HORIZON)
    parallel_cq = ContinuousQuery(
        dbs[1], query, horizon=HORIZON, method=method, parallel=workers
    )
    for step in range(STEPS):
        for db in dbs:
            db.clock.tick()
        apply_random_updates(rng, dbs)
        assert serial_cq.current() == parallel_cq.current(), (
            f"seed {seed} step {step}: {query.where}"
        )
    serial_tuples = sorted(
        (t.values, t.begin, t.end) for t in serial_cq.answer_tuples()
    )
    parallel_tuples = sorted(
        (t.values, t.begin, t.end) for t in parallel_cq.answer_tuples()
    )
    assert serial_tuples == parallel_tuples


# ---------------------------------------------------------------------------
# Error parity and knob validation
# ---------------------------------------------------------------------------


def test_naive_method_rejects_parallel():
    rng = random.Random(3)
    db = build_world(rng)
    query = random_query(rng)
    with pytest.raises(QueryError, match="interval method"):
        query.evaluate(FutureHistory(db), HORIZON, method="naive", parallel=2)
    with pytest.raises(QueryError, match="naive"):
        ContinuousQuery(
            db, query, horizon=HORIZON, method="naive", parallel=2
        )


def test_non_future_history_rejected():
    rng = random.Random(3)
    db = build_world(rng)
    query = random_query(rng)
    with pytest.raises(QueryError, match="future"):
        ShardedIntervalEvaluator(query, object(), HORIZON, 2)


def test_worker_errors_match_serial_errors():
    """A query that fails in a worker surfaces the same exception the
    serial evaluator raises — type and message."""
    rng = random.Random(5)
    db = build_world(rng)
    # Unknown region: serial evaluation raises on first atom touch.
    query = FtlQuery(
        targets=("c",),
        bindings={"c": "cars"},
        where=Inside(Var("c"), "NO_SUCH_REGION"),
    )
    history = FutureHistory(db)
    try:
        query.evaluate_full(history, HORIZON)
        pytest.fail("serial evaluation should have raised")
    except Exception as serial_exc:  # noqa: BLE001 - capturing for parity
        serial_type, serial_msg = type(serial_exc), str(serial_exc)
    with pytest.raises(serial_type, match=serial_msg):
        query.evaluate_full(history, HORIZON, parallel=2)


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(False) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers("auto") >= 1
    with pytest.raises(QueryError):
        resolve_workers(True)
    with pytest.raises(QueryError):
        resolve_workers(-2)
    with pytest.raises(QueryError):
        resolve_workers("three")


def test_unviable_falls_back_to_serial_in_process():
    """A single-object class cannot shard; evaluation must silently run
    serially in-process and still answer correctly."""
    rng = random.Random(9)
    db = build_world(rng)
    query = FtlQuery(
        targets=("b",),
        bindings={"b": "birds"},
        where=Inside(Var("b"), "P"),
    )
    history = FutureHistory(db)
    ev = ShardedIntervalEvaluator(query, history, HORIZON, 4)
    assert not ev.viable  # birds has exactly one object
    merged = ev.evaluate()
    assert not ev.sharded
    serial = query.evaluate_full(history, HORIZON)
    assert rows_of(merged) == rows_of(serial)
