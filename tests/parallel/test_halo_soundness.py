"""Property tests: the shard halo is a conservative candidate superset.

The halo fast path answers a ``DIST(m, b) ⋈ r`` atom without consulting
the base gate whenever the partner object is outside the shard's halo
(DESIGN.md §12).  That is sound only if the halo — the union of the
shard members' radius-inflated candidate sets — contains every object
that ever comes within ``r`` of any shard member during the window.
Mirrors ``tests/index/test_candidate_soundness.py``: false positives are
fine, one false negative would silently flip an atom's answer.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MostDatabase, ObjectClass
from repro.core.history import FutureHistory
from repro.ftl.context import EvalContext
from repro.geometry import Point
from repro.parallel import halo_members, partition_ids

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HORIZON = 12

coord = st.integers(min_value=-40, max_value=40)
speed = st.integers(min_value=-4, max_value=4)
fleet = st.lists(
    st.tuples(coord, coord, speed, speed), min_size=2, max_size=10
)


def _build(objects):
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    for i, (x, y, vx, vy) in enumerate(objects):
        db.add_moving_object("cars", f"c{i}", Point(x, y), Point(vx, vy))
    return db, EvalContext(FutureHistory(db), HORIZON, {"c": "cars"})


def _positions(objects, t):
    return {
        f"c{i}": (x + vx * t, y + vy * t)
        for i, (x, y, vx, vy) in enumerate(objects)
    }


@SETTINGS
@given(
    objects=fleet,
    radius=st.integers(min_value=0, max_value=15),
    shard_count=st.integers(min_value=2, max_value=4),
)
def test_halo_contains_every_close_approach(objects, radius, shard_count):
    db, ctx = _build(objects)
    pruner = ctx.atom_pruner()
    history = FutureHistory(db)
    ids = history.object_ids("cars")
    shards = partition_ids(history, ids, shard_count, 0.0, HORIZON)
    for shard_ids in shards:
        halo = halo_members(pruner, shard_ids, float(radius))
        if halo is None:
            # Pruner declined (no boxes): the gate falls back to exact
            # solving, which is trivially sound.
            continue
        # Dense integer+quarter-tick sampling catches every crossing of
        # linear motion against an integer radius.
        for t4 in range(0, HORIZON * 4 + 1):
            t = t4 / 4
            pos = _positions(objects, t)
            for member in shard_ids:
                mx, my = pos[member]
                for other, (ox, oy) in pos.items():
                    if other == member:
                        continue
                    if math.hypot(mx - ox, my - oy) <= radius:
                        assert other in halo, (
                            f"{other} is within {radius} of shard member "
                            f"{member} at t={t} but missing from the halo"
                        )


@SETTINGS
@given(objects=fleet, shard_count=st.integers(min_value=2, max_value=4))
def test_halo_always_contains_shard_members(objects, shard_count):
    """At radius 0 every member is within distance 0 of itself, so the
    halo must at least cover the shard."""
    db, ctx = _build(objects)
    pruner = ctx.atom_pruner()
    history = FutureHistory(db)
    ids = history.object_ids("cars")
    for shard_ids in partition_ids(history, ids, shard_count, 0.0, HORIZON):
        halo = halo_members(pruner, shard_ids, 0.0)
        if halo is not None:
            assert set(shard_ids) <= halo


@SETTINGS
@given(objects=fleet)
def test_halo_rejects_bad_radius(objects):
    db, ctx = _build(objects)
    pruner = ctx.atom_pruner()
    ids = [f"c{i}" for i in range(len(objects))]
    assert halo_members(pruner, ids, -1.0) is None
    assert halo_members(pruner, ids, float("nan")) is None
    assert halo_members(pruner, ids, float("inf")) is None
