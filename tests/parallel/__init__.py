"""Sharded parallel evaluation (DESIGN.md §12)."""
