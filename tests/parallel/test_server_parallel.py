"""Server integration: ``CQServer(parallel=N)`` shards every registered
query and still serves the displays serial evaluation would."""

import asyncio

from repro.core.database import MostDatabase
from repro.core.objects import ObjectClass
from repro.distributed.network import FaultPlan, SimNetwork
from repro.distributed.node import MobileNode
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.server import BatchingReporter, CQServer, SubscriberClient
from repro.temporal import SimulationClock

QUERY = "RETRIEVE v FROM trackers v, beacons b WHERE DIST(v, b) <= 60"


def build_world(n_trackers=4, **server_kw):
    clock = SimulationClock()
    db = MostDatabase(clock)
    network = SimNetwork(clock, faults=FaultPlan(seed=0))
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    server = CQServer(db, network, **server_kw)
    reporters = []
    for i in range(n_trackers):
        oid = f"tracker-{i}"
        db.add_moving_object(
            "trackers", oid, Point(10.0 * i, 0.0), Point(1.0, 0.0)
        )
        db.track(oid)
        node = MobileNode(
            oid,
            network,
            linear_moving_point(Point(10.0 * i, 0.0), Point(1.0, 0.0)),
        )
        reporters.append(BatchingReporter(node, object_id=oid))
    return db, network, server, reporters


def drive(server, epochs):
    asyncio.run(server.serve(epochs=epochs))


def test_parallel_knob_reaches_registered_queries():
    db, network, server, _ = build_world(parallel=2)
    assert server.registry.parallel == 2
    client = SubscriberClient(network, "c1", QUERY, horizon=200)
    drive(server, 5)
    assert client.subscribed
    rq = next(iter(server.registry.queries.values()))
    assert rq.cq.parallel_workers == 2


def test_parallel_server_matches_serial_displays():
    serial = build_world()
    parallel = build_world(parallel=2)
    clients = [
        SubscriberClient(world[1], "c1", QUERY, horizon=200)
        for world in (serial, parallel)
    ]
    for world in (serial, parallel):
        drive(world[2], 6)
    assert all(c.subscribed for c in clients)
    assert clients[0].display_at() == clients[1].display_at()
    # Drive identical update streams and compare again.
    for world in (serial, parallel):
        world[3][0].report(Point(50.0, 0.0), position=Point(500.0, 0.0))
        drive(world[2], 10)
    assert clients[0].display_at() == clients[1].display_at()
    serial_rq = next(iter(serial[2].registry.queries.values()))
    parallel_rq = next(iter(parallel[2].registry.queries.values()))
    assert serial_rq.cq.current() == parallel_rq.cq.current()
