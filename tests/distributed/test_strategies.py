"""Tests for query classification and the section 5.3 strategies."""

import pytest

from repro.distributed import (
    QueryKind,
    SimNetwork,
    MobileNode,
    broadcast_object_query,
    classify_query,
    collect_object_query,
    continuous_object_query,
    relationship_query,
    self_referencing_query,
)
from repro.ftl import parse_query
from repro.geometry import Point
from repro.motion import linear_moving_point


class TestClassification:
    def test_self_referencing(self):
        # "Will I reach the point (a, b) in 3 minutes?"
        q = parse_query(
            "RETRIEVE me FROM cars me WHERE EVENTUALLY WITHIN 3 INSIDE(me, DEST)"
        )
        assert classify_query(q, issuer_var="me") == QueryKind.SELF_REFERENCING

    def test_object_query(self):
        # "Retrieve the objects that will reach the point (a,b) in 3 min."
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 INSIDE(o, DEST)"
        )
        assert classify_query(q, issuer_var="me") == QueryKind.OBJECT
        assert classify_query(q) == QueryKind.OBJECT

    def test_relationship_query(self):
        # "Objects that stay within 2 miles of each other for 3 minutes."
        q = parse_query(
            "RETRIEVE o, n FROM cars o, cars n "
            "WHERE ALWAYS FOR 3 DIST(o, n) <= 2"
        )
        assert classify_query(q) == QueryKind.RELATIONSHIP

    def test_relationship_via_within_sphere(self):
        q = parse_query(
            "RETRIEVE o, n FROM cars o, cars n WHERE WITHIN_SPHERE(2, o, n)"
        )
        assert classify_query(q) == QueryKind.RELATIONSHIP

    def test_object_query_with_assignment(self):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE [x := o.x_position]"
            " EVENTUALLY o.x_position >= x + 5"
        )
        assert classify_query(q) == QueryKind.OBJECT


def make_fleet(n=5, vx=1.0):
    net = SimNetwork()
    coordinator = MobileNode(
        "me", net, linear_moving_point(Point(0, 0), Point(0, 0))
    )
    others = [
        MobileNode(
            f"n{i}",
            net,
            linear_moving_point(Point(float(10 * i), 0), Point(vx, 0)),
        )
        for i in range(n)
    ]
    return net, coordinator, others


def near_origin(node) -> bool:
    return node.position_now().norm <= 15


class TestStrategies:
    def test_self_referencing_no_messages(self):
        net, coord, _others = make_fleet()
        assert self_referencing_query(coord, near_origin) is True
        assert net.stats.attempted == 0

    def test_collect_costs_n_object_transfers(self):
        net, coord, others = make_fleet(n=5)
        result = collect_object_query(coord, others, near_origin)
        assert result == {"n0", "n1"}
        assert net.stats.attempted == 5
        from repro.distributed.strategies import OBJECT_SIZE

        assert net.stats.bytes_sent == 5 * OBJECT_SIZE

    def test_broadcast_costs_n_queries_plus_k_replies(self):
        net, coord, others = make_fleet(n=5)
        result = broadcast_object_query(coord, others, near_origin)
        assert result == {"n0", "n1"}
        from repro.distributed.strategies import QUERY_SIZE, REPLY_SIZE

        assert net.stats.attempted == 5 + 2
        assert net.stats.bytes_sent == 5 * QUERY_SIZE + 2 * REPLY_SIZE

    def test_broadcast_cheaper_for_selective_predicates(self):
        net1, coord1, others1 = make_fleet(n=20)
        collect_object_query(coord1, others1, near_origin)
        collect_bytes = net1.stats.bytes_sent

        net2, coord2, others2 = make_fleet(n=20)
        broadcast_object_query(coord2, others2, near_origin)
        broadcast_bytes = net2.stats.bytes_sent
        assert broadcast_bytes < collect_bytes

    def test_disconnected_node_missing_from_answer(self):
        net, coord, others = make_fleet(n=3)
        net.set_disconnections("n0", [(0, 100)])
        result = collect_object_query(coord, others, near_origin)
        assert "n0" not in result
        assert net.stats.dropped == 1

    def test_relationship_centralises(self):
        net, coord, others = make_fleet(n=4)

        def close_pairs(snapshots):
            now = net.clock.now
            out = set()
            for a in snapshots:
                for b in snapshots:
                    if a["id"] < b["id"]:
                        pa = a["mover"].position_at(now)
                        pb = b["mover"].position_at(now)
                        if pa.distance_to(pb) <= 12:
                            out.add(a["id"])
                            out.add(b["id"])
            return out

        result = relationship_query(coord, others, close_pairs)
        assert "n0" in result and "me" in result
        assert net.stats.attempted == 4  # every other node ships its object


class TestContinuous:
    def test_broadcast_sends_only_transitions(self):
        net, coord, others = make_fleet(n=4, vx=-1.0)
        # Every node changes its object every tick (position moves), so
        # collect would ship constantly; broadcast only on flips.
        changes = {node.node_id: list(range(1, 21)) for node in others}
        history = continuous_object_query(
            coord, others, near_origin, changes, horizon=20, strategy="broadcast"
        )
        broadcast_msgs = net.stats.attempted

        net2, coord2, others2 = make_fleet(n=4, vx=-1.0)
        changes2 = {node.node_id: list(range(1, 21)) for node in others2}
        history2 = continuous_object_query(
            coord2, others2, near_origin, changes2, horizon=20, strategy="collect"
        )
        collect_msgs = net2.stats.attempted

        assert broadcast_msgs < collect_msgs
        # Both strategies converge to the same view when connected.
        assert history[max(history, key=int)] == history2[max(history2, key=int)]

    def test_collect_misses_unchanged_objects(self):
        # A node that never "changes" is never re-shipped under collect,
        # so the coordinator's view never includes it.
        net, coord, others = make_fleet(n=1, vx=0.0)
        history = continuous_object_query(
            coord, others, near_origin, {}, horizon=3, strategy="collect"
        )
        assert history["3"] == set()

    def test_view_tracks_predicate(self):
        net, coord, others = make_fleet(n=1, vx=-1.0)
        # n0 starts at x=0 (inside), moves left; leaves after t=15.
        changes = {"n0": list(range(1, 31))}
        history = continuous_object_query(
            coord, others, near_origin, changes, horizon=30, strategy="broadcast"
        )
        assert history["5"] == {"n0"}
        assert history["30"] == set()
