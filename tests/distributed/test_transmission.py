"""Tests for the section 5.2 transmission policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    DelayedPolicy,
    ImmediatePolicy,
    PeriodicPolicy,
    simulate_transmission,
)
from repro.errors import DistributedError
from repro.ftl.relations import AnswerTuple


def tup(v, begin, end):
    return AnswerTuple((v,), begin, end)


ANSWER = [tup("a", 0, 5), tup("b", 3, 9), tup("c", 12, 20)]


class TestImmediate:
    def test_perfect_display_without_limits(self):
        report = simulate_transmission(ImmediatePolicy(), ANSWER, horizon=20)
        assert report.staleness == 0
        assert report.tuples_sent == 3
        assert report.messages == 1  # the whole set at once

    def test_blocks_under_memory_limit(self):
        report = simulate_transmission(
            ImmediatePolicy(), ANSWER, horizon=20, client_memory=1
        )
        # Tuples must arrive in several messages as memory frees up.
        assert report.messages > 1
        assert report.tuples_sent == 3

    def test_overlapping_tuples_with_tiny_memory(self):
        # a and b overlap during [3,5]: with B=1 one of them cannot show.
        report = simulate_transmission(
            ImmediatePolicy(), ANSWER, horizon=20, client_memory=1
        )
        # Staleness counts only avoidable errors, so perfect-for-capacity
        # transmission keeps it low but displays at most one tuple.
        assert all(len(s) <= 1 for s in report.display_trace.values())

    def test_disconnection_causes_staleness(self):
        report = simulate_transmission(
            ImmediatePolicy(),
            ANSWER,
            horizon=20,
            disconnections=[(0, 2)],
        )
        # The initial transmission fails; tuple "a" display is late.
        assert report.dropped_messages >= 1
        assert report.staleness > 0

    def test_revision_retracts_tuples(self):
        revised = [tup("a", 0, 5)]  # b and c disappear at t=2
        report = simulate_transmission(
            ImmediatePolicy(),
            ANSWER,
            horizon=20,
            revisions={2: revised},
        )
        assert report.staleness == 0
        assert all(
            ("b",) not in shown
            for t, shown in report.display_trace.items()
            if t >= 3
        )


class TestDelayed:
    def test_each_tuple_at_begin(self):
        report = simulate_transmission(DelayedPolicy(), ANSWER, horizon=20)
        assert report.staleness == 0
        # Three distinct begin times -> three messages.
        assert report.messages == 3

    def test_memory_1_suffices_when_disjoint(self):
        disjoint = [tup("a", 0, 2), tup("b", 4, 6), tup("c", 8, 10)]
        report = simulate_transmission(
            DelayedPolicy(), disjoint, horizon=12, client_memory=1
        )
        assert report.staleness == 0

    def test_late_send_after_reconnection(self):
        report = simulate_transmission(
            DelayedPolicy(),
            [tup("a", 2, 10)],
            horizon=12,
            disconnections=[(1, 4)],
        )
        # Missed at begin=2 and 3, 4; delivered at 5.
        assert report.staleness == 3
        assert report.display_trace[5] == {("a",)}


class TestPeriodic:
    def test_period_validation(self):
        with pytest.raises(DistributedError):
            PeriodicPolicy(period=0)

    def test_batches_on_schedule(self):
        report = simulate_transmission(PeriodicPolicy(period=5), ANSWER, horizon=20)
        # Sends at t=0 (a, b), t=10 (c) — b begins at 3 <= 0+5.
        assert report.messages == 2
        assert report.staleness == 0

    def test_coarse_period_misses_mid_period_revisions(self):
        # A revision at t=2 adds a tuple active [3, 5]; with period 10 the
        # next batch (t=10) is too late, with period 1 it arrives in time.
        revisions = {2: ANSWER + [tup("x", 3, 5)]}
        fine = simulate_transmission(
            PeriodicPolicy(period=1), ANSWER, horizon=20, revisions=revisions
        )
        coarse = simulate_transmission(
            PeriodicPolicy(period=10), ANSWER, horizon=20, revisions=revisions
        )
        assert fine.staleness == 0
        assert coarse.staleness > 0


# ---------------------------------------------------------------------------
# Properties over random answer sets
# ---------------------------------------------------------------------------
answers = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=15),
    ),
    max_size=15,
).map(
    lambda specs: [
        tup(f"v{i}", begin, begin + length)
        for i, (begin, length) in enumerate(specs)
    ]
)


@settings(max_examples=60, deadline=None)
@given(answers, st.sampled_from(["immediate", "delayed", "periodic"]))
def test_connected_unbounded_client_is_never_stale(answer, policy_name):
    policy = {
        "immediate": ImmediatePolicy,
        "delayed": DelayedPolicy,
        "periodic": lambda: PeriodicPolicy(period=1),
    }[policy_name]()
    report = simulate_transmission(policy, answer, horizon=60)
    assert report.staleness == 0
    assert report.tuples_sent == len(answer)


@settings(max_examples=40, deadline=None)
@given(answers)
def test_delayed_sends_each_tuple_once(answer):
    report = simulate_transmission(DelayedPolicy(), answer, horizon=60)
    assert report.tuples_sent == len(answer)
    distinct_begins = len({t.begin for t in answer})
    assert report.messages == distinct_begins


class TestRevisionWhileDisconnected:
    """Mid-flight answer revisions combined with client disconnections.

    A revision that arrives while the client is offline must not leave
    phantom tuples anywhere: not in the policy's ``pending`` queue, and
    not on the client's display once a retract message finally gets
    through."""

    POLICIES = [
        ImmediatePolicy,
        DelayedPolicy,
        lambda: PeriodicPolicy(period=1),
    ]

    @pytest.mark.parametrize("make_policy", POLICIES)
    def test_no_phantom_tuples_in_pending(self, make_policy):
        # b is withdrawn at t=2 while the client is offline [1, 4].
        revised = [tup("a", 0, 9)]
        policy = make_policy()
        simulate_transmission(
            policy,
            [tup("a", 0, 9), tup("b", 0, 9)],
            horizon=12,
            disconnections=[(1, 4)],
            revisions={2: revised},
        )
        # After the run the withdrawn tuple must not linger in pending.
        assert all(t.values != ("b",) for t in policy.pending)

    @pytest.mark.parametrize("make_policy", POLICIES)
    def test_retraction_waits_for_reconnection(self, make_policy):
        report = simulate_transmission(
            make_policy(),
            [tup("a", 0, 9), tup("b", 0, 9)],
            horizon=12,
            disconnections=[(1, 4)],
            revisions={2: [tup("a", 0, 9)]},
        )
        # While offline the stale tuple stays displayed (information
        # cannot teleport to a disconnected client)...
        assert ("b",) in report.display_trace[3]
        # ...and is gone from the first reconnected tick onwards.
        for t in range(5, 10):
            assert ("b",) not in report.display_trace[t]
        assert report.retract_messages >= 1
        assert report.dropped_messages >= 1  # retract attempts while offline

    @pytest.mark.parametrize("make_policy", POLICIES)
    def test_tuple_added_while_offline_arrives_after_reconnect(
        self, make_policy
    ):
        report = simulate_transmission(
            make_policy(),
            [tup("a", 0, 9)],
            horizon=12,
            disconnections=[(1, 4)],
            revisions={2: [tup("a", 0, 9), tup("x", 0, 9)]},
        )
        assert ("x",) not in report.display_trace[3]
        for t in range(5, 10):
            assert report.display_trace[t] == {("a",), ("x",)}

    def test_readded_tuple_is_not_retracted_later(self):
        # b is withdrawn at t=2 (while offline) and re-added at t=3
        # (still offline): the owed retraction must be cancelled, or the
        # late retract message would wrongly remove a valid tuple.
        report = simulate_transmission(
            ImmediatePolicy(),
            [tup("a", 0, 9), tup("b", 0, 9)],
            horizon=12,
            disconnections=[(1, 4)],
            revisions={
                2: [tup("a", 0, 9)],
                3: [tup("a", 0, 9), tup("b", 0, 9)],
            },
        )
        for t in range(5, 10):
            assert report.display_trace[t] == {("a",), ("b",)}
        # Once reconnected and settled, nothing is stale.
        assert all(
            report.display_trace[t] == {("a",), ("b",)} for t in range(5, 10)
        )

    def test_revision_while_connected_costs_a_retract_message(self):
        report = simulate_transmission(
            ImmediatePolicy(),
            [tup("a", 0, 9), tup("b", 0, 9)],
            horizon=12,
            revisions={2: [tup("a", 0, 9)]},
        )
        assert report.retract_messages == 1
        assert report.staleness == 0


class TestTradeoffs:
    def test_immediate_fewer_messages_than_delayed(self):
        many = [tup(f"v{i}", i, i + 3) for i in range(12)]
        imm = simulate_transmission(ImmediatePolicy(), many, horizon=20)
        dly = simulate_transmission(DelayedPolicy(), many, horizon=20)
        assert imm.messages < dly.messages
        assert imm.staleness == dly.staleness == 0

    def test_delayed_needs_less_memory(self):
        many = [tup(f"v{i}", 2 * i, 2 * i + 1) for i in range(10)]
        imm = simulate_transmission(
            ImmediatePolicy(), many, horizon=25, client_memory=2
        )
        dly = simulate_transmission(
            DelayedPolicy(), many, horizon=25, client_memory=2
        )
        # Both can be correct, but delayed sends each tuple exactly when
        # needed while immediate must trickle blocks.
        assert dly.staleness == 0
        assert imm.tuples_sent == dly.tuples_sent == 10
