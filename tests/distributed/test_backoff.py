"""RetrySchedule and jittered MotionReporter backoff (DESIGN.md §4)."""

import random

import pytest

from repro.core import MostDatabase, ObjectClass
from repro.distributed import (
    FaultPlan,
    LinkFaults,
    MobileNode,
    MotionReporter,
    RetrySchedule,
    SimNetwork,
    UpdateServer,
)
from repro.errors import DistributedError
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.temporal import SimulationClock


class TestRetrySchedule:
    def test_no_jitter_matches_legacy_schedule(self):
        schedule = RetrySchedule(base=2, factor=2, cap=8)
        legacy = [min(int(2 * 2**a), 8) for a in range(6)]
        assert [schedule.interval(a) for a in range(6)] == legacy

    def test_seeded_rng_reproduces_exactly(self):
        schedule = RetrySchedule(base=2, factor=2, cap=8, jitter=0.3)
        a = schedule.preview(8, random.Random(42))
        b = schedule.preview(8, random.Random(42))
        assert a == b

    def test_different_seeds_decorrelate(self):
        schedule = RetrySchedule(base=2, factor=3, cap=60, jitter=0.5)
        a = schedule.preview(12, random.Random(1))
        b = schedule.preview(12, random.Random(2))
        assert a != b

    def test_jitter_respects_cap_times_one_plus_jitter(self):
        schedule = RetrySchedule(base=2, factor=2, cap=8, jitter=0.3)
        rng = random.Random(7)
        for attempts in range(20):
            value = schedule.interval(attempts, rng)
            assert 1 <= value <= int(8 * 1.3)

    def test_jitter_without_rng_is_deterministic(self):
        schedule = RetrySchedule(base=2, factor=2, cap=8, jitter=0.9)
        assert schedule.interval(1) == 4  # no rng handed in: nominal value

    def test_interval_never_below_one_tick(self):
        schedule = RetrySchedule(base=1, factor=1, cap=1, jitter=0.9)
        rng = random.Random(0)
        assert all(schedule.interval(a, rng) >= 1 for a in range(10))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0},
            {"factor": 0.5},
            {"cap": 1, "base": 2},
            {"jitter": -0.1},
            {"jitter": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(DistributedError):
            RetrySchedule(**kwargs)

    def test_negative_attempts_rejected(self):
        with pytest.raises(DistributedError):
            RetrySchedule().interval(-1)


def lossy_world(n_nodes, jitter, seeds, drop=1.0):
    """Reporters on an always-dropping link, to observe retry cadence."""
    clock = SimulationClock()
    db = MostDatabase(clock)
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    net = SimNetwork(
        clock, faults=FaultPlan(seed=0, default=LinkFaults(drop=drop))
    )
    UpdateServer(db, net)
    reporters = []
    for i in range(n_nodes):
        object_id = f"car-{i}"
        db.add_moving_object("cars", object_id, Point(0.0, 0.0))
        db.track(object_id)
        node = MobileNode(
            object_id, net, linear_moving_point(Point(0, 0), Point(0, 0))
        )
        reporters.append(
            MotionReporter(
                node,
                object_id=object_id,
                jitter=jitter,
                seed=seeds[i] if seeds else None,
            )
        )
    return clock, reporters


def retry_ticks(reporter, clock, horizon=40):
    """Ticks on which the reporter retransmitted its (never-acked) update."""
    ticks = []
    before = reporter.retransmissions
    for _ in range(horizon):
        clock.tick()
        if reporter.retransmissions > before:
            ticks.append(clock.now)
            before = reporter.retransmissions
    return ticks


class TestReporterJitter:
    def test_same_seed_same_retry_cadence(self):
        ticks = []
        for _ in range(2):
            clock, (rep,) = lossy_world(1, jitter=0.4, seeds=[99])
            rep.report(Point(1.0, 0.0))
            ticks.append(retry_ticks(rep, clock))
        assert ticks[0] == ticks[1]
        assert len(ticks[0]) >= 3

    def test_default_seeds_decorrelate_reporters(self):
        # Identical update patterns, per-object default seeds: the herd
        # must not retry in lockstep.
        clock, reporters = lossy_world(2, jitter=0.4, seeds=None)
        for rep in reporters:
            rep.report(Point(1.0, 0.0))
        cadences = [
            [] for _ in reporters
        ]
        before = [r.retransmissions for r in reporters]
        for _ in range(40):
            clock.tick()
            for i, rep in enumerate(reporters):
                if rep.retransmissions > before[i]:
                    cadences[i].append(clock.now)
                    before[i] = rep.retransmissions
        assert cadences[0] != cadences[1]

    def test_zero_jitter_keeps_legacy_cadence(self):
        clock, (rep,) = lossy_world(1, jitter=0.0, seeds=None)
        rep.report(Point(1.0, 0.0))
        ticks = retry_ticks(rep, clock, horizon=32)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        # PR 2 schedule: waits double from 2 up to the cap of 8.
        assert gaps[:4] == [4, 8, 8, 8]

    def test_configurable_cap_limits_the_wait(self):
        clock_a, (rep_a,) = lossy_world(1, jitter=0.0, seeds=None)
        rep_a.max_interval = 4
        rep_a.schedule = RetrySchedule(base=2, factor=2, cap=4)
        rep_a.report(Point(1.0, 0.0))
        ticks = retry_ticks(rep_a, clock_a, horizon=30)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert gaps and max(gaps) <= 4
