"""Unit tests for the message-passing simulation and mobile nodes."""

import pytest

from repro.distributed import (
    FaultPlan,
    LinkFaults,
    MobileClient,
    MobileNode,
    SimNetwork,
)
from repro.errors import DistributedError
from repro.ftl.relations import AnswerTuple
from repro.geometry import Point
from repro.motion import linear_moving_point


class TestNetwork:
    def test_register_and_send(self):
        net = SimNetwork()
        seen = []
        net.register("a", seen.append)
        net.register("b", lambda m: None)
        assert net.send("b", "a", "ping", {"x": 1}, size=3)
        assert len(seen) == 1
        assert seen[0].payload == {"x": 1}
        assert net.stats.delivered == 1
        assert net.stats.bytes_sent == 3

    def test_duplicate_register(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        with pytest.raises(DistributedError):
            net.register("a", lambda m: None)

    def test_unknown_destination(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        with pytest.raises(DistributedError):
            net.send("a", "ghost", "ping", None)

    def test_disconnection_drops(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.set_disconnections("b", [(2, 4)])
        assert net.send("a", "b", "ping", None)
        net.clock.tick(3)  # now = 3, inside the window
        assert not net.send("a", "b", "ping", None)
        assert not net.send("b", "a", "ping", None)  # offline source too
        net.clock.tick(2)  # now = 5
        assert net.send("a", "b", "ping", None)
        assert net.stats.dropped == 2

    def test_disconnection_unknown_node(self):
        net = SimNetwork()
        with pytest.raises(DistributedError):
            net.set_disconnections("ghost", [(0, 1)])

    def test_broadcast(self):
        net = SimNetwork()
        for n in ("a", "b", "c"):
            net.register(n, lambda m: None)
        net.set_disconnections("c", [(0, 10)])
        assert net.broadcast("a", "q", None) == 1  # only b reachable

    def test_log(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.send("a", "b", "x", 1)
        assert [m.kind for m in net.log] == ["x"]


class TestDisconnectionBoundaries:
    """Pinned semantics: windows are closed ``[start, end]`` — offline at
    both endpoints, reachable again from ``end + 1``."""

    def make(self, windows):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.set_disconnections("b", windows)
        return net

    def test_offline_exactly_at_window_start(self):
        net = self.make([(2, 4)])
        net.clock.tick(2)  # now == start
        assert not net.is_connected("b")
        assert not net.send("a", "b", "ping", None)

    def test_offline_exactly_at_window_end(self):
        net = self.make([(2, 4)])
        net.clock.tick(4)  # now == end
        assert not net.is_connected("b")
        assert not net.send("a", "b", "ping", None)

    def test_online_first_tick_after_window(self):
        net = self.make([(2, 4)])
        net.clock.tick(5)  # now == end + 1
        assert net.is_connected("b")
        assert net.send("a", "b", "ping", None)

    def test_online_last_tick_before_window(self):
        net = self.make([(2, 4)])
        net.clock.tick(1)  # now == start - 1
        assert net.is_connected("b")
        assert net.send("a", "b", "ping", None)

    def test_adjacent_windows_merge_at_shared_endpoint(self):
        # [2,4] and [4,6] share the endpoint 4: there is no momentary
        # reconnection — the node behaves as offline over all of [2,6].
        net = self.make([(2, 4), (4, 6)])
        for t in range(2, 7):
            assert not net.is_connected("b", at=t)
        assert net.is_connected("b", at=7)

    def test_explicit_probe_times(self):
        net = self.make([(3, 3)])  # single-tick outage
        assert net.is_connected("b", at=2)
        assert not net.is_connected("b", at=3)
        assert net.is_connected("b", at=4)


class TestFaultPlan:
    def pair(self, faults):
        net = SimNetwork(faults=faults)
        got = []
        net.register("a", lambda m: None)
        net.register("b", got.append)
        return net, got

    def test_clean_plan_delivers_next_tick(self):
        net, got = self.pair(FaultPlan(seed=1))
        assert net.send("a", "b", "ping", 1)
        assert got == []  # queued, not synchronous
        assert net.in_flight == 1
        net.clock.tick()
        assert [m.payload for m in got] == [1]
        assert net.stats.delivered == 1

    def test_pump_delivers_without_tick(self):
        net, got = self.pair(FaultPlan(seed=1))
        net.send("a", "b", "ping", 1)
        assert net.pump() == 1
        assert [m.payload for m in got] == [1]

    def test_drop_everything(self):
        net, got = self.pair(FaultPlan(seed=1, default=LinkFaults(drop=1.0)))
        assert not net.send("a", "b", "ping", 1)
        net.clock.tick(5)
        assert got == []
        assert net.stats.dropped == 1

    def test_duplicate_everything(self):
        net, got = self.pair(
            FaultPlan(seed=1, default=LinkFaults(duplicate=1.0))
        )
        net.send("a", "b", "ping", 1)
        net.clock.tick()
        assert [m.payload for m in got] == [1, 1]
        assert net.stats.duplicated == 1
        assert net.stats.delivered == 2

    def test_fixed_delay(self):
        net, got = self.pair(
            FaultPlan(seed=1, default=LinkFaults(delay=(3, 3)))
        )
        net.send("a", "b", "ping", 1)
        net.clock.tick(2)
        assert got == []
        net.clock.tick()
        assert [m.payload for m in got] == [1]
        assert got[0].time == 3
        assert got[0].sent_at == 0

    def test_delay_can_reorder_across_sends(self):
        net, got = self.pair(
            FaultPlan(
                seed=1,
                links={("a", "b"): LinkFaults(delay=(4, 4))},
            )
        )
        net.send("a", "b", "slow", "first")
        net.clock.tick()
        # Second message sent later on a faster (default clean) link...
        # use a different src so the per-link override doesn't apply.
        net.register("c", lambda m: None)
        net.send("c", "b", "fast", "second")
        net.clock.tick(5)
        assert [m.payload for m in got] == ["second", "first"]
        assert net.stats.reordered == 1

    def test_crash_window_drops_at_delivery_time(self):
        net, got = self.pair(
            FaultPlan(
                seed=1,
                default=LinkFaults(delay=(2, 2)),
                crashes={"b": [(2, 5)]},
            )
        )
        net.send("a", "b", "ping", 1)  # due at t=2, b crashed [2,5]
        net.clock.tick(6)
        assert got == []
        assert net.stats.dropped == 1
        # After restart the node is reachable again.
        assert net.send("a", "b", "ping", 2)
        net.clock.tick(3)
        assert [m.payload for m in got] == [2]

    def test_crashed_source_cannot_send(self):
        net, got = self.pair(FaultPlan(seed=1, crashes={"a": [(0, 3)]}))
        assert not net.send("a", "b", "ping", 1)
        assert net.stats.dropped == 1

    def test_determinism_same_seed_same_trace(self):
        def trace(seed):
            net, got = self.pair(
                FaultPlan(
                    seed=seed,
                    default=LinkFaults(
                        drop=0.3, duplicate=0.3, delay=(0, 4), reorder=0.5
                    ),
                )
            )
            for i in range(30):
                net.send("a", "b", "m", i)
                net.clock.tick()
            net.clock.tick(6)
            return [(m.payload, m.time) for m in got]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)  # and the seed actually matters

    def test_heal_at_stops_faults(self):
        net, got = self.pair(
            FaultPlan(seed=1, default=LinkFaults(drop=1.0), heal_at=10)
        )
        assert not net.send("a", "b", "ping", "lost")
        net.clock.tick(10)
        assert net.send("a", "b", "ping", "healed")
        net.clock.tick()
        assert [m.payload for m in got] == ["healed"]

    def test_link_fault_validation(self):
        with pytest.raises(DistributedError):
            LinkFaults(drop=1.5)
        with pytest.raises(DistributedError):
            LinkFaults(delay=(3, 1))


class TestMobileNode:
    def test_snapshot_and_position(self):
        net = SimNetwork()
        node = MobileNode(
            "car1", net, linear_moving_point(Point(0, 0), Point(2, 0)),
            attributes={"price": 10},
        )
        net.clock.tick(3)
        assert node.position_now() == Point(6, 0)
        snap = node.snapshot()
        assert snap["id"] == "car1"
        assert snap["attributes"] == {"price": 10}

    def test_inbox_and_kind_handler(self):
        net = SimNetwork()
        a = MobileNode("a", net, linear_moving_point(Point(0, 0), Point(0, 0)))
        MobileNode("b", net, linear_moving_point(Point(0, 0), Point(0, 0)))
        hits = []
        a.on_kind("probe", hits.append)
        net.send("b", "a", "probe", 42)
        net.send("b", "a", "other", 43)
        # Handled messages are consumed, not retained; only the
        # unhandled one stays unread.
        assert len(a.inbox) == 1
        assert a.inbox[0].kind == "other"
        assert a.handled == 1
        assert len(hits) == 1

    def test_inbox_cap_and_overflow_counter(self):
        net = SimNetwork()
        a = MobileNode(
            "a",
            net,
            linear_moving_point(Point(0, 0), Point(0, 0)),
            inbox_limit=3,
        )
        MobileNode("b", net, linear_moving_point(Point(0, 0), Point(0, 0)))
        for i in range(5):
            net.send("b", "a", "junk", i)
        assert len(a.inbox) == 3
        assert a.inbox_overflow == 2
        # Handled kinds never consume inbox capacity, even when full.
        hits = []
        a.on_kind("probe", hits.append)
        net.send("b", "a", "probe", 99)
        assert len(hits) == 1
        assert a.inbox_overflow == 2

    def test_drain_inbox(self):
        net = SimNetwork()
        a = MobileNode("a", net, linear_moving_point(Point(0, 0), Point(0, 0)))
        MobileNode("b", net, linear_moving_point(Point(0, 0), Point(0, 0)))
        net.send("b", "a", "x", 1)
        net.send("b", "a", "y", 2)
        net.send("b", "a", "x", 3)
        xs = a.drain_inbox("x")
        assert [m.payload for m in xs] == [1, 3]
        assert [m.kind for m in a.inbox] == ["y"]
        rest = a.drain_inbox()
        assert [m.payload for m in rest] == [2]
        assert a.inbox == []

    def test_inbox_limit_validation(self):
        net = SimNetwork()
        with pytest.raises(DistributedError):
            MobileNode(
                "a",
                net,
                linear_moving_point(Point(0, 0), Point(0, 0)),
                inbox_limit=0,
            )

    def test_update_motion_local_only(self):
        net = SimNetwork()
        node = MobileNode("a", net, linear_moving_point(Point(0, 0), Point(1, 0)))
        node.update_motion(linear_moving_point(Point(0, 0), Point(0, 5)))
        net.clock.tick(2)
        assert node.position_now() == Point(0, 10)
        assert net.stats.attempted == 0  # nothing transmitted


class TestMobileClient:
    def tup(self, value, begin, end):
        return AnswerTuple((value,), begin, end)

    def test_memory_validation(self):
        with pytest.raises(DistributedError):
            MobileClient(memory=0)

    def test_receive_and_display(self):
        client = MobileClient()
        client.receive([self.tup("a", 0, 5), self.tup("b", 3, 9)], now=0)
        assert client.display_at(1) == {("a",)}
        assert client.display_at(4) == {("a",), ("b",)}
        assert client.display_at(7) == {("b",)}

    def test_memory_limit_rejects(self):
        client = MobileClient(memory=1)
        accepted = client.receive([self.tup("a", 0, 5), self.tup("b", 0, 5)], now=0)
        assert accepted == 1
        assert client.rejected == 1
        assert client.free_slots == 0

    def test_eviction_frees_memory(self):
        client = MobileClient(memory=1)
        client.receive([self.tup("a", 0, 2)], now=0)
        assert client.receive([self.tup("b", 3, 5)], now=3) == 1
        assert client.display_at(4) == {("b",)}

    def test_duplicate_receive_ignored(self):
        client = MobileClient()
        t = self.tup("a", 0, 5)
        client.receive([t], now=0)
        client.receive([t], now=1)
        assert len(client) == 1

    def test_retract(self):
        client = MobileClient()
        t = self.tup("a", 0, 5)
        client.receive([t], now=0)
        client.retract([t])
        assert client.display_at(1) == set()

    def test_unbounded_free_slots(self):
        assert MobileClient().free_slots is None
