"""Unit tests for the message-passing simulation and mobile nodes."""

import pytest

from repro.distributed import MobileClient, MobileNode, SimNetwork
from repro.errors import DistributedError
from repro.ftl.relations import AnswerTuple
from repro.geometry import Point
from repro.motion import linear_moving_point


class TestNetwork:
    def test_register_and_send(self):
        net = SimNetwork()
        seen = []
        net.register("a", seen.append)
        net.register("b", lambda m: None)
        assert net.send("b", "a", "ping", {"x": 1}, size=3)
        assert len(seen) == 1
        assert seen[0].payload == {"x": 1}
        assert net.stats.delivered == 1
        assert net.stats.bytes_sent == 3

    def test_duplicate_register(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        with pytest.raises(DistributedError):
            net.register("a", lambda m: None)

    def test_unknown_destination(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        with pytest.raises(DistributedError):
            net.send("a", "ghost", "ping", None)

    def test_disconnection_drops(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.set_disconnections("b", [(2, 4)])
        assert net.send("a", "b", "ping", None)
        net.clock.tick(3)  # now = 3, inside the window
        assert not net.send("a", "b", "ping", None)
        assert not net.send("b", "a", "ping", None)  # offline source too
        net.clock.tick(2)  # now = 5
        assert net.send("a", "b", "ping", None)
        assert net.stats.dropped == 2

    def test_disconnection_unknown_node(self):
        net = SimNetwork()
        with pytest.raises(DistributedError):
            net.set_disconnections("ghost", [(0, 1)])

    def test_broadcast(self):
        net = SimNetwork()
        for n in ("a", "b", "c"):
            net.register(n, lambda m: None)
        net.set_disconnections("c", [(0, 10)])
        assert net.broadcast("a", "q", None) == 1  # only b reachable

    def test_log(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.send("a", "b", "x", 1)
        assert [m.kind for m in net.log] == ["x"]


class TestMobileNode:
    def test_snapshot_and_position(self):
        net = SimNetwork()
        node = MobileNode(
            "car1", net, linear_moving_point(Point(0, 0), Point(2, 0)),
            attributes={"price": 10},
        )
        net.clock.tick(3)
        assert node.position_now() == Point(6, 0)
        snap = node.snapshot()
        assert snap["id"] == "car1"
        assert snap["attributes"] == {"price": 10}

    def test_inbox_and_kind_handler(self):
        net = SimNetwork()
        a = MobileNode("a", net, linear_moving_point(Point(0, 0), Point(0, 0)))
        MobileNode("b", net, linear_moving_point(Point(0, 0), Point(0, 0)))
        hits = []
        a.on_kind("probe", hits.append)
        net.send("b", "a", "probe", 42)
        net.send("b", "a", "other", 43)
        assert len(a.inbox) == 2
        assert len(hits) == 1

    def test_update_motion_local_only(self):
        net = SimNetwork()
        node = MobileNode("a", net, linear_moving_point(Point(0, 0), Point(1, 0)))
        node.update_motion(linear_moving_point(Point(0, 0), Point(0, 5)))
        net.clock.tick(2)
        assert node.position_now() == Point(0, 10)
        assert net.stats.attempted == 0  # nothing transmitted


class TestMobileClient:
    def tup(self, value, begin, end):
        return AnswerTuple((value,), begin, end)

    def test_memory_validation(self):
        with pytest.raises(DistributedError):
            MobileClient(memory=0)

    def test_receive_and_display(self):
        client = MobileClient()
        client.receive([self.tup("a", 0, 5), self.tup("b", 3, 9)], now=0)
        assert client.display_at(1) == {("a",)}
        assert client.display_at(4) == {("a",), ("b",)}
        assert client.display_at(7) == {("b",)}

    def test_memory_limit_rejects(self):
        client = MobileClient(memory=1)
        accepted = client.receive([self.tup("a", 0, 5), self.tup("b", 0, 5)], now=0)
        assert accepted == 1
        assert client.rejected == 1
        assert client.free_slots == 0

    def test_eviction_frees_memory(self):
        client = MobileClient(memory=1)
        client.receive([self.tup("a", 0, 2)], now=0)
        assert client.receive([self.tup("b", 3, 5)], now=3) == 1
        assert client.display_at(4) == {("b",)}

    def test_duplicate_receive_ignored(self):
        client = MobileClient()
        t = self.tup("a", 0, 5)
        client.receive([t], now=0)
        client.receive([t], now=1)
        assert len(client) == 1

    def test_retract(self):
        client = MobileClient()
        t = self.tup("a", 0, 5)
        client.receive([t], now=0)
        client.retract([t])
        assert client.display_at(1) == set()

    def test_unbounded_free_slots(self):
        assert MobileClient().free_slots is None
