"""Slot accounting of the §5.2 transmission policies (satellite of PR 7).

The continuous-query server trusts these invariants when pacing deltas
through a client's advertised memory window: ``due`` must never exceed
``free_slots``, ``free_slots=0`` must hold everything, and ``mark_sent``
must remove exactly the transmitted tuples so nothing is sent twice or
lost across retract interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import DelayedPolicy, ImmediatePolicy, PeriodicPolicy
from repro.ftl.relations import AnswerTuple


def make_tuple(name, begin, length):
    return AnswerTuple(values=(name,), begin=begin, end=begin + length)


raw_tuples = st.lists(
    st.tuples(
        st.sampled_from("abcdefgh"),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    ).map(lambda p: make_tuple(*p)),
    max_size=12,
    unique_by=lambda t: (t.values, t.begin, t.end),
)

policies = st.sampled_from(["immediate", "delayed", "periodic"])


def build(name, period=3):
    if name == "immediate":
        return ImmediatePolicy()
    if name == "delayed":
        return DelayedPolicy()
    return PeriodicPolicy(period)


class TestSlotInvariants:
    @given(policies, raw_tuples, st.integers(0, 20), st.integers(0, 6))
    @settings(max_examples=200)
    def test_due_never_exceeds_free_slots(self, name, tuples, now, slots):
        policy = build(name)
        policy.on_answer(tuples, now=0)
        assert len(policy.due(now, slots)) <= slots

    @given(policies, raw_tuples, st.integers(0, 20))
    def test_zero_free_slots_sends_nothing(self, name, tuples, now):
        policy = build(name)
        policy.on_answer(tuples, now=0)
        assert policy.due(now, 0) == []

    @given(policies, raw_tuples, st.integers(0, 20))
    def test_unlimited_slots_only_sends_pending(self, name, tuples, now):
        policy = build(name)
        policy.on_answer(tuples, now=0)
        due = policy.due(now, None)
        assert set(due) <= set(policy.pending)

    @given(policies, raw_tuples, st.integers(0, 20), st.integers(1, 6))
    @settings(max_examples=200)
    def test_mark_sent_removes_exactly_the_sent(self, name, tuples, now, slots):
        policy = build(name)
        policy.on_answer(tuples, now=0)
        before = list(policy.pending)
        due = policy.due(now, slots)
        policy.mark_sent(due)
        sent = set(due)
        assert all(t not in policy.pending for t in sent)
        assert [t for t in before if t not in sent] == policy.pending

    @given(policies, raw_tuples, st.integers(0, 20))
    def test_due_is_idempotent_without_mark_sent(self, name, tuples, now):
        policy = build(name)
        policy.on_answer(tuples, now=0)
        assert policy.due(now, 4) == policy.due(now, 4)


class TestRetractInterleavings:
    @given(raw_tuples, raw_tuples, st.integers(0, 20))
    @settings(max_examples=200)
    def test_revision_drops_retracted_tuples_from_pending(
        self, first, second, now
    ):
        # An answer revision replaces the pending queue wholesale: tuples
        # absent from the new answer must never be transmitted later.
        policy = ImmediatePolicy()
        policy.on_answer(first, now=0)
        policy.due(0, 2)  # peeking does not consume
        policy.on_answer(second, now=now)
        alive = {t for t in second if t.end >= now}
        assert set(policy.pending) == alive
        assert set(policy.due(now, None)) <= alive

    @given(policies, raw_tuples, st.integers(1, 4), st.integers(0, 20))
    @settings(max_examples=200)
    def test_partial_send_then_revision_never_duplicates(
        self, name, tuples, slots, now
    ):
        policy = build(name)
        policy.on_answer(tuples, now=0)
        sent = policy.due(0, slots)
        policy.mark_sent(sent)
        # The same answer is recomputed (no change): the policy re-queues
        # everything still alive — the server's delivered-set, not the
        # policy, is what deduplicates. Pending must equal the alive set.
        policy.on_answer(tuples, now=now)
        assert set(policy.pending) == {t for t in tuples if t.end >= now}

    def test_expired_tuples_filtered_on_answer(self):
        policy = DelayedPolicy()
        policy.on_answer(
            [make_tuple("a", 0, 2), make_tuple("b", 5, 5)], now=4
        )
        assert [t.values for t in policy.pending] == [("b",)]


class TestPeriodicBoundaries:
    def test_only_fires_on_period_ticks(self):
        policy = PeriodicPolicy(3)
        policy.on_answer([make_tuple("a", 0, 9)], now=0)
        assert policy.due(1, None) == []
        assert policy.due(2, None) == []
        assert len(policy.due(3, None)) == 1

    def test_lookahead_covers_the_next_period(self):
        policy = PeriodicPolicy(4)
        policy.on_answer(
            [make_tuple("soon", 7, 5), make_tuple("far", 9, 5)], now=0
        )
        due = policy.due(4, None)  # window [4, 8]: "soon" only
        assert [t.values for t in due] == [("soon",)]

    def test_delayed_sends_at_begin_not_before(self):
        policy = DelayedPolicy()
        policy.on_answer([make_tuple("a", 5, 5)], now=0)
        assert policy.due(4, None) == []
        assert len(policy.due(5, None)) == 1
