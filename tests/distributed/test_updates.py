"""Tests for the fault-tolerant position-update pipeline.

Sequence numbers, acks, retry-with-backoff, idempotent server ingest,
and extrapolation of late deliveries.
"""

import pytest

from repro.core import MostDatabase, ObjectClass
from repro.distributed import (
    FaultPlan,
    LinkFaults,
    MotionReporter,
    MobileNode,
    SimNetwork,
    UpdateServer,
)
from repro.errors import DistributedError, SchemaError
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.temporal import SimulationClock


def make_world(faults=None, n_nodes=1):
    """One server database + network + n mobile nodes, sharing a clock."""
    clock = SimulationClock()
    db = MostDatabase(clock)
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    net = SimNetwork(clock, faults=faults)
    server = UpdateServer(db, net)
    nodes, reporters = [], []
    for i in range(n_nodes):
        object_id = f"car-{i}"
        db.add_moving_object("cars", object_id, Point(0.0, 0.0))
        db.track(object_id)
        node = MobileNode(
            object_id, net, linear_moving_point(Point(0, 0), Point(0, 0))
        )
        nodes.append(node)
        reporters.append(MotionReporter(node, object_id=object_id))
    return clock, db, net, server, nodes, reporters


def position(db, object_id):
    obj = db.get(object_id)
    names = obj.object_class.position_attributes
    now = db.clock.now
    return Point(*(obj.dynamic_attribute(n).value_at(now) for n in names))


class TestHappyPath:
    def test_report_applies_and_acks(self):
        clock, db, net, server, nodes, (rep,) = make_world(FaultPlan(seed=0))
        rep.report(Point(2.0, 0.0), position=Point(1.0, 1.0))
        assert rep.in_flight == 1
        clock.tick()  # update delivered
        assert server.applied == 1
        clock.tick()  # ack delivered
        assert rep.in_flight == 0
        assert rep.acked_through == 0
        assert db.last_ingested_seq("car-0") == 0

    def test_position_extrapolated_to_apply_time(self):
        clock, db, net, server, nodes, (rep,) = make_world(
            FaultPlan(seed=0, default=LinkFaults(delay=(4, 4)))
        )
        clock.tick(2)
        rep.report(Point(3.0, 0.0), position=Point(10.0, 0.0))
        clock.tick(4)  # delivered at t=6, measured at t=2
        assert server.applied == 1
        # p0 + v * (6 - 2) = 10 + 12 = 22, then value_at(now=6) adds 0.
        assert position(db, "car-0") == Point(22.0, 0.0)
        assert db.last_update_time("car-0") == 6

    def test_synchronous_network_works_too(self):
        clock, db, net, server, nodes, (rep,) = make_world(faults=None)
        rep.report(Point(1.0, 1.0))
        assert server.applied == 1  # same-tick delivery without a plan
        assert rep.in_flight == 0  # ack came straight back


class TestIdempotence:
    def test_duplicate_delivery_rejected_but_acked(self):
        clock, db, net, server, nodes, (rep,) = make_world(
            FaultPlan(seed=0, default=LinkFaults(duplicate=1.0))
        )
        rep.report(Point(1.0, 0.0))
        clock.tick()
        assert server.applied == 1
        assert server.rejected == 1
        assert db.ingest_rejected == 1
        clock.tick()
        assert rep.in_flight == 0

    def test_out_of_order_straggler_rejected(self):
        clock, db, net, server, nodes, (rep,) = make_world(FaultPlan(seed=0))
        db2_clock_check = clock.now
        assert db2_clock_check == 0
        # Deliver seq 1 first by hand-feeding the server, then seq 0.
        u0 = rep.report(Point(1.0, 0.0))
        u1 = rep.report(Point(2.0, 0.0))
        assert db.ingest_motion(
            u1.object_id, u1.seq, u1.velocity, u1.position, u1.measured_at
        )
        assert not db.ingest_motion(
            u0.object_id, u0.seq, u0.velocity, u0.position, u0.measured_at
        )
        assert db.last_ingested_seq("car-0") == 1
        # The newer motion vector is in force.
        clock_now = clock.now
        obj = db.get("car-0")
        assert obj.dynamic_attribute("x_position").function.value(1.0) == 2.0
        assert clock_now == 0

    def test_ingest_rejects_future_measurement(self):
        clock, db, net, server, nodes, reporters = make_world()
        with pytest.raises(SchemaError):
            db.ingest_motion("car-0", 5, Point(1, 0), Point(0, 0), 99)

    def test_ingest_dimension_mismatch(self):
        clock, db, net, server, nodes, reporters = make_world()
        with pytest.raises(SchemaError):
            db.ingest_motion("car-0", 5, Point(1, 0, 0), Point(0, 0, 0), 0)


class TestRetry:
    def test_retries_until_heal_then_converges(self):
        clock, db, net, server, nodes, (rep,) = make_world(
            FaultPlan(seed=3, default=LinkFaults(drop=1.0), heal_at=10)
        )
        rep.report(Point(5.0, 0.0), position=Point(0.0, 0.0))
        clock.tick(8)
        assert server.applied == 0
        assert rep.retransmissions > 0
        clock.tick(12)  # healed: a retry gets through, ack drains
        assert server.applied == 1
        assert rep.in_flight == 0
        # The server's trajectory matches the node's ground truth.
        assert position(db, "car-0") == nodes[0].position_now()

    def test_backoff_spaces_out_retries(self):
        clock, db, net, server, nodes, (rep,) = make_world(
            FaultPlan(seed=3, default=LinkFaults(drop=1.0))
        )
        rep.report(Point(1.0, 0.0))
        sent_before = net.stats.attempted
        clock.tick(20)
        attempts = net.stats.attempted - sent_before
        # 20 ticks of flat retry_after=2 would mean ~10 sends; backoff
        # (2, 4, 8, 8, ...) caps it well below that.
        assert 2 <= attempts <= 6

    def test_lost_ack_triggers_rerequest_and_reack(self):
        clock, db, net, server, nodes, (rep,) = make_world(
            FaultPlan(
                seed=3,
                links={("server", "car-0"): LinkFaults(drop=1.0)},
                heal_at=6,
            )
        )
        rep.report(Point(1.0, 0.0))
        clock.tick()
        assert server.applied == 1  # update got through
        clock.tick(2)
        assert rep.in_flight == 1  # but the ack was lost
        clock.tick(10)  # healed: retry -> duplicate rejected -> ack lands
        assert server.rejected >= 1
        assert rep.in_flight == 0

    def test_reconnect_reannounces_current_motion(self):
        clock, db, net, server, nodes, (rep,) = make_world(
            FaultPlan(seed=3, crashes={"car-0": [(2, 6)]})
        )
        rep.report(Point(1.0, 0.0), position=Point(0.0, 0.0))
        clock.tick(2)
        assert server.applied == 1
        # Motion changes while the node's radio is down: the send is
        # lost at the source but the update stays unacked.
        rep.report(Point(0.0, 2.0))
        clock.tick(10)
        # After restart, retries + the re-announce converge the server.
        assert rep.in_flight == 0
        assert position(db, "car-0") == nodes[0].position_now()
        obj = db.get("car-0")
        assert obj.dynamic_attribute("y_position").function.value(1.0) == 2.0

    def test_reporter_validation(self):
        clock, db, net, server, nodes, reporters = make_world()
        node = MobileNode(
            "x", net, linear_moving_point(Point(0, 0), Point(0, 0))
        )
        with pytest.raises(DistributedError):
            MotionReporter(node, retry_after=0)
        with pytest.raises(DistributedError):
            MotionReporter(node, backoff=0.5)


class TestStalenessAccounting:
    def test_untracked_objects_always_fresh(self):
        clock, db, net, server, nodes, reporters = make_world()
        db.add_moving_object("cars", "beacon", Point(5.0, 5.0))
        clock.tick(30)
        assert db.staleness("beacon") == 0
        assert not db.is_tracked("beacon")

    def test_tracked_staleness_grows_and_resets(self):
        clock, db, net, server, nodes, (rep,) = make_world(FaultPlan(seed=0))
        clock.tick(4)
        assert db.staleness("car-0") == 4
        rep.report(Point(1.0, 0.0))
        clock.tick()  # delivery
        assert db.staleness("car-0") == 0
        assert db.last_update_time("car-0") == 5

    def test_ingest_marks_tracked(self):
        clock, db, net, server, nodes, reporters = make_world()
        db.add_moving_object("cars", "late", Point(0.0, 0.0))
        assert not db.is_tracked("late")
        db.ingest_motion("late", 0, Point(1, 0), Point(0, 0), 0)
        assert db.is_tracked("late")

    def test_unknown_object_raises(self):
        clock, db, net, server, nodes, reporters = make_world()
        with pytest.raises(SchemaError):
            db.staleness("ghost")
        with pytest.raises(SchemaError):
            db.track("ghost")
