"""Tests for distributed FTL query processing (section 5.3 end to end)."""

import pytest

from repro.distributed import (
    MobileNode,
    QueryKind,
    SimNetwork,
    process_distributed,
)
from repro.errors import DistributedError
from repro.ftl import parse_query
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.spatial import Ball, Polygon

REGIONS = {
    "DEST": Ball(Point(50.0, 0.0), 10.0),
    "ZONE": Polygon.rectangle(-5, -5, 25, 5),
}


@pytest.fixture
def fleet():
    net = SimNetwork()
    me = MobileNode("me", net, linear_moving_point(Point(30, 0), Point(2, 0)))
    others = [
        MobileNode("near", net, linear_moving_point(Point(40, 0), Point(1, 0))),
        MobileNode("away", net, linear_moving_point(Point(0, 100), Point(0, 1))),
        MobileNode("slowpoke", net, linear_moving_point(Point(-200, 0), Point(1, 0))),
    ]
    return net, me, others


class TestSelfReferencing:
    def test_local_and_free(self, fleet):
        net, me, others = fleet
        q = parse_query(
            "RETRIEVE v FROM vehicles v WHERE EVENTUALLY WITHIN 10 INSIDE(v, DEST)"
        )
        result = process_distributed(
            me, others, q, horizon=30, regions=REGIONS, issuer_var="v"
        )
        assert result.kind == QueryKind.SELF_REFERENCING
        assert result.answer == {("me",)}  # reaches x=40 by t=5
        assert result.messages == 0
        assert result.bytes_sent == 0


class TestObjectQuery:
    def test_broadcast_and_local_evaluation(self, fleet):
        net, me, others = fleet
        q = parse_query(
            "RETRIEVE v FROM vehicles v WHERE EVENTUALLY WITHIN 10 INSIDE(v, DEST)"
        )
        result = process_distributed(me, others, q, horizon=30, regions=REGIONS)
        assert result.kind == QueryKind.OBJECT
        assert result.answer == {("near",)}
        # 3 query messages + 1 reply.
        assert result.messages == 4

    def test_disconnected_node_excluded(self, fleet):
        net, me, others = fleet
        net.set_disconnections("near", [(0, 100)])
        q = parse_query(
            "RETRIEVE v FROM vehicles v WHERE EVENTUALLY WITHIN 10 INSIDE(v, DEST)"
        )
        result = process_distributed(me, others, q, horizon=30, regions=REGIONS)
        assert result.answer == set()

    def test_answer_depends_on_entry_time(self, fleet):
        net, me, others = fleet
        q = parse_query(
            "RETRIEVE v FROM vehicles v WHERE EVENTUALLY WITHIN 10 INSIDE(v, DEST)"
        )
        assert process_distributed(
            me, others, q, horizon=300, regions=REGIONS
        ).answer == {("near",)}
        net.clock.tick(235)  # slowpoke now at x=35; reaches DEST within 10
        late = process_distributed(me, others, q, horizon=300, regions=REGIONS)
        assert ("slowpoke",) in late.answer


class TestRelationshipQuery:
    def test_centralised_pairs(self, fleet):
        net, me, others = fleet
        q = parse_query(
            "RETRIEVE a, b FROM vehicles a, vehicles b "
            "WHERE a.x_position < b.x_position AND ALWAYS FOR 5 DIST(a, b) <= 15"
        )
        result = process_distributed(me, others, q, horizon=20, regions=REGIONS)
        assert result.kind == QueryKind.RELATIONSHIP
        # me (x=30, v=2) and near (x=40, v=1): gap 10 shrinking -> within 15
        # for the next 5 ticks; ordering constraint keeps one orientation.
        assert ("me", "near") in result.answer
        # 3 object transfers to the coordinator.
        assert result.messages == 3

    def test_relationship_with_sphere(self, fleet):
        net, me, others = fleet
        q = parse_query(
            "RETRIEVE a, b FROM vehicles a, vehicles b WHERE WITHIN_SPHERE(8, a, b)"
        )
        result = process_distributed(me, others, q, horizon=20, regions=REGIONS)
        assert result.kind == QueryKind.RELATIONSHIP
        assert ("me", "me") in result.answer  # trivially co-located


class TestValidation:
    def test_multi_class_rejected(self, fleet):
        net, me, others = fleet
        q = parse_query(
            "RETRIEVE a FROM cars a, planes p WHERE DIST(a, p) <= 1"
        )
        with pytest.raises(DistributedError):
            process_distributed(me, others, q, horizon=5, regions=REGIONS)
