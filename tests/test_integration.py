"""End-to-end integration tests crossing subsystem boundaries.

Each test stitches several packages together the way a downstream user
would: model + language + index + bridge + distributed layers.
"""

import pytest

from repro import (
    ContinuousQuery,
    DynamicAttribute,
    InstantaneousQuery,
    MostDatabase,
    ObjectClass,
    PersistentQuery,
    TemporalTrigger,
    parse_query,
)
from repro.bridge import MostOnDbms
from repro.dbms import Column, Database, INT, STRING
from repro.distributed import (
    DelayedPolicy,
    ImmediatePolicy,
    simulate_transmission,
)
from repro.geometry import Point
from repro.index import DynamicAttributeIndex, MovingObjectIndex2D
from repro.motion import LinearFunction
from repro.spatial import Ball, Box, Polygon
from repro.temporal import SimulationClock
from repro.workloads import air_traffic_scenario, motel_scenario, random_fleet


class TestAirportScenario:
    """The paper's query Q, end to end, both evaluators."""

    def test_query_q_shape(self):
        world = air_traffic_scenario(n_aircraft=15, region=200, speed=10, seed=3)
        q = parse_query(world.QUERY)
        iq = InstantaneousQuery(q, horizon=10)
        interval = iq.evaluate(world.db, method="interval")
        naive = iq.evaluate(world.db, method="naive")
        assert interval == naive

    def test_tentative_answer_changes_after_update(self):
        world = air_traffic_scenario(n_aircraft=15, region=120, speed=10, seed=3)
        db = world.db
        q = parse_query(world.QUERY)
        iq = InstantaneousQuery(q, horizon=10)
        before = iq.evaluate(db)
        assert before, "scenario should have inbound aircraft"
        plane = sorted(before)[0][0]
        db.update_motion(plane, Point(10, 0), position=Point(5000, 5000))
        after = iq.evaluate(db)
        assert plane not in {inst[0] for inst in after}


class TestMotelScenario:
    def test_continuous_query_against_spatial_index(self):
        """Answer(CQ) from FTL must agree with the §4 spatial index."""
        world = motel_scenario(n_motels=30, road_length=120, seed=8)
        db = world.db
        cq = ContinuousQuery(
            db,
            parse_query("RETRIEVE m FROM motels m, cars c WHERE DIST(c, m) <= 5"),
            horizon=100,
        )
        # Index every motel's x coordinate and check one time slice.
        index = MovingObjectIndex2D(
            epoch=0, horizon=100, bounds=Box.from_bounds((-50, 250), (-50, 50))
        )
        for motel_id in world.motel_ids:
            index.insert(motel_id, db.get(motel_id).moving_point())
        db.clock.tick(40)
        car_pos = db.get(world.car_id).position_at(40)
        probe = Box.from_bounds(
            (car_pos.x - 5, car_pos.x + 5), (car_pos.y - 5, car_pos.y + 5)
        )
        index_hits = index.objects_in_rectangle(probe, at_time=40)
        ftl_hits = {inst[0] for inst in cq.current()}
        # The circle of radius 5 is inside the 10x10 box: FTL ⊆ index box.
        assert ftl_hits <= index_hits


class TestBridgeRoundTrip:
    def test_most_layer_matches_model_layer(self):
        """The same world queried through the MOST model and through the
        DBMS bridge must agree."""
        # Model layer.
        db = MostDatabase()
        db.create_class(ObjectClass("cars", spatial_dimensions=2))
        positions = [(0.0, 1.0), (50.0, -2.0), (-30.0, 0.5)]
        for i, (x, vx) in enumerate(positions):
            db.add_moving_object("cars", i, Point(x, 0.0), Point(vx, 0.0))

        # Bridge layer over the relational substrate, same clock.
        rdb = Database(clock=db.clock)
        layer = MostOnDbms(rdb)
        layer.create_table(
            "cars", static_columns=[Column("id", INT)], dynamic_attributes=["x"], key="id"
        )
        for i, (x, vx) in enumerate(positions):
            layer.insert("cars", {"id": i}, {"x": DynamicAttribute.linear(x, vx)})

        db.clock.tick(7)
        model_hits = {
            obj.object_id
            for obj in db.objects_of("cars")
            if obj.value_at("x_position", 7) >= 10
        }
        bridge_hits = set(
            layer.query("SELECT id FROM cars WHERE x >= 10").column("id")
        )
        assert model_hits == bridge_hits

    def test_bridge_index_agrees_with_postfilter(self):
        rdb = Database(clock=SimulationClock())
        layer = MostOnDbms(rdb)
        layer.create_table(
            "t", static_columns=[Column("id", INT)], dynamic_attributes=["a"], key="id"
        )
        index = DynamicAttributeIndex(0, 500, -1000, 1000)
        for i in range(40):
            triple = DynamicAttribute.linear(float(i - 20), float(i % 5 - 2))
            layer.insert("t", {"id": i}, {"a": triple})
            index.insert(i, triple)
        rdb.clock.tick(9)
        plain = set(layer.query("SELECT id FROM t WHERE a >= 3").column("id"))
        layer.register_index("t", "a", index)
        indexed = set(layer.query("SELECT id FROM t WHERE a >= 3").column("id"))
        assert plain == indexed


class TestTriggerToTransmission:
    def test_full_pipeline(self):
        """Continuous query → Answer(CQ) → transmission to a client."""
        db = MostDatabase()
        db.create_class(ObjectClass("cars", spatial_dimensions=2))
        db.define_region("ZONE", Ball(Point(0, 0), 10))
        for i in range(6):
            db.add_moving_object(
                "cars", f"c{i}", Point(-20.0 - 5 * i, 0.0), Point(1.0, 0.0)
            )
        cq = ContinuousQuery(
            db,
            parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, ZONE)"),
            horizon=80,
        )
        answer = cq.answer_tuples()
        assert len(answer) == 6  # each car sweeps through the zone once
        for policy in (ImmediatePolicy(), DelayedPolicy()):
            report = simulate_transmission(policy, answer, horizon=80)
            assert report.staleness == 0
            assert report.tuples_sent == 6


class TestPersistentVsContinuousVsInstantaneous:
    def test_three_types_diverge_on_updates(self):
        """A richer version of the section 2.3 discriminator."""
        db = MostDatabase()
        db.create_class(ObjectClass("cars", spatial_dimensions=2))
        db.define_region("P", Polygon.rectangle(0, 0, 10, 10))
        db.add_moving_object("cars", "o", Point(-100, 5), Point(0, 0))

        enter_p = parse_query(
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 20 INSIDE(o, P)"
        )
        iq = InstantaneousQuery(enter_p, horizon=40)
        cq = ContinuousQuery(db, enter_p, horizon=40)
        pq = PersistentQuery(db, enter_p, horizon=40)

        assert iq.evaluate(db) == set()
        assert cq.current() == set()
        assert pq.current() == set()

        # Teleport into P at t=5: every query type should now see it.
        db.clock.tick(5)
        db.update_motion("o", Point(0, 0), position=Point(5, 5))
        assert iq.evaluate(db) == {("o",)}
        assert cq.current() == {("o",)}
        # Persistent: anchored at 0; at t=0 the recorded history now shows
        # o inside P at t=5, within the 20-tick window.
        assert pq.current() == {("o",)}

    def test_trigger_pipeline_counts(self):
        db = MostDatabase()
        db.create_class(ObjectClass("cars", spatial_dimensions=2))
        db.define_region("P", Polygon.rectangle(0, 0, 10, 10))
        ids = []
        for i in range(4):
            db.add_moving_object(
                "cars", f"c{i}", Point(-2.0 * (i + 1), 5.0), Point(1.0, 0.0)
            )
            ids.append(f"c{i}")
        cq = ContinuousQuery(
            db, parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)"), horizon=60
        )
        entered = []
        TemporalTrigger(db, cq, on_enter=entered.append)
        db.clock.tick(30)
        assert sorted(i[0] for i in entered) == ids


class TestScale:
    def test_moderate_fleet_end_to_end(self):
        db = MostDatabase()
        random_fleet(db, 120, area=(0, 500), speed_range=(-3, 3), seed=1)
        db.define_region("P", Polygon.rectangle(200, 200, 320, 320))
        q = parse_query(
            "RETRIEVE o FROM objects o WHERE EVENTUALLY WITHIN 30 INSIDE(o, P)"
        )
        answer = InstantaneousQuery(q, horizon=60).answer(db)
        # Sanity: all returned ids exist, intervals are within the window.
        for t in answer.tuples:
            assert db.get(t.values[0]) is not None
            assert 0 <= t.begin <= t.end <= 60
