"""Differential chaos suite: the PR's acceptance criteria.

Each seed builds a different fault mix (drop rate, delay window,
duplication, reordering, node crash schedule).  For every one of them:

* the healed-and-drained answer must match the fault-free twin
  tuple-for-tuple (:attr:`ChaosResult.converged`), and
* at no tick may the degraded answer have emitted a tuple depending on
  an attribute older than the staleness bound
  (:attr:`RunResult.violations` == 0).
"""

import pytest

from repro.workloads import ChaosConfig, chaos_sweep, run_chaos
from repro.workloads.chaos import fault_plan, update_schedule

N_SCHEDULES = 120


class TestDifferentialSuite:
    @pytest.mark.parametrize("seed", range(N_SCHEDULES))
    def test_converges_and_respects_staleness_bound(self, seed):
        (result,) = chaos_sweep([seed])
        assert result.faulty.drained, (
            f"seed {seed}: retries did not drain within "
            f"{result.config.max_drain} ticks past heal"
        )
        assert result.converged, (
            f"seed {seed}: healed answer diverged\n"
            f"  faulty-only: {sorted(result.faulty.answer - result.clean.answer)}\n"
            f"  clean-only:  {sorted(result.clean.answer - result.faulty.answer)}"
        )
        assert result.faulty.violations == 0, (
            f"seed {seed}: {result.faulty.violations} staleness-bound "
            "violations while degraded"
        )
        assert result.clean.violations == 0


class TestHarnessProperties:
    def test_deterministic(self):
        a = run_chaos(ChaosConfig(seed=11))
        b = run_chaos(ChaosConfig(seed=11))
        assert a.faulty.answer == b.faulty.answer
        assert a.faulty.messages == b.faulty.messages
        assert a.faulty.retransmissions == b.faulty.retransmissions

    def test_different_seeds_differ(self):
        traces = {
            run_chaos(ChaosConfig(seed=s)).faulty.messages for s in range(6)
        }
        assert len(traces) > 1

    def test_faults_actually_cost_messages(self):
        result = run_chaos(ChaosConfig(seed=2, drop=0.5))
        assert result.faulty.retransmissions > 0
        assert result.faulty.messages > result.clean.messages

    def test_clean_twin_never_retransmits(self):
        result = run_chaos(ChaosConfig(seed=5))
        assert result.clean.retransmissions == 0
        assert result.clean.ingest_rejected == 0

    def test_schedule_and_plan_are_seed_functions(self):
        config = ChaosConfig(seed=9)
        assert update_schedule(config) == update_schedule(config)
        a, b = fault_plan(config), fault_plan(config)
        for tick in range(config.run_ticks):
            for i in range(config.n_trackers):
                node = f"tracker-{i}"
                assert a.crashed(node, tick) == b.crashed(node, tick)


@pytest.mark.chaos
class TestChaosSmoke:
    """The CI smoke job: three representative fault schedules."""

    @pytest.mark.parametrize(
        "config",
        [
            ChaosConfig(seed=101, drop=0.5, delay=(0, 4), crash=True),
            ChaosConfig(seed=202, drop=0.2, duplicate=0.4, reorder=0.5),
            ChaosConfig(seed=303, drop=0.0, delay=(2, 6), crash=False),
        ],
        ids=["lossy-crash", "dup-reorder", "slow-links"],
    )
    def test_schedule(self, config):
        result = run_chaos(config)
        assert result.ok, (
            f"chaos smoke failed: converged={result.converged} "
            f"drained={result.faulty.drained} "
            f"violations={result.faulty.violations}"
        )
