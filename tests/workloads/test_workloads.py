"""Tests for workload generators and scenarios."""

import pytest

from repro.core import MostDatabase
from repro.errors import QueryError
from repro.ftl import parse_query
from repro.core.queries import InstantaneousQuery
from repro.workloads import (
    air_traffic_scenario,
    convoy_scenario,
    motel_scenario,
    motion_update_process,
    random_attributes,
    random_fleet,
    random_movers,
)


class TestGenerators:
    def test_random_fleet_deterministic(self):
        db1, db2 = MostDatabase(), MostDatabase()
        ids1 = random_fleet(db1, 10, seed=7)
        ids2 = random_fleet(db2, 10, seed=7)
        assert ids1 == ids2
        for i in ids1:
            assert db1.get(i).position_at(5) == db2.get(i).position_at(5)

    def test_random_fleet_different_seeds_differ(self):
        db1, db2 = MostDatabase(), MostDatabase()
        random_fleet(db1, 5, seed=1)
        random_fleet(db2, 5, seed=2)
        assert any(
            db1.get(f"objects-{i}").position_at(0)
            != db2.get(f"objects-{i}").position_at(0)
            for i in range(5)
        )

    def test_random_fleet_static_attributes(self):
        db = MostDatabase()
        random_fleet(db, 5, static_attributes={"price": (10, 20)}, seed=0)
        for obj in db.objects_of("objects"):
            assert 10 <= obj.static_value("price") <= 20

    def test_random_fleet_reuses_class(self):
        db = MostDatabase()
        random_fleet(db, 2, seed=0)
        db2_ids = random_fleet(db, 0, seed=0)
        assert db2_ids == []

    def test_random_movers_and_attributes(self):
        movers = random_movers(5, seed=3)
        attrs = random_attributes(5, seed=3)
        assert len(movers) == len(attrs) == 5
        assert movers[0][1].is_linear
        assert attrs[0][1].function.is_linear

    def test_update_process(self):
        db = MostDatabase()
        ids = random_fleet(db, 10, seed=0)
        updates = list(
            motion_update_process(db, ids, ticks=20, change_probability=0.3, seed=1)
        )
        assert db.clock.now == 20
        assert len(updates) > 0
        assert len(db.log) == 2 * len(updates)  # two axes per vector change
        assert all(1 <= t <= 20 for t, _ in updates)

    def test_update_process_zero_probability(self):
        db = MostDatabase()
        ids = random_fleet(db, 3, seed=0)
        assert list(
            motion_update_process(db, ids, ticks=5, change_probability=0.0)
        ) == []

    def test_update_process_bad_probability(self):
        db = MostDatabase()
        with pytest.raises(QueryError):
            list(motion_update_process(db, [], ticks=1, change_probability=2))


class TestScenarios:
    def test_motel_world(self):
        world = motel_scenario(n_motels=10, seed=0)
        assert len(world.motel_ids) == 10
        car = world.db.get(world.car_id)
        assert car.moving_point().velocity.x == 1.0
        for m in world.motel_ids:
            assert world.db.get(m).moving_point().is_static

    def test_motel_query_runs(self):
        world = motel_scenario(n_motels=15, seed=2)
        q = parse_query(MotelQuery := world.QUERY)
        answer = InstantaneousQuery(q, horizon=50).answer(world.db)
        # The car passes motels over time: somebody is eventually close.
        assert len(answer.tuples) > 0

    def test_air_traffic_world(self):
        world = air_traffic_scenario(n_aircraft=12, seed=0)
        assert len(world.aircraft_ids) == 12
        q = parse_query(world.QUERY)
        result = InstantaneousQuery(q, horizon=10).evaluate(world.db)
        # Result is a set of (aircraft, airport) pairs; may be empty but
        # must only contain known aircraft.
        for inst in result:
            assert inst[0] in world.aircraft_ids

    def test_convoy_world(self):
        world = convoy_scenario(n_vehicles=8, straggler_every=4, seed=0)
        assert len(world.vehicles) == 8
        world.network.clock.tick(10)
        # Stragglers drift away from the leader's lane (y != 0).
        drifters = [
            v for v in world.vehicles if abs(v.position_now().y) > 1
        ]
        assert len(drifters) == 2

    def test_convoy_no_stragglers(self):
        world = convoy_scenario(n_vehicles=4, straggler_every=0)
        world.network.clock.tick(5)
        assert all(v.position_now().y == 0 for v in world.vehicles)
