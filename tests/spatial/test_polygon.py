"""Unit tests for polygons."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpatialError
from repro.spatial import Point, Polygon


def square() -> Polygon:
    return Polygon.rectangle(0, 0, 10, 10)


def l_shape() -> Polygon:
    """Non-convex L: a 10x10 square with the top-right 5x5 corner removed."""
    return Polygon(
        [
            Point(0, 0),
            Point(10, 0),
            Point(10, 5),
            Point(5, 5),
            Point(5, 10),
            Point(0, 10),
        ]
    )


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(SpatialError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_non_2d_rejected(self):
        with pytest.raises(SpatialError):
            Polygon([Point(0, 0, 0), Point(1, 0, 0), Point(0, 1, 0)])

    def test_duplicate_vertices_rejected(self):
        with pytest.raises(SpatialError):
            Polygon([Point(0, 0), Point(1, 0), Point(0, 0)])

    def test_degenerate_rejected(self):
        with pytest.raises(SpatialError):
            Polygon([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_orientation_normalised(self):
        cw = Polygon([Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)])
        ccw = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])
        assert cw.area == ccw.area == 1
        assert cw.is_convex and ccw.is_convex

    def test_rectangle_factory_validation(self):
        with pytest.raises(SpatialError):
            Polygon.rectangle(5, 0, 5, 10)

    def test_regular_factory(self):
        hexagon = Polygon.regular(Point(0, 0), 2, 6)
        assert len(hexagon.vertices) == 6
        assert hexagon.is_convex
        assert hexagon.contains(Point(0, 0))

    def test_regular_validation(self):
        with pytest.raises(SpatialError):
            Polygon.regular(Point(0, 0), 1, 2)
        with pytest.raises(SpatialError):
            Polygon.regular(Point(0, 0), 0, 5)


class TestMeasures:
    def test_area(self):
        assert square().area == 100
        assert l_shape().area == 75

    def test_centroid_square(self):
        assert square().centroid.is_close(Point(5, 5))

    def test_convexity(self):
        assert square().is_convex
        assert not l_shape().is_convex

    def test_bounding_box(self):
        assert l_shape().bounding_box() == (0, 0, 10, 10)

    def test_edges_ring(self):
        edges = square().edges
        assert len(edges) == 4
        assert edges[0].b == edges[1].a

    def test_edge_side_of(self):
        edge = square().edges[0]  # (0,0)->(10,0)
        assert edge.side_of(Point(5, 1)) > 0
        assert edge.side_of(Point(5, -1)) < 0
        assert edge.side_of(Point(5, 0)) == 0


class TestContainment:
    def test_interior(self):
        assert square().contains(Point(5, 5))

    def test_exterior(self):
        assert not square().contains(Point(15, 5))

    def test_boundary_inclusive(self):
        assert square().contains(Point(0, 5))
        assert square().contains(Point(0, 0))
        assert square().contains(Point(10, 10))

    def test_l_shape_notch(self):
        p = l_shape()
        assert p.contains(Point(2, 2))
        assert p.contains(Point(2, 8))
        assert p.contains(Point(8, 2))
        assert not p.contains(Point(8, 8))  # removed corner

    def test_on_boundary(self):
        assert square().on_boundary(Point(5, 0))
        assert not square().on_boundary(Point(5, 1))

    def test_requires_2d_point(self):
        with pytest.raises(SpatialError):
            square().contains(Point(1, 2, 3))

    @given(
        st.floats(min_value=-20, max_value=20, allow_nan=False),
        st.floats(min_value=-20, max_value=20, allow_nan=False),
    )
    def test_containment_matches_bbox_necessity(self, x, y):
        # Inside implies inside the bounding box.
        p = l_shape()
        if p.contains(Point(x, y)):
            x0, y0, x1, y1 = p.bounding_box()
            # Boundary tolerance of on_boundary() allows sub-epsilon slack.
            eps = 1e-9
            assert x0 - eps <= x <= x1 + eps and y0 - eps <= y <= y1 + eps

    @given(
        st.floats(min_value=0.1, max_value=9.9),
        st.floats(min_value=0.1, max_value=9.9),
    )
    def test_square_containment_is_coordinatewise(self, x, y):
        assert square().contains(Point(x, y))


class TestTransforms:
    def test_translated(self):
        moved = square().translated(Point(100, 0))
        assert moved.contains(Point(105, 5))
        assert not moved.contains(Point(5, 5))

    def test_eq_hash(self):
        assert square() == Polygon.rectangle(0, 0, 10, 10)
        assert hash(square()) == hash(Polygon.rectangle(0, 0, 10, 10))
        assert square() != l_shape()
