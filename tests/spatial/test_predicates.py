"""Unit + property tests for instantaneous spatial predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpatialError
from repro.spatial import (
    Ball,
    Point,
    Polygon,
    dist,
    enclosing_ball,
    inside,
    outside,
    within_a_sphere,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
points_2d = st.builds(Point, coords, coords)
points_3d = st.builds(Point, coords, coords, coords)


class TestInsideOutside:
    def test_polygon(self):
        p = Polygon.rectangle(0, 0, 10, 10)
        assert inside(Point(5, 5), p)
        assert outside(Point(50, 5), p)
        assert inside(Point(5, 5), p) != outside(Point(5, 5), p)

    def test_ball(self):
        b = Ball(Point(0, 0), 2)
        assert inside(Point(1, 1), b)
        assert outside(Point(3, 0), b)

    def test_dist(self):
        assert dist(Point(0, 0), Point(6, 8)) == 10


class TestEnclosingBall:
    def test_empty_rejected(self):
        with pytest.raises(SpatialError):
            enclosing_ball([])

    def test_single_point(self):
        b = enclosing_ball([Point(3, 4)])
        assert b.center == Point(3, 4)
        assert b.radius == 0

    def test_two_points(self):
        b = enclosing_ball([Point(0, 0), Point(4, 0)])
        assert b.center.is_close(Point(2, 0))
        assert b.radius == pytest.approx(2)

    def test_three_points_triangle(self):
        b = enclosing_ball([Point(0, 0), Point(4, 0), Point(2, 3)])
        for p in [Point(0, 0), Point(4, 0), Point(2, 3)]:
            assert b.contains(p)

    def test_obtuse_triangle_uses_diameter(self):
        # For an obtuse triangle the circumcircle is bigger than needed.
        b = enclosing_ball([Point(0, 0), Point(10, 0), Point(5, 0.1)])
        assert b.radius == pytest.approx(5, abs=0.01)

    def test_collinear(self):
        b = enclosing_ball([Point(0, 0), Point(2, 0), Point(6, 0)])
        assert b.radius == pytest.approx(3)

    def test_mixed_dims_rejected(self):
        with pytest.raises(SpatialError):
            enclosing_ball([Point(0, 0), Point(0, 0, 0)])

    def test_1d_rejected(self):
        with pytest.raises(SpatialError):
            enclosing_ball([Point(0.0,), Point(1.0,)])

    def test_3d_tetrahedron(self):
        pts = [
            Point(0, 0, 0),
            Point(2, 0, 0),
            Point(0, 2, 0),
            Point(0, 0, 2),
        ]
        b = enclosing_ball(pts)
        for p in pts:
            assert b.contains(p)

    @settings(max_examples=100)
    @given(st.lists(points_2d, min_size=1, max_size=12))
    def test_ball_contains_all_points_2d(self, pts):
        b = enclosing_ball(pts)
        assert all(b.contains(p) for p in pts)

    @settings(max_examples=60)
    @given(st.lists(points_3d, min_size=1, max_size=8))
    def test_ball_contains_all_points_3d(self, pts):
        b = enclosing_ball(pts)
        assert all(b.contains(p) for p in pts)

    @settings(max_examples=60)
    @given(st.lists(points_2d, min_size=2, max_size=10))
    def test_ball_not_larger_than_diameter_bound(self, pts):
        # Radius is at most half the diameter of the set times sqrt(2)
        # (loose sanity bound); and at least half the max pairwise distance.
        b = enclosing_ball(pts)
        max_d = max(p.distance_to(q) for p in pts for q in pts)
        # Ball.contains allows 1e-9 slack in squared distance (~3e-5 in
        # distance), so the radius may undershoot by that much.
        assert b.radius >= max_d / 2 - 1e-4
        assert b.radius <= max_d + 1e-6


class TestWithinASphere:
    def test_paper_signature(self):
        # WITHIN-A-SPHERE(r, o1, ..., ok)
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)]
        assert within_a_sphere(5, pts)
        assert not within_a_sphere(0.5, pts)

    def test_empty_and_singleton(self):
        assert within_a_sphere(0, [])
        assert within_a_sphere(0, [Point(9, 9)])

    def test_negative_radius(self):
        with pytest.raises(SpatialError):
            within_a_sphere(-1, [Point(0, 0)])

    @settings(max_examples=60)
    @given(st.lists(points_2d, min_size=1, max_size=8), st.floats(min_value=0, max_value=500))
    def test_monotone_in_radius(self, pts, r):
        if within_a_sphere(r, pts):
            assert within_a_sphere(r * 2 + 1, pts)
