"""Kinetic solvers with piecewise and nonlinear carriers (moving regions).

The section 1 scenario — a region that "moves as a rigid body having the
motion vector of the car" — where the car itself changes course.
"""

import pytest

from repro.motion import (
    LinearFunction,
    MovingPoint,
    PiecewiseLinearFunction,
    SinusoidFunction,
    linear_moving_point,
    static_point,
)
from repro.geometry import Point, Vector
from repro.spatial import Ball, Polygon, when_inside_ball, when_inside_polygon
from repro.temporal import Interval

WINDOW = Interval(0, 20)
SQUARE = Polygon.rectangle(0, 0, 10, 10)


def sample_check(iset, predicate, n=400, slack=0.06):
    step = WINDOW.duration / n
    for i in range(n + 1):
        t = WINDOW.start + i * step
        if iset.contains(t) != predicate(t):
            assert any(
                abs(t - iv.start) <= slack or abs(t - iv.end) <= slack
                for iv in iset.intervals
            ), f"mismatch at t={t}"


def moving_region_contains(carrier, region, point, t):
    delta = carrier.position_at(t) - carrier.position_at(WINDOW.start)
    return region.translated(delta).contains(point.position_at(t))


class TestPiecewiseCarrier:
    def test_polygon_rides_turning_car(self):
        # Car drives east for 10 ticks, then turns north.
        fx = PiecewiseLinearFunction([(0, 2), (10, 0)])
        fy = PiecewiseLinearFunction([(0, 0), (10, 2)])
        car = MovingPoint(Point(0.0, 0.0), [fx, fy])
        pedestrian = static_point(Point(15, 5))
        got = when_inside_polygon(pedestrian, SQUARE, WINDOW, carrier=car)
        # The square sweeps east covering x=15 during t in [2.5, 10]; after
        # the turn it moves north away from y=5 at t > 10... but the square
        # spans y in [0,10], so containment ends when y-lo passes 5 at 12.5.
        sample_check(
            got,
            lambda t: moving_region_contains(car, SQUARE, pedestrian, t),
        )
        assert got.contains(5)
        assert not got.contains(14)

    def test_ball_rides_turning_car(self):
        fx = PiecewiseLinearFunction([(0, 1), (8, -1)])
        car = MovingPoint(Point(0.0, 0.0), [fx, LinearFunction(0)])
        circle = Ball(Point(0.0, 0.0), 3.0)
        target = static_point(Point(6, 0))
        got = when_inside_ball(target, circle, WINDOW, carrier=car)
        sample_check(
            got,
            lambda t: moving_region_contains(car, circle, target, t),
        )
        # Car reaches x=8 at t=8 then returns: target at x=6 is covered
        # around t in [3, 13].
        assert got.contains(8)
        assert not got.contains(0)
        assert not got.contains(15)

    def test_both_point_and_carrier_piecewise(self):
        fx_car = PiecewiseLinearFunction([(0, 1), (10, 0)])
        car = MovingPoint(Point(0.0, 5.0), [fx_car, LinearFunction(0)])
        fx_p = PiecewiseLinearFunction([(0, 0), (5, 1)])
        walker = MovingPoint(Point(20.0, 5.0), [fx_p, LinearFunction(0)])
        got = when_inside_polygon(walker, SQUARE, WINDOW, carrier=car)
        sample_check(
            got,
            lambda t: moving_region_contains(car, SQUARE, walker, t),
        )


class TestNonlinearCarrier:
    def test_oscillating_carrier_falls_back_to_numeric(self):
        car = MovingPoint(
            Point(0.0, 0.0), [SinusoidFunction(12, 0.5), LinearFunction(0)]
        )
        target = static_point(Point(10, 5))
        got = when_inside_polygon(target, SQUARE, WINDOW, carrier=car)
        assert not got.is_empty
        sample_check(
            got,
            lambda t: moving_region_contains(car, SQUARE, target, t),
            slack=0.12,
        )

    def test_nonlinear_point_linear_carrier(self):
        walker = MovingPoint(
            Point(5.0, -15.0), [LinearFunction(0), SinusoidFunction(20, 0.4)]
        )
        car = linear_moving_point(Point(0, 0), Vector(0.0, 0.0))
        got = when_inside_polygon(walker, SQUARE, WINDOW, carrier=car)
        sample_check(
            got,
            lambda t: moving_region_contains(car, SQUARE, walker, t),
            slack=0.12,
        )
