"""Unit + property tests for the kinetic predicate solvers.

Every analytic solver is validated against dense time sampling of the
instantaneous predicate — the ground truth of section 3.3's per-state
semantics.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpatialError
from repro.motion import (
    LinearFunction,
    MovingPoint,
    PiecewiseLinearFunction,
    SinusoidFunction,
    linear_moving_point,
    static_point,
)
from repro.spatial import (
    Ball,
    Point,
    Polygon,
    Vector,
    when_below,
    when_dist_at_least,
    when_dist_at_most,
    when_inside_ball,
    when_inside_polygon,
    when_outside_polygon,
    when_true,
    when_value_in_range,
    when_within_sphere,
)
from repro.temporal import Interval, IntervalSet

WINDOW = Interval(0, 20)

# Subnormal floats are excluded: products like slope * t underflow to zero
# in the sampled predicate while exact arithmetic keeps them positive.
small = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_subnormal=False
)
# Velocities smaller than the geometric boundary tolerance move a point
# by less than containment noise over the window; snap them to zero.
velocities = st.floats(
    min_value=-5, max_value=5, allow_nan=False, allow_subnormal=False
).map(lambda v: 0.0 if abs(v) < 1e-6 else v)


def sample_check(
    iset: IntervalSet, predicate, window=WINDOW, n=400, slack=0.05,
    margin=None,
):
    """Every sampled time point must agree with the interval set, except
    within ``slack`` of an interval boundary (closed-interval edge noise).

    ``margin(t)`` (optional) returns True when the sampled predicate sits
    within floating-point noise of its threshold at ``t`` — e.g. two
    points whose distance is algebraically *equal* to the radius
    (tangency), where the solver's exact answer and the rounded sample
    legitimately disagree far from any interval boundary.
    """
    step = window.duration / n
    for i in range(n + 1):
        t = window.start + i * step
        expected = predicate(t)
        got = iset.contains(t)
        if got != expected:
            near_boundary = any(
                abs(t - iv.start) <= slack or abs(t - iv.end) <= slack
                for iv in iset.intervals
            )
            if not near_boundary and margin is not None and margin(t):
                continue
            assert near_boundary, f"mismatch at t={t}: got {got}, want {expected}"


class TestDistAtMost:
    def test_head_on_approach(self):
        a = linear_moving_point(Point(0, 0), Vector(1, 0))
        b = linear_moving_point(Point(10, 0), Vector(-1, 0))
        got = when_dist_at_most(a, b, 4, WINDOW)
        # distance 10 - 2t <= 4 for t in [3, 7]
        assert len(got) == 1
        assert got.intervals[0].start == pytest.approx(3)
        assert got.intervals[0].end == pytest.approx(7)

    def test_never_close(self):
        a = linear_moving_point(Point(0, 0), Vector(0, 1))
        b = linear_moving_point(Point(100, 0), Vector(0, 1))
        assert when_dist_at_most(a, b, 4, WINDOW).is_empty

    def test_parallel_always_close(self):
        a = linear_moving_point(Point(0, 0), Vector(2, 2))
        b = linear_moving_point(Point(1, 0), Vector(2, 2))
        got = when_dist_at_most(a, b, 4, WINDOW)
        assert got.intervals == (WINDOW,)

    def test_static_pair(self):
        a = static_point(Point(0, 0))
        b = static_point(Point(3, 0))
        assert when_dist_at_most(a, b, 4, WINDOW).intervals == (WINDOW,)
        assert when_dist_at_most(a, b, 2, WINDOW).is_empty

    def test_negative_radius_rejected(self):
        a = static_point(Point(0, 0))
        with pytest.raises(SpatialError):
            when_dist_at_most(a, a, -1, WINDOW)

    def test_piecewise_turnaround(self):
        # Approaches, then turns away at t=5.
        f = PiecewiseLinearFunction([(0, 2), (5, -2)])
        a = MovingPoint(Point(0.0, 0.0), [f, LinearFunction(0)])
        b = static_point(Point(10, 0))
        got = when_dist_at_most(a, b, 3, WINDOW)
        sample_check(
            got,
            lambda t: a.position_at(t).distance_to(b.position_at(t)) <= 3,
        )

    def test_nonlinear_fallback(self):
        a = MovingPoint(Point(0.0, 0.0), [SinusoidFunction(5, 0.7), LinearFunction(0)])
        b = static_point(Point(4, 0))
        got = when_dist_at_most(a, b, 2, WINDOW)
        assert not got.is_empty
        sample_check(
            got,
            lambda t: a.position_at(t).distance_to(b.position_at(t)) <= 2,
        )

    @settings(max_examples=80, deadline=None)
    @given(small, small, velocities, velocities, small, small, velocities,
           velocities, st.floats(min_value=0.1, max_value=15))
    def test_matches_sampling(self, ax, ay, avx, avy, bx, by, bvx, bvy, r):
        a = linear_moving_point(Point(ax, ay), Vector(avx, avy))
        b = linear_moving_point(Point(bx, by), Vector(bvx, bvy))
        got = when_dist_at_most(a, b, r, WINDOW)

        def dist(t):
            return a.position_at(t).distance_to(b.position_at(t))

        sample_check(
            got,
            lambda t: dist(t) <= r,
            margin=lambda t: abs(dist(t) - r) <= 1e-9 * max(1.0, r),
        )


class TestDistAtLeast:
    def test_moving_apart(self):
        a = linear_moving_point(Point(0, 0), Vector(-1, 0))
        b = linear_moving_point(Point(2, 0), Vector(1, 0))
        got = when_dist_at_least(a, b, 10, WINDOW)
        # distance 2 + 2t >= 10 at t >= 4
        assert got.intervals[0].start == pytest.approx(4)
        assert got.intervals[0].end == 20

    def test_complementary_to_at_most(self):
        a = linear_moving_point(Point(0, 0), Vector(1, 0))
        b = linear_moving_point(Point(10, 0), Vector(-1, 0))
        close = when_dist_at_most(a, b, 4, WINDOW)
        far = when_dist_at_least(a, b, 4, WINDOW)
        union = close.union(far)
        assert union.intervals == (WINDOW,)

    def test_nonlinear_fallback(self):
        a = MovingPoint(Point(0.0, 0.0), [SinusoidFunction(5, 0.9), LinearFunction(0)])
        b = static_point(Point(0, 0))
        got = when_dist_at_least(a, b, 3, WINDOW)
        sample_check(
            got,
            lambda t: a.position_at(t).distance_to(b.position_at(t)) >= 3,
            slack=0.08,
        )

    def test_negative_radius_rejected(self):
        a = static_point(Point(0, 0))
        with pytest.raises(SpatialError):
            when_dist_at_least(a, a, -1, WINDOW)


class TestInsideBall:
    def test_static_ball(self):
        m = linear_moving_point(Point(-10, 0), Vector(1, 0))
        got = when_inside_ball(m, Ball(Point(0, 0), 2), WINDOW)
        assert got.intervals[0].start == pytest.approx(8)
        assert got.intervals[0].end == pytest.approx(12)

    def test_moving_ball_with_carrier(self):
        # The paper's circle around a moving car: a second car with the
        # same motion vector stays inside forever.
        car = linear_moving_point(Point(0, 0), Vector(3, 0))
        other = linear_moving_point(Point(1, 0), Vector(3, 0))
        circle = Ball(Point(0, 0), 5)
        got = when_inside_ball(other, circle, WINDOW, carrier=car)
        assert got.intervals == (WINDOW,)

    def test_moving_ball_overtaken(self):
        car = linear_moving_point(Point(0, 0), Vector(2, 0))
        stationary = static_point(Point(10, 0))
        circle = Ball(Point(0, 0), 3)
        got = when_inside_ball(stationary, circle, WINDOW, carrier=car)
        # Car's circle sweeps over the point: |10 - 2t| <= 3, t in [3.5, 6.5]
        assert got.intervals[0].start == pytest.approx(3.5)
        assert got.intervals[0].end == pytest.approx(6.5)


class TestInsidePolygon:
    SQUARE = Polygon.rectangle(0, 0, 10, 10)

    def test_fly_through(self):
        m = linear_moving_point(Point(-5, 5), Vector(1, 0))
        got = when_inside_polygon(m, self.SQUARE, WINDOW)
        assert len(got) == 1
        assert got.intervals[0].start == pytest.approx(5)
        assert got.intervals[0].end == pytest.approx(15)

    def test_miss(self):
        m = linear_moving_point(Point(-5, 50), Vector(1, 0))
        assert when_inside_polygon(m, self.SQUARE, WINDOW).is_empty

    def test_static_inside(self):
        m = static_point(Point(5, 5))
        assert when_inside_polygon(m, self.SQUARE, WINDOW).intervals == (WINDOW,)

    def test_static_outside(self):
        m = static_point(Point(50, 5))
        assert when_inside_polygon(m, self.SQUARE, WINDOW).is_empty

    def test_nonconvex_double_crossing(self):
        # Crossing the L-shape notch: inside, outside, inside again.
        l_shape = Polygon(
            [
                Point(0, 0),
                Point(30, 0),
                Point(30, 30),
                Point(20, 30),
                Point(20, 10),
                Point(10, 10),
                Point(10, 30),
                Point(0, 30),
            ]
        )
        m = linear_moving_point(Point(-5, 20), Vector(2, 0))
        got = when_inside_polygon(m, l_shape, WINDOW)
        assert len(got) == 2
        sample_check(got, lambda t: l_shape.contains(m.position_at(t)))

    def test_outside_is_complement(self):
        m = linear_moving_point(Point(-5, 5), Vector(1, 0))
        inside_set = when_inside_polygon(m, self.SQUARE, WINDOW)
        outside_set = when_outside_polygon(m, self.SQUARE, WINDOW)
        assert inside_set.union(outside_set).intervals == (WINDOW,)

    def test_carrier_relative_motion(self):
        # Polygon rides with a car; a point with identical velocity keeps
        # its relative placement forever.
        car = linear_moving_point(Point(0, 0), Vector(5, 1))
        rider = linear_moving_point(Point(2, 2), Vector(5, 1))
        got = when_inside_polygon(rider, self.SQUARE, WINDOW, carrier=car)
        assert got.intervals == (WINDOW,)

    def test_carrier_sweeps_past_static_point(self):
        car = linear_moving_point(Point(0, 0), Vector(1, 0))
        pt = static_point(Point(20, 5))
        got = when_inside_polygon(pt, self.SQUARE, WINDOW, carrier=car)
        # Square [0,10]x[0,10] moves right at 1: covers x=20 for t in [10, 20].
        assert got.intervals[0].start == pytest.approx(10)
        assert got.intervals[0].end == pytest.approx(20)

    def test_sliding_along_edge(self):
        m = linear_moving_point(Point(-5, 0), Vector(1, 0))
        got = when_inside_polygon(m, self.SQUARE, WINDOW)
        # Boundary-inclusive: on the bottom edge from t=5 to t=15.
        assert got.contains(10)
        assert not got.contains(2)

    def test_nonlinear_fallback(self):
        m = MovingPoint(
            Point(5.0, -20.0),
            [LinearFunction(0), SinusoidFunction(30, 0.4)],
        )
        got = when_inside_polygon(m, self.SQUARE, WINDOW)
        assert not got.is_empty
        sample_check(
            got, lambda t: self.SQUARE.contains(m.position_at(t)), slack=0.1
        )

    def test_requires_2d(self):
        m = static_point(Point(0, 0, 0))
        with pytest.raises(SpatialError):
            when_inside_polygon(m, self.SQUARE, WINDOW)

    @settings(max_examples=60, deadline=None)
    @given(small, small, velocities, velocities)
    def test_matches_sampling(self, x, y, vx, vy):
        m = linear_moving_point(Point(x, y), Vector(vx, vy))
        got = when_inside_polygon(m, self.SQUARE, WINDOW)
        sample_check(got, lambda t: self.SQUARE.contains(m.position_at(t)))


class TestWithinSphere:
    def test_empty_and_singleton_always(self):
        assert when_within_sphere(1, [], WINDOW).intervals == (WINDOW,)
        m = static_point(Point(0, 0))
        assert when_within_sphere(0, [m], WINDOW).intervals == (WINDOW,)

    def test_two_points_reduces_to_dist(self):
        a = linear_moving_point(Point(0, 0), Vector(1, 0))
        b = linear_moving_point(Point(10, 0), Vector(-1, 0))
        got = when_within_sphere(2, [a, b], WINDOW)
        expected = when_dist_at_most(a, b, 4, WINDOW)
        assert got == expected

    def test_three_converging(self):
        ms = [
            linear_moving_point(Point(-10, 0), Vector(1, 0)),
            linear_moving_point(Point(10, 0), Vector(-1, 0)),
            linear_moving_point(Point(0, 10), Vector(0, -1)),
        ]
        got = when_within_sphere(2, ms, WINDOW)
        assert not got.is_empty
        # All three near the origin around t=10.
        assert got.contains(10)
        assert not got.contains(0)

    def test_negative_radius(self):
        with pytest.raises(SpatialError):
            when_within_sphere(-1, [], WINDOW)


class TestValueInRange:
    def test_linear(self):
        got = when_value_in_range(0, LinearFunction(2), 4, 10, WINDOW)
        assert got.intervals[0].start == pytest.approx(2)
        assert got.intervals[0].end == pytest.approx(5)

    def test_static_value(self):
        got = when_value_in_range(7, LinearFunction(0), 4, 10, WINDOW)
        assert got.intervals == (WINDOW,)
        assert when_value_in_range(70, LinearFunction(0), 4, 10, WINDOW).is_empty

    def test_anchor_time(self):
        got = when_value_in_range(
            0, LinearFunction(1), 5, 6, WINDOW, anchor_time=2
        )
        assert got.intervals[0].start == pytest.approx(7)
        assert got.intervals[0].end == pytest.approx(8)

    def test_piecewise_bounce(self):
        f = PiecewiseLinearFunction([(0, 1), (10, -1)])
        got = when_value_in_range(0, f, 5, 100, WINDOW)
        # Rises through 5 at t=5, peaks at 10 (value 10), falls below 5 at t=15.
        assert got.intervals[0].start == pytest.approx(5)
        assert got.intervals[0].end == pytest.approx(15)

    def test_nonlinear(self):
        f = SinusoidFunction(10, 0.5)
        got = when_value_in_range(0, f, 5, 100, WINDOW)
        sample_check(got, lambda t: 5 <= f.value(t) <= 100, slack=0.08)

    def test_empty_range_rejected(self):
        with pytest.raises(SpatialError):
            when_value_in_range(0, LinearFunction(1), 5, 4, WINDOW)

    @settings(max_examples=80, deadline=None)
    @given(small, velocities, small, st.floats(min_value=0, max_value=10))
    def test_matches_sampling(self, v0, slope, lo, width):
        f = LinearFunction(slope)
        got = when_value_in_range(v0, f, lo, lo + width, WINDOW)
        sample_check(got, lambda t: lo <= v0 + f.value(t) <= lo + width)


class TestNumericMachinery:
    def test_when_true_constant(self):
        assert when_true(lambda t: True, WINDOW).intervals == (WINDOW,)
        assert when_true(lambda t: False, WINDOW).is_empty

    def test_when_below_crossing(self):
        got = when_below(lambda t: t - 10, WINDOW)
        assert got.intervals[0].start == 0
        assert got.intervals[0].end == pytest.approx(10, abs=1e-6)

    def test_unbounded_window_rejected(self):
        with pytest.raises(SpatialError):
            when_true(lambda t: True, Interval(0, math.inf))

    def test_too_few_samples_rejected(self):
        with pytest.raises(SpatialError):
            when_true(lambda t: True, WINDOW, samples=1)

    def test_boundary_refinement_precision(self):
        got = when_below(lambda t: t - math.pi, WINDOW)
        assert got.intervals[0].end == pytest.approx(math.pi, abs=1e-6)
