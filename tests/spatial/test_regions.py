"""Unit tests for balls and boxes."""

import pytest

from repro.errors import SpatialError
from repro.spatial import Ball, Box, Circle, Point, Sphere


class TestBall:
    def test_contains(self):
        b = Ball(Point(0, 0), 5)
        assert b.contains(Point(3, 4))
        assert b.contains(Point(5, 0))
        assert not b.contains(Point(5.1, 0))

    def test_negative_radius(self):
        with pytest.raises(SpatialError):
            Ball(Point(0, 0), -1)

    def test_translated(self):
        b = Ball(Point(0, 0), 1).translated(Point(10, 0))
        assert b.center == Point(10, 0)

    def test_aliases(self):
        assert Circle is Ball and Sphere is Ball

    def test_3d(self):
        s = Sphere(Point(0, 0, 0), 2)
        assert s.dim == 3
        assert s.contains(Point(1, 1, 1))
        assert not s.contains(Point(2, 2, 2))


class TestBox:
    def test_from_bounds(self):
        b = Box.from_bounds((0, 10), (5, 7))
        assert b.lo == Point(0, 5)
        assert b.hi == Point(10, 7)

    def test_validation(self):
        with pytest.raises(SpatialError):
            Box(Point(0, 0), Point(-1, 5))
        with pytest.raises(SpatialError):
            Box(Point(0, 0), Point(1, 1, 1))

    def test_contains_point(self):
        b = Box.from_bounds((0, 10), (0, 10))
        assert b.contains(Point(0, 0))
        assert b.contains(Point(10, 10))
        assert not b.contains(Point(11, 5))

    def test_contains_box(self):
        outer = Box.from_bounds((0, 10), (0, 10))
        assert outer.contains_box(Box.from_bounds((2, 3), (2, 3)))
        assert not outer.contains_box(Box.from_bounds((9, 11), (0, 1)))

    def test_intersects(self):
        a = Box.from_bounds((0, 5), (0, 5))
        assert a.intersects(Box.from_bounds((5, 9), (5, 9)))  # touching
        assert not a.intersects(Box.from_bounds((6, 9), (0, 5)))

    def test_union(self):
        a = Box.from_bounds((0, 1), (0, 1))
        b = Box.from_bounds((5, 6), (5, 6))
        assert a.union(b) == Box.from_bounds((0, 6), (0, 6))

    def test_intersection(self):
        a = Box.from_bounds((0, 5), (0, 5))
        b = Box.from_bounds((3, 9), (4, 9))
        assert a.intersection(b) == Box.from_bounds((3, 5), (4, 5))
        assert a.intersection(Box.from_bounds((6, 9), (6, 9))) is None

    def test_center_extents_volume(self):
        b = Box.from_bounds((0, 4), (0, 2))
        assert b.center == Point(2, 1)
        assert b.extents == (4, 2)
        assert b.volume == 8

    def test_split_quadrants(self):
        b = Box.from_bounds((0, 4), (0, 4))
        kids = b.split()
        assert len(kids) == 4
        assert sum(k.volume for k in kids) == b.volume
        assert all(b.contains_box(k) for k in kids)

    def test_split_octants(self):
        b = Box.from_bounds((0, 2), (0, 2), (0, 2))
        kids = b.split()
        assert len(kids) == 8
        assert sum(k.volume for k in kids) == pytest.approx(b.volume)

    def test_repr(self):
        assert "[0,4]" in repr(Box.from_bounds((0, 4), (1, 2)))
