"""Unit tests for points and vectors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpatialError
from repro.spatial import Point, Vector, dist

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestConstruction:
    def test_dims(self):
        assert Point(1).dim == 1
        assert Point(1, 2).dim == 2
        assert Point(1, 2, 3).dim == 3

    def test_too_many_coords(self):
        with pytest.raises(SpatialError):
            Point(1, 2, 3, 4)

    def test_no_coords(self):
        with pytest.raises(SpatialError):
            Point()

    def test_of(self):
        assert Point.of([1, 2]) == Point(1, 2)

    def test_zero(self):
        assert Point.zero(3) == Point(0, 0, 0)

    def test_accessors(self):
        p = Point(1, 2, 3)
        assert (p.x, p.y, p.z) == (1, 2, 3)

    def test_missing_axis_raises(self):
        with pytest.raises(SpatialError):
            _ = Point(1).y
        with pytest.raises(SpatialError):
            _ = Point(1, 2).z

    def test_iteration_indexing(self):
        p = Point(4, 5)
        assert list(p) == [4, 5]
        assert p[1] == 5
        assert len(p) == 2


class TestAlgebra:
    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_dim_mismatch(self):
        with pytest.raises(SpatialError):
            Point(1, 2) + Point(1, 2, 3)

    def test_scale(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)
        assert -Point(1, 2) == Point(-1, -2)

    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_cross2d(self):
        assert Point(1, 0).cross2d(Point(0, 1)) == 1
        with pytest.raises(SpatialError):
            Point(1, 0, 0).cross2d(Point(0, 1, 0))

    def test_norm(self):
        assert Point(3, 4).norm == 5
        assert Point(3, 4).norm_squared == 25

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5
        assert dist(Point(0, 0), Point(3, 4)) == 5

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_is_close(self):
        assert Point(1, 1).is_close(Point(1 + 1e-12, 1))
        assert not Point(1, 1).is_close(Point(1.1, 1))
        assert not Point(1, 1).is_close(Point(1.0,))

    def test_hash_eq(self):
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != (1, 2)

    def test_vector_alias(self):
        assert Vector is Point

    @given(coords, coords, coords, coords)
    def test_triangle_inequality(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        origin = Point(0, 0)
        assert a.distance_to(b) <= (
            a.distance_to(origin) + origin.distance_to(b) + 1e-6
        )

    @given(coords, coords)
    def test_norm_matches_math(self, x, y):
        assert Point(x, y).norm == pytest.approx(math.hypot(x, y), rel=1e-9)
