"""Unit tests for expression trees (evaluation + atom surgery)."""

import pytest

from repro.dbms import And, BinOp, ColumnRef, Comparison, Literal, Not, Or
from repro.dbms.expressions import FALSE, TRUE
from repro.errors import SqlError


class TestEval:
    def test_literal(self):
        assert Literal(5).eval({}) == 5
        assert str(Literal("x")) == "'x'"

    def test_column_ref(self):
        env = {"t.price": 80}
        assert ColumnRef("t.price").eval(env) == 80
        assert ColumnRef("price").eval(env) == 80  # suffix match

    def test_column_ref_ambiguous(self):
        env = {"a.price": 1, "b.price": 2}
        with pytest.raises(SqlError):
            ColumnRef("price").eval(env)

    def test_column_ref_unknown(self):
        with pytest.raises(SqlError):
            ColumnRef("zap").eval({"a.b": 1})

    def test_arithmetic(self):
        env = {"x": 10}
        expr = BinOp("+", ColumnRef("x"), Literal(5))
        assert expr.eval(env) == 15
        assert BinOp("*", Literal(3), Literal(4)).eval({}) == 12
        assert BinOp("/", Literal(10), Literal(4)).eval({}) == 2.5
        assert BinOp("%", Literal(10), Literal(3)).eval({}) == 1
        assert BinOp("-", Literal(10), Literal(3)).eval({}) == 7

    def test_division_by_zero(self):
        with pytest.raises(SqlError):
            BinOp("/", Literal(1), Literal(0)).eval({})

    def test_bad_operator(self):
        with pytest.raises(SqlError):
            BinOp("**", Literal(1), Literal(2))
        with pytest.raises(SqlError):
            Comparison("===", Literal(1), Literal(2))

    def test_comparisons(self):
        assert Comparison("<", Literal(1), Literal(2)).eval({}) is True
        assert Comparison(">=", Literal(1), Literal(2)).eval({}) is False
        assert Comparison("=", Literal("a"), Literal("a")).eval({}) is True
        assert Comparison("!=", Literal("a"), Literal("a")).eval({}) is False

    def test_incomparable(self):
        with pytest.raises(SqlError):
            Comparison("<", Literal("a"), Literal(1)).eval({})

    def test_null_propagation(self):
        assert Comparison("=", Literal(None), Literal(1)).eval({}) is None
        assert BinOp("+", Literal(None), Literal(1)).eval({}) is None
        assert Not(Literal(None)).eval({}) is None

    def test_three_valued_and(self):
        assert And(FALSE, Literal(None)).eval({}) is False
        assert And(Literal(None), FALSE).eval({}) is False
        assert And(TRUE, Literal(None)).eval({}) is None
        assert And(TRUE, TRUE).eval({}) is True

    def test_three_valued_or(self):
        assert Or(TRUE, Literal(None)).eval({}) is True
        assert Or(Literal(None), TRUE).eval({}) is True
        assert Or(FALSE, Literal(None)).eval({}) is None
        assert Or(FALSE, FALSE).eval({}) is False

    def test_not(self):
        assert Not(TRUE).eval({}) is False
        assert Not(FALSE).eval({}) is True

    def test_operator_sugar(self):
        expr = (Literal(True) & Literal(False)) | ~Literal(False)
        assert expr.eval({}) is True


class TestStructure:
    def atom(self, name, value):
        return Comparison(">", ColumnRef(name), Literal(value))

    def test_references(self):
        expr = And(self.atom("a", 1), Or(self.atom("b", 2), Not(self.atom("c", 3))))
        assert expr.references() == {"a", "b", "c"}
        assert Literal(1).references() == set()

    def test_atoms_enumeration(self):
        p, q, r = self.atom("a", 1), self.atom("b", 2), self.atom("c", 3)
        expr = And(p, Or(q, Not(r)))
        assert list(expr.atoms()) == [p, q, r]

    def test_atoms_of_single_atom(self):
        p = self.atom("a", 1)
        assert list(p.atoms()) == [p]

    def test_substitute_atom(self):
        p, q = self.atom("a", 1), self.atom("b", 2)
        expr = And(p, q)
        replaced = expr.substitute(p, TRUE)
        assert replaced == And(TRUE, q)
        # Original untouched (immutability).
        assert expr == And(p, q)

    def test_substitute_in_all_node_types(self):
        p = self.atom("a", 1)
        assert Not(p).substitute(p, TRUE) == Not(TRUE)
        assert Or(p, p).substitute(p, FALSE) == Or(FALSE, FALSE)
        arith = BinOp("+", ColumnRef("a"), Literal(1))
        assert arith.substitute(ColumnRef("a"), Literal(9)) == BinOp(
            "+", Literal(9), Literal(1)
        )
        comp = Comparison("<", ColumnRef("a"), Literal(1))
        assert comp.substitute(ColumnRef("a"), Literal(0)) == Comparison(
            "<", Literal(0), Literal(1)
        )

    def test_substitute_whole_tree(self):
        p = self.atom("a", 1)
        assert p.substitute(p, TRUE) == TRUE

    def test_str_forms(self):
        p = self.atom("a", 1)
        assert str(And(p, p)) == "(a > 1 AND a > 1)"
        assert str(Or(p, Not(p))) == "(a > 1 OR (NOT a > 1))"
        assert str(BinOp("+", Literal(1), Literal(2))) == "(1 + 2)"
