"""Unit tests for DBMS value types and schemas."""

import pytest

from repro.dbms import BOOL, Column, FLOAT, INT, STRING, Schema
from repro.errors import SchemaError


class TestTypes:
    def test_int(self):
        assert INT.validate(5) == 5
        assert INT.validate(5.0) == 5
        assert INT.validate(None) is None
        with pytest.raises(SchemaError):
            INT.validate(5.5)
        with pytest.raises(SchemaError):
            INT.validate(True)
        with pytest.raises(SchemaError):
            INT.validate("5")

    def test_float(self):
        assert FLOAT.validate(5) == 5.0
        assert isinstance(FLOAT.validate(5), float)
        with pytest.raises(SchemaError):
            FLOAT.validate("x")
        with pytest.raises(SchemaError):
            FLOAT.validate(False)

    def test_string(self):
        assert STRING.validate("hi") == "hi"
        with pytest.raises(SchemaError):
            STRING.validate(5)

    def test_bool(self):
        assert BOOL.validate(True) is True
        with pytest.raises(SchemaError):
            BOOL.validate(1)

    def test_str(self):
        assert str(INT) == "INT"


class TestColumn:
    def test_valid_names(self):
        Column("price", INT)
        Column("pos_x.value", FLOAT)  # dynamic sub-attribute convention

    def test_invalid_names(self):
        with pytest.raises(SchemaError):
            Column("", INT)
        with pytest.raises(SchemaError):
            Column("a b", INT)


class TestSchema:
    def make(self):
        return Schema.of(
            ("id", INT), ("name", STRING), ("price", FLOAT), key="id"
        )

    def test_basic(self):
        s = self.make()
        assert s.names == ("id", "name", "price")
        assert s.arity == 3
        assert s.key == "id"
        assert "name" in s
        assert "missing" not in s
        assert len(s) == 3

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", INT), ("a", INT))

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", INT), key="b")

    def test_index_of(self):
        s = self.make()
        assert s.index_of("price") == 2
        with pytest.raises(SchemaError):
            s.index_of("nope")

    def test_key_index(self):
        assert self.make().key_index() == 0
        with pytest.raises(SchemaError):
            Schema.of(("a", INT)).key_index()

    def test_validate_row(self):
        s = self.make()
        assert s.validate_row([1, "x", 2]) == (1, "x", 2.0)
        with pytest.raises(SchemaError):
            s.validate_row([1, "x"])
        with pytest.raises(SchemaError):
            s.validate_row(["x", "x", 2])

    def test_row_from_mapping(self):
        s = self.make()
        assert s.row_from_mapping({"id": 1, "name": "a"}) == (1, "a", None)
        with pytest.raises(SchemaError):
            s.row_from_mapping({"nope": 1})

    def test_project(self):
        s = self.make().project(["price", "id"])
        assert s.names == ("price", "id")

    def test_concat(self):
        a = Schema.of(("x", INT))
        b = Schema.of(("y", INT))
        assert a.concat(b).names == ("x", "y")
        assert a.concat(a, "l.", "r.").names == ("l.x", "r.x")

    def test_eq_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
        assert self.make() != Schema.of(("id", INT))
