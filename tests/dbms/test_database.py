"""End-to-end tests of the DBMS: SQL in, relations out."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms import Database
from repro.errors import SchemaError, SqlError
from repro.temporal import SimulationClock


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE motels (id INT PRIMARY KEY, name STRING, price FLOAT, city STRING)"
    )
    database.execute(
        "INSERT INTO motels VALUES "
        "(1, 'Inn', 80.0, 'Springfield'), "
        "(2, 'Lodge', 120.0, 'Springfield'), "
        "(3, 'Grand', 300.0, 'Shelbyville'), "
        "(4, 'Budget', 45.0, 'Shelbyville')"
    )
    return database


class TestBasicSelect:
    def test_select_star(self, db):
        rel = db.query("SELECT * FROM motels")
        assert len(rel) == 4
        assert rel.schema.names == ("id", "name", "price", "city")

    def test_select_columns(self, db):
        rel = db.query("SELECT name, price FROM motels WHERE price < 100")
        assert rel.to_set() == {("Inn", 80.0), ("Budget", 45.0)}

    def test_select_expression_with_alias(self, db):
        rel = db.query("SELECT price * 2 AS doubled FROM motels WHERE id = 1")
        assert rel.scalar() == 160.0

    def test_select_boolean_combination(self, db):
        rel = db.query(
            "SELECT id FROM motels WHERE city = 'Springfield' AND price <= 100 OR id = 3"
        )
        assert set(rel.column("id")) == {1, 3}

    def test_select_not(self, db):
        rel = db.query("SELECT id FROM motels WHERE NOT city = 'Springfield'")
        assert set(rel.column("id")) == {3, 4}

    def test_qualified_references(self, db):
        rel = db.query("SELECT m.name FROM motels m WHERE m.id = 2")
        assert rel.column("m.name") == ["Lodge"]

    def test_unknown_table(self, db):
        with pytest.raises(SqlError):
            db.query("SELECT * FROM nothing")

    def test_duplicate_output_names(self, db):
        with pytest.raises(SqlError):
            db.query("SELECT id, id FROM motels")

    def test_query_rejects_non_select(self, db):
        with pytest.raises(SqlError):
            db.query("DELETE FROM motels")

    def test_scalar_shape_enforced(self, db):
        with pytest.raises(SchemaError):
            db.query("SELECT id FROM motels").scalar()


class TestJoins:
    @pytest.fixture
    def jdb(self, db):
        db.execute("CREATE TABLE bookings (bid INT PRIMARY KEY, motel_id INT, nights INT)")
        db.execute(
            "INSERT INTO bookings VALUES (10, 1, 2), (11, 1, 1), (12, 3, 5)"
        )
        return db

    def test_equi_join(self, jdb):
        rel = jdb.query(
            "SELECT m.name, b.nights FROM motels m, bookings b WHERE m.id = b.motel_id"
        )
        assert rel.to_set() == {("Inn", 2), ("Inn", 1), ("Grand", 5)}

    def test_join_with_extra_filter(self, jdb):
        rel = jdb.query(
            "SELECT b.bid FROM motels m, bookings b "
            "WHERE m.id = b.motel_id AND m.price > 100"
        )
        assert rel.column("b.bid") == [12]

    def test_cross_product(self, jdb):
        rel = jdb.query("SELECT m.id, b.bid FROM motels m, bookings b")
        assert len(rel) == 12

    def test_three_way_join(self, jdb):
        jdb.execute("CREATE TABLE cities (cname STRING PRIMARY KEY, state STRING)")
        jdb.execute(
            "INSERT INTO cities VALUES ('Springfield', 'IL'), ('Shelbyville', 'IL')"
        )
        rel = jdb.query(
            "SELECT m.name, c.state, b.nights FROM motels m, bookings b, cities c "
            "WHERE m.id = b.motel_id AND m.city = c.cname AND b.nights > 1"
        )
        assert rel.to_set() == {("Inn", "IL", 2), ("Grand", "IL", 5)}

    def test_self_join_with_aliases(self, jdb):
        rel = jdb.query(
            "SELECT a.id, b.id FROM motels a, motels b "
            "WHERE a.city = b.city AND a.id < b.id"
        )
        assert rel.to_set() == {(1, 2), (3, 4)}

    def test_duplicate_binding_rejected(self, jdb):
        with pytest.raises(SqlError):
            jdb.query("SELECT * FROM motels, motels")

    def test_select_star_join_qualifies_columns(self, jdb):
        rel = jdb.query(
            "SELECT * FROM motels m, bookings b WHERE m.id = b.motel_id"
        )
        assert "m.id" in rel.schema.names
        assert "b.bid" in rel.schema.names


class TestIndexUsage:
    def test_index_eq_scan_reduces_rows_scanned(self, db):
        db.create_index("motels", "city", kind="hash")
        db.stats.reset()
        rel = db.query("SELECT id FROM motels WHERE city = 'Springfield'")
        assert set(rel.column("id")) == {1, 2}
        assert db.stats.index_lookups == 1
        assert db.stats.rows_scanned == 2  # only matching rows fetched

    def test_index_range_scan(self, db):
        db.create_index("motels", "price")
        db.stats.reset()
        rel = db.query("SELECT id FROM motels WHERE price >= 100")
        assert set(rel.column("id")) == {2, 3}
        assert db.stats.index_lookups == 1

    def test_strict_range_excludes_boundary(self, db):
        db.create_index("motels", "price")
        rel = db.query("SELECT id FROM motels WHERE price > 120")
        assert set(rel.column("id")) == {3}

    def test_reversed_literal_comparison(self, db):
        db.create_index("motels", "price")
        db.stats.reset()
        rel = db.query("SELECT id FROM motels WHERE 100 <= price")
        assert set(rel.column("id")) == {2, 3}
        assert db.stats.index_lookups == 1

    def test_no_index_full_scan(self, db):
        db.stats.reset()
        db.query("SELECT id FROM motels WHERE city = 'Springfield'")
        assert db.stats.index_lookups == 0
        assert db.stats.rows_scanned == 4


class TestMutations:
    def test_update(self, db):
        n = db.execute("UPDATE motels SET price = price + 10 WHERE city = 'Springfield'")
        assert n == 2
        rel = db.query("SELECT price FROM motels WHERE id = 1")
        assert rel.scalar() == 90.0

    def test_update_all(self, db):
        assert db.execute("UPDATE motels SET price = 1.0") == 4

    def test_delete(self, db):
        assert db.execute("DELETE FROM motels WHERE price > 100") == 2
        assert len(db.query("SELECT * FROM motels")) == 2

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM motels") == 4

    def test_insert_with_columns(self, db):
        db.execute("INSERT INTO motels (id, name) VALUES (9, 'Partial')")
        rel = db.query("SELECT price FROM motels WHERE id = 9")
        assert rel.rows[0][0] is None

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SqlError):
            db.execute("INSERT INTO motels (id, name) VALUES (9)")

    def test_null_filtered_from_where(self, db):
        db.execute("INSERT INTO motels (id, name) VALUES (9, 'NullPrice')")
        rel = db.query("SELECT id FROM motels WHERE price < 1000")
        assert 9 not in rel.column("id")


class TestUpdateLog:
    def test_mutations_are_logged(self, db):
        start = len(db.log)
        db.execute("UPDATE motels SET price = 0.0 WHERE id = 1")
        db.execute("DELETE FROM motels WHERE id = 2")
        db.execute("INSERT INTO motels VALUES (9, 'New', 1.0, 'X')")
        ops = [r.op for r in db.log][start:]
        assert ops == ["update", "delete", "insert"]
        keys = [r.key for r in db.log][start:]
        assert keys == [1, 2, 9]

    def test_log_timestamps_follow_clock(self):
        clock = SimulationClock()
        db = Database(clock=clock)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        clock.tick(5)
        db.execute("INSERT INTO t VALUES (2)")
        times = [r.time for r in db.log]
        assert times == [0, 5]

    def test_subscriber_sees_update(self, db):
        seen = []
        db.log.subscribe(seen.append)
        db.execute("UPDATE motels SET price = 5.0 WHERE id = 3")
        assert len(seen) == 1
        assert seen[0].old[2] == 300.0
        assert seen[0].new[2] == 5.0


class TestCatalog:
    def test_tables(self, db):
        assert db.tables() == ["motels"]
        assert db.has_table("motels")
        assert not db.has_table("x")

    def test_duplicate_table(self, db):
        with pytest.raises(SqlError):
            db.execute("CREATE TABLE motels (a INT)")

    def test_unknown_table_access(self, db):
        with pytest.raises(SqlError):
            db.table("zap")


# ---------------------------------------------------------------------------
# Property test: planner+executor vs brute-force evaluation
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=25,
    ),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=5),
)
def test_filter_matches_bruteforce(rows, a_bound, b_eq):
    db = Database()
    db.execute("CREATE TABLE t (a INT, b INT)")
    db.create_index("t", "a")
    for a, b in rows:
        db.execute(f"INSERT INTO t VALUES ({a}, {b})")
    rel = db.query(f"SELECT a, b FROM t WHERE a <= {a_bound} AND b = {b_eq}")
    want = sorted((a, b) for a, b in rows if a <= a_bound and b == b_eq)
    assert sorted(rel.rows) == want
