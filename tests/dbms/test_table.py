"""Unit tests for tables, hash index, and update log."""

import pytest

from repro.dbms import Column, FLOAT, INT, STRING, Schema, Table, UpdateLog, UpdateRecord
from repro.dbms.indexes import HashIndex
from repro.errors import SchemaError


def make_table() -> Table:
    schema = Schema.of(("id", INT), ("name", STRING), ("price", FLOAT), key="id")
    return Table("motels", schema)


class TestTable:
    def test_insert_and_scan(self):
        t = make_table()
        t.insert([1, "Inn", 80.0])
        t.insert([2, "Lodge", 120.0])
        assert len(t) == 2
        assert t.rows() == [(1, "Inn", 80.0), (2, "Lodge", 120.0)]

    def test_key_uniqueness(self):
        t = make_table()
        t.insert([1, "Inn", 80.0])
        with pytest.raises(SchemaError):
            t.insert([1, "Other", 1.0])

    def test_null_key_rejected(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert([None, "Inn", 80.0])

    def test_get_by_key(self):
        t = make_table()
        t.insert([7, "Inn", 80.0])
        assert t.get_by_key(7) == (7, "Inn", 80.0)
        assert t.get_by_key(8) is None

    def test_get_stale_rowid(self):
        t = make_table()
        rid = t.insert([1, "Inn", 80.0])
        t.delete_row(rid)
        with pytest.raises(SchemaError):
            t.get(rid)

    def test_insert_mapping(self):
        t = make_table()
        t.insert_mapping({"id": 1, "name": "Inn"})
        assert t.get_by_key(1) == (1, "Inn", None)

    def test_update_row(self):
        t = make_table()
        rid = t.insert([1, "Inn", 80.0])
        old, new = t.update_row(rid, {"price": 95.0})
        assert old[2] == 80.0
        assert new[2] == 95.0
        assert t.get(rid)[2] == 95.0

    def test_update_key(self):
        t = make_table()
        rid = t.insert([1, "Inn", 80.0])
        t.insert([2, "Lodge", 1.0])
        with pytest.raises(SchemaError):
            t.update_row(rid, {"id": 2})
        t.update_row(rid, {"id": 3})
        assert t.get_by_key(3) is not None
        assert t.get_by_key(1) is None

    def test_delete_row(self):
        t = make_table()
        rid = t.insert([1, "Inn", 80.0])
        removed = t.delete_row(rid)
        assert removed == (1, "Inn", 80.0)
        assert len(t) == 0
        assert t.get_by_key(1) is None


class TestTableIndexes:
    def test_create_and_lookup(self):
        t = make_table()
        t.insert([1, "Inn", 80.0])
        t.insert([2, "Lodge", 80.0])
        t.insert([3, "Hotel", 200.0])
        t.create_index("price", kind="btree")
        rids = t.index_lookup("price", 80.0)
        assert {t.get(r)[0] for r in rids} == {1, 2}

    def test_index_backfills_existing_rows(self):
        t = make_table()
        t.insert([1, "Inn", 80.0])
        t.create_index("name", kind="hash")
        assert len(t.index_lookup("name", "Inn")) == 1

    def test_index_range(self):
        t = make_table()
        for i in range(10):
            t.insert([i, f"m{i}", float(i * 10)])
        t.create_index("price")
        rids = t.index_range("price", 25.0, 55.0)
        assert sorted(t.get(r)[0] for r in rids) == [3, 4, 5]

    def test_range_requires_btree(self):
        t = make_table()
        t.create_index("price", kind="hash")
        with pytest.raises(SchemaError):
            t.index_range("price", 0, 1)

    def test_index_tracks_updates(self):
        t = make_table()
        rid = t.insert([1, "Inn", 80.0])
        t.create_index("price")
        t.update_row(rid, {"price": 300.0})
        assert t.index_lookup("price", 80.0) == []
        assert t.index_lookup("price", 300.0) == [rid]

    def test_index_tracks_deletes(self):
        t = make_table()
        rid = t.insert([1, "Inn", 80.0])
        t.create_index("price")
        t.delete_row(rid)
        assert t.index_lookup("price", 80.0) == []

    def test_duplicate_index_rejected(self):
        t = make_table()
        t.create_index("price")
        with pytest.raises(SchemaError):
            t.create_index("price")

    def test_unknown_kind(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.create_index("price", kind="bitmap")

    def test_missing_index_lookup(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.index_lookup("price", 1.0)

    def test_has_index(self):
        t = make_table()
        assert not t.has_index("price")
        t.create_index("price")
        assert t.has_index("price")


class TestHashIndex:
    def test_roundtrip(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("a", 2)
        idx.insert("b", 3)
        assert sorted(idx.search("a")) == [1, 2]
        assert len(idx) == 3
        assert sorted(idx.keys()) == ["a", "b"]

    def test_delete(self):
        idx = HashIndex()
        idx.insert("a", 1)
        assert idx.delete("a", 1)
        assert not idx.delete("a", 1)
        assert not idx.delete("zz", 1)
        assert idx.search("a") == []
        assert len(idx) == 0


class TestUpdateLog:
    def rec(self, time, op="update", table="t"):
        return UpdateRecord(time=time, table=table, op=op, key=1, old=None, new=None)

    def test_append_and_iterate(self):
        log = UpdateLog()
        log.append(self.rec(1))
        log.append(self.rec(2))
        assert len(log) == 2
        assert [r.time for r in log] == [1, 2]

    def test_since(self):
        log = UpdateLog()
        for t in (1, 2, 3):
            log.append(self.rec(t))
        assert [r.time for r in log.since(1)] == [2, 3]

    def test_for_table(self):
        log = UpdateLog()
        log.append(self.rec(1, table="a"))
        log.append(self.rec(2, table="b"))
        assert [r.time for r in log.for_table("b")] == [2]

    def test_subscription(self):
        log = UpdateLog()
        seen = []
        unsubscribe = log.subscribe(seen.append)
        log.append(self.rec(1))
        unsubscribe()
        unsubscribe()  # idempotent
        log.append(self.rec(2))
        assert [r.time for r in seen] == [1]
