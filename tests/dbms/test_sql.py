"""Unit tests for the mini-SQL lexer and parser."""

import pytest

from repro.dbms.expressions import And, BinOp, ColumnRef, Comparison, Literal, Not, Or
from repro.dbms.sql import (
    CreateTable,
    Delete,
    Insert,
    Select,
    Update,
    parse_expression,
    parse_statement,
    tokenize,
)
from repro.errors import SqlError


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select FROM Where")
        assert [t.kind for t in toks[:-1]] == ["KEYWORD"] * 3
        assert [t.value for t in toks[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers(self):
        toks = tokenize("motels m2 _private")
        assert all(t.kind == "IDENT" for t in toks[:-1])

    def test_numbers(self):
        toks = tokenize("42 3.14 .5")
        assert [t.value for t in toks[:-1]] == ["42", "3.14", ".5"]

    def test_dotted_identifier_not_number(self):
        toks = tokenize("pos.value")
        assert [(t.kind, t.value) for t in toks[:-1]] == [
            ("IDENT", "pos"),
            ("SYMBOL", "."),
            ("IDENT", "value"),
        ]

    def test_strings(self):
        toks = tokenize("'hello world'")
        assert toks[0].kind == "STRING"
        assert toks[0].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        toks = tokenize("<= >= != <>")
        assert [t.value for t in toks[:-1]] == ["<=", ">=", "!=", "!="]

    def test_bad_character(self):
        with pytest.raises(SqlError):
            tokenize("a ; b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestExpressionParsing:
    def test_precedence_or_and(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinOp)
        assert expr.op == "+"
        assert expr.eval({}) == 7

    def test_parentheses(self):
        assert parse_expression("(1 + 2) * 3").eval({}) == 9

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, Not)

    def test_unary_minus(self):
        assert parse_expression("-5").eval({}) == -5
        assert parse_expression("-(2 + 3)").eval({}) == -5
        assert parse_expression("3 - -2").eval({}) == 5

    def test_literals(self):
        assert parse_expression("TRUE").eval({}) is True
        assert parse_expression("FALSE").eval({}) is False
        assert parse_expression("NULL").eval({}) is None
        assert parse_expression("'str'").eval({}) == "str"

    def test_dotted_column(self):
        expr = parse_expression("m.pos_x.value > 5")
        assert isinstance(expr, Comparison)
        assert expr.left == ColumnRef("m.pos_x.value")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse_expression("1 + 2 extra junk (")

    def test_unexpected_token(self):
        with pytest.raises(SqlError):
            parse_expression(", 5")


class TestStatementParsing:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE motels (id INT PRIMARY KEY, name STRING, price FLOAT)"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.name == "motels"
        assert stmt.key == "id"
        assert [c.name for c in stmt.columns] == ["id", "name", "price"]

    def test_create_table_bad_type(self):
        with pytest.raises(SqlError):
            parse_statement("CREATE TABLE t (a BLOB)")

    def test_create_table_double_key(self):
        with pytest.raises(SqlError):
            parse_statement(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)"
            )

    def test_insert(self):
        stmt = parse_statement(
            "INSERT INTO motels VALUES (1, 'Inn', 80.0), (2, 'Lodge', 120.0)"
        )
        assert isinstance(stmt, Insert)
        assert stmt.columns is None
        assert stmt.rows == ((1, "Inn", 80.0), (2, "Lodge", 120.0))

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, -2)")
        assert stmt.columns == ("a", "b")
        assert stmt.rows == ((1, -2),)

    def test_insert_constant_expressions(self):
        stmt = parse_statement("INSERT INTO t VALUES (2 + 3)")
        assert stmt.rows == ((5,),)

    def test_insert_non_constant_rejected(self):
        with pytest.raises(SqlError):
            parse_statement("INSERT INTO t VALUES (x + 1)")

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM motels")
        assert isinstance(stmt, Select)
        assert stmt.targets is None
        assert stmt.tables[0].name == "motels"
        assert stmt.where is None

    def test_select_with_alias_and_where(self):
        stmt = parse_statement(
            "SELECT m.name AS motel, m.price FROM motels m WHERE m.price <= 100"
        )
        assert stmt.targets[0].alias == "motel"
        assert stmt.tables[0].alias == "m"
        assert isinstance(stmt.where, Comparison)

    def test_select_join(self):
        stmt = parse_statement(
            "SELECT * FROM a, b WHERE a.id = b.aid AND b.price > 3"
        )
        assert len(stmt.tables) == 2

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = a + 1, b = 2 WHERE a < 5")
        assert isinstance(stmt, Update)
        assert stmt.assignments[0][0] == "a"
        assert stmt.assignments[1][0] == "b"

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, Delete)
        stmt = parse_statement("DELETE FROM t")
        assert stmt.where is None

    def test_unsupported_statement(self):
        with pytest.raises(SqlError):
            parse_statement("DROP TABLE t")
        with pytest.raises(SqlError):
            parse_statement("42")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse_statement("SELECT * FROM t WHERE a = 1 garbage (")
