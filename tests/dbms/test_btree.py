"""Unit + property tests for the B+-tree index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms.indexes import BPlusTree
from repro.errors import IndexError_


class TestBasics:
    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=3)

    def test_empty(self):
        t = BPlusTree()
        assert len(t) == 0
        assert t.search(5) == []
        assert list(t.range(None, None)) == []
        assert t.height == 1

    def test_insert_search(self):
        t = BPlusTree(order=4)
        for k in [5, 3, 8, 1, 9, 7]:
            t.insert(k, f"v{k}")
        assert t.search(8) == ["v8"]
        assert t.search(42) == []
        assert len(t) == 6

    def test_duplicates(self):
        t = BPlusTree(order=4)
        t.insert(1, "a")
        t.insert(1, "b")
        assert sorted(t.search(1)) == ["a", "b"]
        assert len(t) == 2

    def test_range(self):
        t = BPlusTree(order=4)
        for k in range(20):
            t.insert(k, k * 10)
        assert [k for k, _v in t.range(5, 9)] == [5, 6, 7, 8, 9]
        assert [v for _k, v in t.range(18, None)] == [180, 190]
        assert [k for k, _v in t.range(None, 2)] == [0, 1, 2]
        assert list(t.range(9, 5)) == []

    def test_keys_sorted(self):
        t = BPlusTree(order=4)
        for k in [9, 2, 7, 4, 0]:
            t.insert(k, None)
        assert t.keys() == [0, 2, 4, 7, 9]

    def test_grows_in_height(self):
        t = BPlusTree(order=4)
        for k in range(100):
            t.insert(k, k)
        assert t.height >= 3
        t.check_invariants()

    def test_delete(self):
        t = BPlusTree(order=4)
        for k in range(10):
            t.insert(k, k)
        assert t.delete(5, 5)
        assert t.search(5) == []
        assert not t.delete(5, 5)
        assert not t.delete(99, 0)
        assert len(t) == 9
        t.check_invariants()

    def test_delete_one_duplicate(self):
        t = BPlusTree(order=4)
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.delete(1, "a")
        assert t.search(1) == ["b"]

    def test_delete_wrong_value(self):
        t = BPlusTree(order=4)
        t.insert(1, "a")
        assert not t.delete(1, "z")

    def test_drain_completely(self):
        t = BPlusTree(order=4)
        keys = list(range(50))
        random.Random(1).shuffle(keys)
        for k in keys:
            t.insert(k, k)
        random.Random(2).shuffle(keys)
        for k in keys:
            assert t.delete(k, k)
            t.check_invariants()
        assert len(t) == 0
        assert t.keys() == []

    def test_string_keys(self):
        t = BPlusTree(order=4)
        for w in ["pear", "apple", "fig", "date"]:
            t.insert(w, w.upper())
        assert [k for k, _ in t.range("b", "f")] == ["date"]

    def test_logarithmic_height(self):
        t = BPlusTree(order=32)
        for k in range(10_000):
            t.insert(k, None)
        # 32-ary tree over 10k keys: height well under 5.
        assert t.height <= 4


# ---------------------------------------------------------------------------
# Property tests vs a sorted reference list
# ---------------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=120,
)


@settings(max_examples=120, deadline=None)
@given(ops, st.integers(min_value=4, max_value=9))
def test_matches_reference_multiset(operations, order):
    tree = BPlusTree(order=order)
    reference: list[int] = []
    for op, key in operations:
        if op == "insert":
            tree.insert(key, key)
            reference.append(key)
        else:
            expected = key in reference
            assert tree.delete(key, key) == expected
            if expected:
                reference.remove(key)
    tree.check_invariants()
    assert sorted(reference) == [k for k, _v in tree.items()]
    assert len(tree) == len(reference)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=80),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
def test_range_matches_reference(keys, lo, hi):
    tree = BPlusTree(order=5)
    for k in keys:
        tree.insert(k, k)
    got = [k for k, _v in tree.range(lo, hi)]
    want = sorted(k for k in keys if lo <= k <= hi)
    assert got == want
