"""Incremental continuous-query maintenance: counters, dirty tracking,
fallbacks, and the fixed ``affects`` relevance test.

Pins the E4 counter semantics (`evaluations` stays 1 under clock ticks,
multi-attribute motion updates coalesce into one reevaluation), verifies
that updates to objects of unbound classes never dirty the answer, and
exercises the full-reevaluation fallback cases of the incremental path.
"""

import pytest

from repro.core import ContinuousQuery, MostDatabase, ObjectClass
from repro.core.database import MostUpdate
from repro.errors import QueryError
from repro.ftl import parse_query
from repro.ftl.incremental import supports_incremental
from repro.geometry import Point
from repro.spatial import Polygon


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    database.create_class(ObjectClass("motels", spatial_dimensions=2))
    database.create_class(ObjectClass("birds", spatial_dimensions=2))
    database.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    for i in range(3):
        database.add_moving_object(
            "cars",
            f"c{i}",
            Point(-2.0 - 3 * i, 5.0),
            Point(1, 0),
            static={"price": 50 + i},
        )
    database.add_moving_object("motels", "m0", Point(5.0, 5.0))
    database.add_moving_object("birds", "b0", Point(0.0, 0.0), Point(1, 1))
    return database


ENTER_P = "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 INSIDE(o, P)"
NEAR = "RETRIEVE o, m FROM cars o, motels m WHERE EVENTUALLY DIST(o, m) <= 4"
ASSIGN_Q = (
    "RETRIEVE o FROM cars o WHERE [x := o.x_position.function]"
    " EVENTUALLY o.x_position.function >= 2 * x"
)

METHODS = ("interval", "incremental")


# ---------------------------------------------------------------------------
# E4 counter semantics (regression pins)
# ---------------------------------------------------------------------------


class TestE4Counters:
    @pytest.mark.parametrize("method", METHODS)
    def test_evaluations_stay_one_under_ticks(self, db, method):
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=40, method=method)
        assert cq.evaluations == 1
        for _ in range(12):
            db.clock.tick()
            cq.current()
        # Re-display is interval lookup only; ticks never reevaluate.
        assert cq.evaluations == 1
        assert cq.full_evaluations == 1
        assert cq.incremental_refreshes == 0

    @pytest.mark.parametrize("method", METHODS)
    def test_motion_update_coalesces_to_one_reevaluation(self, db, method):
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=40, method=method)
        # One logical motion update commits one MostUpdate per position
        # axis (x and y); lazy revalidation must coalesce them.
        db.update_motion("c0", Point(-1, 2), position=Point(3.0, 3.0))
        updates = [u for u in db.log if u.object_id == "c0"]
        assert len(updates) == 2  # two axes, two committed updates
        cq.current()
        assert cq.evaluations == 2
        if method == "incremental":
            assert cq.incremental_refreshes == 1
            assert cq.full_evaluations == 1

    def test_incremental_refresh_counted_in_evaluations(self, db):
        cq = ContinuousQuery(
            db, parse_query(ENTER_P), horizon=40, method="incremental"
        )
        for i in range(3):
            db.clock.tick()
            db.update_motion(f"c{i}", Point(2, 0))
            cq.current()
        assert cq.evaluations == 4  # 1 initial + 3 refreshes
        assert cq.full_evaluations == 1
        assert cq.incremental_refreshes == 3


# ---------------------------------------------------------------------------
# The affects() relevance test (bare-except fix)
# ---------------------------------------------------------------------------


class TestAffects:
    @pytest.mark.parametrize("method", METHODS)
    def test_unbound_class_update_does_not_dirty(self, db, method):
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=40, method=method)
        db.update_motion("b0", Point(-2, -2))  # birds are not bound
        assert not cq._dirty
        cq.current()
        assert cq.evaluations == 1

    def test_affects_uses_update_metadata(self, db):
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=40)
        tagged = MostUpdate(0, "c0", "x_position", 0, 1, class_name="cars")
        assert cq.affects(tagged)
        other = MostUpdate(0, "b0", "x_position", 0, 1, class_name="birds")
        assert not cq.affects(other)

    def test_unknown_object_is_conservatively_relevant(self, db):
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=40)
        ghost = MostUpdate(0, "nobody", "x_position", 0, 1)
        assert cq.affects(ghost)

    def test_non_schema_errors_propagate(self, db, monkeypatch):
        # The old bare ``except Exception`` swallowed every failure; only
        # the object-missing SchemaError may be caught.
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=40)

        def boom(_object_id):
            raise RuntimeError("unrelated failure")

        monkeypatch.setattr(db, "get", boom)
        ghost = MostUpdate(0, "nobody", "x_position", 0, 1)
        with pytest.raises(RuntimeError):
            cq.affects(ghost)

    def test_ghost_update_forces_full_reevaluation(self, db):
        cq = ContinuousQuery(
            db, parse_query(ENTER_P), horizon=40, method="incremental"
        )
        # An update that cannot be attributed to a bound object dirties
        # conservatively and disables the incremental path for this round.
        db._commit(MostUpdate(db.clock.now, "nobody", "x_position", 0, 1))
        cq.current()
        assert cq.evaluations == 2
        assert cq.full_evaluations == 2
        assert cq.incremental_refreshes == 0


# ---------------------------------------------------------------------------
# Incremental ≡ full on targeted scenarios
# ---------------------------------------------------------------------------


class TestIncrementalEquivalence:
    def test_two_class_join(self, db):
        q = parse_query(NEAR)
        cq_full = ContinuousQuery(copy_db(db), q, horizon=30)
        db2 = copy_db(db)
        cq_inc = ContinuousQuery(db2, q, horizon=30, method="incremental")
        db_full = cq_full.db
        for step in range(6):
            db_full.clock.tick()
            db2.clock.tick()
            oid = f"c{step % 3}"
            v = Point((-1) ** step, step % 2)
            db_full.update_motion(oid, v)
            db2.update_motion(oid, v)
            assert cq_full.current() == cq_inc.current()
            full_t = sorted(
                (t.values, t.begin, t.end) for t in cq_full.answer_tuples()
            )
            inc_t = sorted(
                (t.values, t.begin, t.end) for t in cq_inc.answer_tuples()
            )
            assert full_t == inc_t
        # Steps 0 and 2 re-issue the object's existing motion vector;
        # the temporal-validity gate proves those updates no-ops and
        # skips their refreshes entirely (DESIGN.md §11).
        assert cq_inc.incremental_refreshes == 4
        assert cq_inc.horizon_skipped > 0

    def test_static_attribute_update_refreshes_incrementally(self, db):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE ALWAYS o.price <= 60"
        )
        cq = ContinuousQuery(db, q, horizon=30, method="incremental")
        assert cq.current() == {("c0",), ("c1",), ("c2",)}
        db.update_static("c0", "price", 100)
        assert cq.current() == {("c1",), ("c2",)}
        assert cq.incremental_refreshes == 1


def copy_db(db: MostDatabase) -> MostDatabase:
    """Fresh database with the same classes, regions, and object states."""
    import copy

    out = MostDatabase()
    for name in db.class_names():
        out.create_class(db.object_class(name))
    for name, region in db._regions.items():
        out.define_region(name, region)
    for obj in db.all_objects():
        out.add_object(
            obj.object_class.name,
            obj.object_id,
            static={
                a: obj.static_value(a)
                for a in obj.object_class.static_attributes
            },
            dynamic={
                a: copy.deepcopy(obj.dynamic_attribute(a))
                for a in obj.object_class.all_dynamic
            },
        )
    return out


# ---------------------------------------------------------------------------
# Fallback cases
# ---------------------------------------------------------------------------


class TestFallbacks:
    def test_assign_formula_falls_back_to_full(self, db):
        q = parse_query(ASSIGN_Q)
        assert not supports_incremental(q.where)
        cq = ContinuousQuery(db, q, horizon=20, method="incremental")
        assert not cq._use_incremental
        db.update_motion("c0", Point(3, 0))
        cq.current()
        assert cq.evaluations == 2
        assert cq.full_evaluations == 2
        assert cq.incremental_refreshes == 0

    def test_population_growth_falls_back_to_full(self, db):
        cq = ContinuousQuery(
            db, parse_query(ENTER_P), horizon=40, method="incremental"
        )
        db.add_moving_object("cars", "c-new", Point(3.0, 3.0), Point(0, 0))
        # add_object does not notify listeners; the next relevant update
        # must detect the population change and recompute from scratch.
        db.update_motion("c-new", Point(1, 1))
        # c0 (x=-2, v=1) enters P within the 3-tick window; c1/c2 start too
        # far back; the inserted car starts inside P.
        assert cq.current() == {("c0",), ("c-new",)}
        assert cq.full_evaluations == 2
        assert cq.incremental_refreshes == 0
        # Once re-seeded, later updates go back to the incremental path.
        db.update_motion("c-new", Point(-1, 0))
        cq.current()
        assert cq.incremental_refreshes == 1

    def test_unknown_method_rejected(self, db):
        with pytest.raises(QueryError):
            ContinuousQuery(db, parse_query(ENTER_P), horizon=10, method="magic")

    def test_expired_query_ignores_updates(self, db):
        cq = ContinuousQuery(
            db, parse_query(ENTER_P), horizon=3, method="incremental"
        )
        db.clock.tick(5)
        db.update_motion("c0", Point(5, 5))
        assert cq.current() == set()
        assert cq.evaluations == 1
