"""Unit tests for object classes and objects."""

import pytest

from repro.core import (
    DynamicAttribute,
    MostObject,
    ObjectClass,
    X_POSITION,
    Y_POSITION,
    Z_POSITION,
)
from repro.errors import SchemaError
from repro.geometry import Point
from repro.motion import LinearFunction, SinusoidFunction


def aircraft_class() -> ObjectClass:
    return ObjectClass(
        "aircraft",
        static_attributes=("callsign",),
        dynamic_attributes=("fuel",),
        spatial_dimensions=3,
    )


def make_aircraft(object_id="KAL007") -> MostObject:
    return MostObject(
        object_id,
        aircraft_class(),
        static={"callsign": "KAL"},
        dynamic={
            "fuel": DynamicAttribute.linear(1000.0, -2.0),
            X_POSITION: DynamicAttribute.linear(0.0, 5.0),
            Y_POSITION: DynamicAttribute.linear(0.0, 0.0),
            Z_POSITION: DynamicAttribute.static(30000.0),
        },
    )


class TestObjectClass:
    def test_spatial_positions(self):
        cls = aircraft_class()
        assert cls.is_spatial
        assert cls.position_attributes == (X_POSITION, Y_POSITION, Z_POSITION)
        assert cls.all_dynamic == ("fuel", X_POSITION, Y_POSITION, Z_POSITION)

    def test_2d_class(self):
        cls = ObjectClass("cars", spatial_dimensions=2)
        assert cls.position_attributes == (X_POSITION, Y_POSITION)

    def test_plain_class(self):
        cls = ObjectClass("motels", static_attributes=("price",))
        assert not cls.is_spatial
        assert cls.position_attributes == ()

    def test_bad_dimensions(self):
        with pytest.raises(SchemaError):
            ObjectClass("x", spatial_dimensions=1)

    def test_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            ObjectClass("x", static_attributes=("a",), dynamic_attributes=("a",))
        with pytest.raises(SchemaError):
            ObjectClass(
                "x", static_attributes=(X_POSITION,), spatial_dimensions=2
            )

    def test_is_dynamic(self):
        cls = aircraft_class()
        assert cls.is_dynamic("fuel")
        assert cls.is_dynamic(X_POSITION)
        assert not cls.is_dynamic("callsign")

    def test_has_attribute(self):
        cls = aircraft_class()
        assert cls.has_attribute("callsign")
        assert cls.has_attribute(Z_POSITION)
        assert not cls.has_attribute("nope")


class TestMostObject:
    def test_construction_requires_all_dynamic(self):
        with pytest.raises(SchemaError):
            MostObject("a", aircraft_class(), dynamic={})

    def test_unknown_static_rejected(self):
        cls = ObjectClass("plain", static_attributes=("a",))
        with pytest.raises(SchemaError):
            MostObject("x", cls, static={"b": 1})

    def test_unknown_dynamic_rejected(self):
        cls = ObjectClass("plain")
        with pytest.raises(SchemaError):
            MostObject("x", cls, dynamic={"zap": DynamicAttribute.static(1)})

    def test_static_value(self):
        obj = make_aircraft()
        assert obj.static_value("callsign") == "KAL"
        with pytest.raises(SchemaError):
            obj.static_value("fuel")

    def test_dynamic_attribute(self):
        obj = make_aircraft()
        assert obj.dynamic_attribute("fuel").speed == -2.0
        with pytest.raises(SchemaError):
            obj.dynamic_attribute("callsign")

    def test_value_at_dispatch(self):
        obj = make_aircraft()
        assert obj.value_at("callsign", 99) == "KAL"
        assert obj.value_at("fuel", 10) == 980.0
        assert obj.value_at(X_POSITION, 2) == 10.0

    def test_position_at(self):
        obj = make_aircraft()
        assert obj.position_at(2) == Point(10.0, 0.0, 30000.0)

    def test_moving_point(self):
        mp = make_aircraft().moving_point()
        assert mp.position_at(2) == Point(10.0, 0.0, 30000.0)
        assert mp.velocity == Point(5.0, 0.0, 0.0)

    def test_moving_point_mixed_updatetimes(self):
        cls = ObjectClass("cars", spatial_dimensions=2)
        obj = MostObject(
            "c",
            cls,
            dynamic={
                X_POSITION: DynamicAttribute.linear(0.0, 1.0, updatetime=0),
                Y_POSITION: DynamicAttribute.linear(5.0, 2.0, updatetime=3),
            },
        )
        mp = obj.moving_point()
        assert mp.anchor_time == 3
        # x has moved 3 units by the anchor; y starts at its own value.
        assert mp.position_at(3) == Point(3.0, 5.0)
        assert mp.position_at(4) == Point(4.0, 7.0)

    def test_moving_point_mixed_updatetimes_nonlinear(self):
        import math

        cls = ObjectClass("cars", spatial_dimensions=2)
        obj = MostObject(
            "c",
            cls,
            dynamic={
                X_POSITION: DynamicAttribute(
                    0.0, updatetime=0, function=SinusoidFunction(2, 0.5)
                ),
                Y_POSITION: DynamicAttribute.linear(0.0, 1.0, updatetime=4),
            },
        )
        mp = obj.moving_point()
        # MovingPoint evaluation must agree with per-attribute evaluation.
        for t in (4, 5, 7.5, 10):
            assert mp.position_at(t).x == pytest.approx(
                obj.value_at(X_POSITION, t)
            )
            assert mp.position_at(t).y == pytest.approx(
                obj.value_at(Y_POSITION, t)
            )

    def test_non_spatial_has_no_position(self):
        cls = ObjectClass("motels", static_attributes=("price",))
        obj = MostObject("m", cls, static={"price": 10})
        with pytest.raises(SchemaError):
            obj.position_at(0)
        with pytest.raises(SchemaError):
            obj.moving_point()

    def test_repr(self):
        assert "aircraft" in repr(make_aircraft())
