"""Update-impact pruning at the continuous-query and trigger layers.

Covers the :meth:`ContinuousQuery.affects` contract end to end:

* the unknown-object blind spot — an update carrying a *bound* class
  name but an object id the database never admitted used to dirty the
  query and force a spurious refresh; it is now provably inert;
* kind filtering — attribute-only updates streamed into a position-only
  query cause zero re-evaluations while the answer stays identical to a
  naive (unpruned) twin's, and the same pruning reaches the trigger
  layer;
* the refresh path — ``needs_refresh``, ``skipped_by_deps`` and
  ``subtrees_skipped`` bookkeeping.
"""

import random

import pytest

from repro.core import (
    ContinuousQuery,
    DynamicAttribute,
    MostDatabase,
    ObjectClass,
    TemporalTrigger,
)
from repro.core.database import MostUpdate
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Polygon

POSITION_QUERY = "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 8 INSIDE(o, P)"
FUEL_QUERY = "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 8 o.fuel < 10"


def build_db(n_cars: int = 3) -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "cars",
            static_attributes=("color",),
            dynamic_attributes=("fuel",),
            spatial_dimensions=2,
        )
    )
    db.create_class(ObjectClass("trucks", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    for i in range(n_cars):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(float(3 * i), 0.0),
            Point(1.0, 0.0),
            static={"color": "red"},
            dynamic_extra={"fuel": DynamicAttribute.linear(50.0, -1.0)},
        )
    return db


def register(db, text, horizon: int = 20, **kw) -> ContinuousQuery:
    return ContinuousQuery(db, parse_query(text), horizon=horizon, **kw)


class TestUnknownObjectBlindSpot:
    def test_bound_class_unknown_id_is_inert(self):
        db = build_db()
        cq = register(db, POSITION_QUERY)
        before = cq.evaluations
        ghost = MostUpdate(
            time=db.clock.now,
            object_id="ghost",
            attribute="x_position",
            old=None,
            new=1.0,
            class_name="cars",
        )
        assert not cq.affects(ghost)
        cq._on_update(ghost)
        assert not cq.needs_refresh
        cq.current()
        assert cq.evaluations == before

    def test_unbound_class_is_inert(self):
        db = build_db()
        cq = register(db, POSITION_QUERY)
        assert not cq.affects(
            MostUpdate(0, "t0", "x_position", None, 1.0, class_name="trucks")
        )

    def test_no_class_unknown_id_stays_conservative(self):
        db = build_db()
        cq = register(db, POSITION_QUERY)
        # No class metadata and no database row: relevance cannot be
        # decided, so the update must conservatively dirty the query.
        assert cq.affects(
            MostUpdate(0, "ghost", "x_position", None, 1.0)
        )


class TestKindFiltering:
    def test_attribute_update_skipped_by_position_query(self):
        db = build_db()
        cq = register(db, POSITION_QUERY)
        before = cq.evaluations
        db.clock.tick()
        db.update_dynamic("c0", "fuel", value=5.0)
        assert not cq.needs_refresh
        cq.current()
        assert cq.evaluations == before
        assert cq.skipped_by_deps == 1

    def test_static_update_skipped_by_position_query(self):
        db = build_db()
        cq = register(db, POSITION_QUERY)
        db.clock.tick()
        db.update_static("c0", "color", "blue")
        assert not cq.needs_refresh
        assert cq.skipped_by_deps == 1

    def test_position_update_skipped_by_fuel_query(self):
        db = build_db()
        cq = register(db, FUEL_QUERY)
        before = cq.evaluations
        db.clock.tick()
        db.update_motion("c0", Point(2.0, 0.0))
        assert not cq.needs_refresh
        cq.current()
        assert cq.evaluations == before
        # One skip per updated position axis (x and y).
        assert cq.skipped_by_deps == 2

    def test_position_update_still_dirties_position_query(self):
        db = build_db()
        cq = register(db, POSITION_QUERY)
        before = cq.evaluations
        db.clock.tick()
        db.update_motion("c0", Point(0.5, 0.0))
        assert cq.needs_refresh
        cq.current()
        assert cq.evaluations == before + 1

    @pytest.mark.parametrize("method", ["interval", "naive", "incremental"])
    def test_differential_attribute_storm(self, method):
        """Seeded attribute/static-only storm into a position query:
        zero re-evaluations, answers identical to an unpruned twin."""
        db = build_db(n_cars=4)
        pruned = register(db, POSITION_QUERY, horizon=100, method=method)
        naive = register(db, POSITION_QUERY, horizon=100, method=method)
        naive._deps = None  # the unpruned twin accepts every class match
        base_evals = pruned.evaluations
        emitted = []
        unsub = db.on_update(emitted.append)
        rng = random.Random(7)
        for step in range(30):
            car = f"c{rng.randrange(4)}"
            if rng.random() < 0.5:
                db.update_dynamic(car, "fuel", value=rng.uniform(0, 60))
            else:
                db.update_static(car, "color", rng.choice(["red", "blue"]))
            assert pruned.current() == naive.current()
            db.clock.tick()
        unsub()
        assert emitted, "the storm emitted no updates"
        assert pruned.evaluations == base_evals
        assert naive.evaluations > base_evals
        assert pruned.skipped_by_deps == len(emitted)

    def test_trigger_layer_prunes_by_kind(self):
        db = build_db()
        cq = register(db, POSITION_QUERY)
        fired = []
        trigger = TemporalTrigger(db, cq, on_enter=fired.append)
        evals_before = cq.evaluations
        db.clock.tick()
        db.update_dynamic("c0", "fuel", value=1.0)
        # The trigger's update hook consulted affects() and skipped the
        # recheck entirely — no reevaluation behind the query's back.
        assert cq.evaluations == evals_before
        assert cq.skipped_by_deps >= 1
        trigger.cancel()


class TestIncrementalSubtreeSkip:
    QUERY = (
        "RETRIEVE o FROM cars o "
        "WHERE EVENTUALLY WITHIN 8 (INSIDE(o, P) AND o.fuel > 0)"
    )

    def test_mixed_query_skips_clean_subtree(self):
        db = build_db()
        cq = register(db, self.QUERY, method="incremental")
        assert cq.incremental_rejection is None
        db.clock.tick()
        db.update_dynamic("c0", "fuel", value=30.0)
        cq.current()
        # The INSIDE subtree reads positions only; a fuel update leaves
        # it untouched and the evaluator reused its cached relation.
        assert cq.incremental_refreshes == 1
        assert cq.subtrees_skipped >= 1

    def test_skip_matches_full_reevaluation(self):
        db = build_db(n_cars=4)
        incremental = register(db, self.QUERY, horizon=100, method="incremental")
        reference = register(db, self.QUERY, horizon=100, method="interval")
        rng = random.Random(11)
        for _ in range(20):
            car = f"c{rng.randrange(4)}"
            if rng.random() < 0.5:
                db.update_dynamic(car, "fuel", value=rng.uniform(-5, 40))
            else:
                db.update_motion(
                    car,
                    Point(rng.uniform(-2, 2), rng.uniform(-2, 2)),
                    position=Point(rng.uniform(-2, 12), rng.uniform(-2, 12)),
                )
            assert incremental.current() == reference.current()
            db.clock.tick()
        assert incremental.subtrees_skipped >= 1


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
