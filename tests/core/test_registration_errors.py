"""Registration fails fast on unknown object classes (PR 7 satellite).

A query whose FROM clause names a class the database never defined must
raise a clean :class:`SchemaError` naming both the missing class and the
classes the database does have — at registration (continuous/persistent)
or first evaluation (instantaneous), never a deep evaluator error.
"""

import pytest

from repro.core import (
    ContinuousQuery,
    InstantaneousQuery,
    MostDatabase,
    ObjectClass,
    PersistentQuery,
)
from repro.errors import SchemaError
from repro.ftl import parse_query
from repro.geometry import Point


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(ObjectClass("cars", spatial_dimensions=2))
    database.add_moving_object("cars", "car-1", Point(0.0, 0.0), Point(1.0, 0.0))
    return database


GHOST = "RETRIEVE g FROM ghosts g, cars c WHERE DIST(g, c) <= 5"


def assert_names_classes(excinfo):
    message = str(excinfo.value)
    assert "ghosts" in message  # the missing class
    assert "cars" in message  # what the database does define


class TestFailFast:
    def test_continuous_query_refused_at_registration(self, db):
        with pytest.raises(SchemaError) as excinfo:
            ContinuousQuery(db, parse_query(GHOST), horizon=10)
        assert_names_classes(excinfo)

    def test_persistent_query_refused_at_registration(self, db):
        with pytest.raises(SchemaError) as excinfo:
            PersistentQuery(db, parse_query(GHOST), horizon=10)
        assert_names_classes(excinfo)

    def test_instantaneous_query_refused_at_first_evaluation(self, db):
        q = InstantaneousQuery(parse_query(GHOST), horizon=10)
        with pytest.raises(SchemaError) as excinfo:
            q.evaluate(db)
        assert_names_classes(excinfo)

    def test_all_missing_classes_listed(self, db):
        text = "RETRIEVE g FROM ghosts g, wraiths w WHERE DIST(g, w) <= 5"
        with pytest.raises(SchemaError) as excinfo:
            ContinuousQuery(db, parse_query(text), horizon=10)
        message = str(excinfo.value)
        assert "ghosts" in message and "wraiths" in message

    def test_known_classes_still_register(self, db):
        text = "RETRIEVE a FROM cars a, cars b WHERE DIST(a, b) <= 5"
        cq = ContinuousQuery(db, parse_query(text), horizon=10)
        assert cq.current() is not None

    def test_empty_database_reported_as_none(self):
        empty = MostDatabase()
        with pytest.raises(SchemaError) as excinfo:
            ContinuousQuery(empty, parse_query(GHOST), horizon=10)
        assert "none" in str(excinfo.value)
