"""Tests for the three query types of section 2.3.

The centrepiece is the paper's own discriminating scenario: the
speed-doubling query ``R`` retrieves object ``o`` only when entered as a
*persistent* query, at time 2 — never as instantaneous or continuous.
"""

import pytest

from repro.core import (
    ContinuousQuery,
    InstantaneousQuery,
    MostDatabase,
    ObjectClass,
    PersistentQuery,
)
from repro.errors import QueryError
from repro.ftl import parse_query
from repro.geometry import Point
from repro.motion import LinearFunction
from repro.spatial import Polygon


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(
        ObjectClass("cars", static_attributes=("plate",), spatial_dimensions=2)
    )
    database.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    return database


def add_car(db, object_id, x, vx, y=5.0):
    db.add_moving_object(
        "cars", object_id, Point(x, y), Point(vx, 0), static={"plate": object_id}
    )


ENTER_P = "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 INSIDE(o, P)"


class TestInstantaneous:
    def test_enter_polygon_within_3(self, db):
        add_car(db, "near", -2, 1)   # enters P at t=2
        add_car(db, "far", -20, 1)   # enters P at t=20
        add_car(db, "inside", 5, 0)  # already inside
        q = InstantaneousQuery(parse_query(ENTER_P), horizon=30)
        assert q.evaluate(db) == {("near",), ("inside",)}

    def test_answer_depends_on_entry_time(self, db):
        add_car(db, "far", -20, 1)
        q = InstantaneousQuery(parse_query(ENTER_P), horizon=30)
        assert q.evaluate(db) == set()
        db.clock.tick(18)  # now t=18; car at -2, enters at 20, within 3
        assert q.evaluate(db) == {("far",)}

    def test_methods_agree(self, db):
        add_car(db, "a", -2, 1)
        add_car(db, "b", -9, 2)
        q = InstantaneousQuery(parse_query(ENTER_P), horizon=15)
        assert q.evaluate(db, method="interval") == q.evaluate(db, method="naive")

    def test_negative_horizon(self, db):
        with pytest.raises(QueryError):
            InstantaneousQuery(parse_query(ENTER_P), horizon=-1)


class TestContinuous:
    def test_single_evaluation_under_ticks(self, db):
        add_car(db, "near", -2, 1)
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=30)
        assert cq.evaluations == 1
        db.clock.tick(10)
        # Re-display is interval lookup only: no reevaluation on ticks.
        assert cq.evaluations == 1

    def test_display_changes_without_updates(self, db):
        add_car(db, "far", -20, 1)  # enters P at 20, leaves at 30
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=60)
        assert cq.current() == set()
        db.clock.tick(17)  # within-3 window reaches t=20
        assert cq.current() == {("far",)}

    def test_reevaluated_on_relevant_update(self, db):
        add_car(db, "car", -20, 1)
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=60)
        assert cq.current() == set()
        db.update_motion("car", Point(10, 0))  # now enters at t=2
        assert cq.current() == {("car",)}
        # Lazy revalidation coalesces the per-axis updates into one.
        assert cq.evaluations == 2

    def test_answer_tuples_shape(self, db):
        add_car(db, "near", -2, 1)  # inside P during [2, 12]
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=40)
        tuples = cq.answer_tuples()
        assert len(tuples) == 1
        # Eventually-within-3 of inside [2,12] is [0, 12] from entry 0.
        assert tuples[0].values == ("near",)
        assert tuples[0].begin == 0
        assert tuples[0].end == 12
        assert tuples[0].active_at(5)
        assert not tuples[0].active_at(13)

    def test_expiry(self, db):
        add_car(db, "inside", 5, 0)
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=5)
        assert cq.current() == {("inside",)}
        db.clock.tick(6)
        assert cq.current() == set()

    def test_cancel(self, db):
        add_car(db, "car", -2, 1)
        cq = ContinuousQuery(db, parse_query(ENTER_P), horizon=30)
        cq.cancel()
        cq.cancel()
        db.update_motion("car", Point(9, 9))
        assert cq.evaluations == 1
        with pytest.raises(QueryError):
            cq.current()


SPEED_DOUBLES = (
    "RETRIEVE o FROM cars o WHERE [x := o.x_position.function]"
    " EVENTUALLY o.x_position.function >= 2 * x"
)


class TestPersistentSection23:
    """The paper's query R: 'retrieve the objects whose speed in the
    direction of the X-axis doubles within 10 minutes'."""

    def _setup(self, db):
        # At time 0 the function is 5t; at 1 it becomes 7t; at 2 it is 10t.
        add_car(db, "o", 0, 5)

    def test_instantaneous_never_retrieves(self, db):
        self._setup(db)
        q = InstantaneousQuery(parse_query(SPEED_DOUBLES), horizon=10)
        assert q.evaluate(db) == set()
        db.clock.tick(1)
        db.update_dynamic("o", "x_position", function=LinearFunction(7))
        db.clock.tick(1)
        db.update_dynamic("o", "x_position", function=LinearFunction(10))
        # Even after the updates: along any *future* history the speed is
        # constant, so the instantaneous query still returns nothing.
        assert q.evaluate(db) == set()

    def test_persistent_retrieves_at_time_2(self, db):
        self._setup(db)
        pq = PersistentQuery(db, parse_query(SPEED_DOUBLES), horizon=10)
        assert pq.current() == set()
        db.clock.tick(1)
        db.update_dynamic("o", "x_position", function=LinearFunction(7))
        assert pq.current() == set()  # 7 < 2 * 5
        db.clock.tick(1)
        db.update_dynamic("o", "x_position", function=LinearFunction(10))
        assert pq.current() == {("o",)}  # 10 >= 2 * 5 at time 2

    def test_persistent_change_notification(self, db):
        self._setup(db)
        pq = PersistentQuery(db, parse_query(SPEED_DOUBLES), horizon=10)
        changes = []
        pq.on_change(changes.append)
        db.clock.tick(2)
        db.update_dynamic("o", "x_position", function=LinearFunction(10))
        assert changes == [{("o",)}]

    def test_persistent_cancel(self, db):
        self._setup(db)
        pq = PersistentQuery(db, parse_query(SPEED_DOUBLES), horizon=10)
        evaluations = pq.evaluations
        pq.cancel()
        db.update_dynamic("o", "x_position", function=LinearFunction(10))
        assert pq.evaluations == evaluations
