"""Staleness-aware graceful degradation of query answers (DESIGN.md §4).

A continuous query with a ``staleness_bound`` suppresses tuples whose
supporting objects have not been heard from within the bound; the stamped
view flags them instead.  Late updates reconcile the answer through the
ordinary refresh path.
"""

import pytest

from repro.core import (
    ContinuousQuery,
    InstantaneousQuery,
    MostDatabase,
    ObjectClass,
)
from repro.errors import QueryError
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Polygon


INSIDE_P = "RETRIEVE o FROM cars o WHERE INSIDE(o, P)"
NEAR = "RETRIEVE o FROM cars o, beacons b WHERE DIST(o, b) <= 100"


@pytest.fixture
def db():
    database = MostDatabase()
    database.create_class(ObjectClass("cars", spatial_dimensions=2))
    database.create_class(ObjectClass("beacons", spatial_dimensions=2))
    database.define_region("P", Polygon.rectangle(0, 0, 100, 100))
    return database


def add_car(db, object_id, x=5.0, y=5.0, vx=0.0, tracked=True):
    db.add_moving_object("cars", object_id, Point(x, y), Point(vx, 0.0))
    if tracked:
        db.track(object_id)


class TestDegradedContinuousQuery:
    def test_stale_object_suppressed_from_current(self, db):
        add_car(db, "fresh")
        add_car(db, "quiet")
        cq = ContinuousQuery(
            db, parse_query(INSIDE_P), horizon=30, staleness_bound=5
        )
        assert cq.current() == {("fresh",), ("quiet",)}
        db.clock.tick(6)  # both now 6 ticks old...
        db.update_motion("fresh", Point(0.0, 0.0))  # ...fresh phones home
        assert cq.current() == {("fresh",)}
        assert cq.suppressed == 1

    def test_untracked_objects_never_degrade(self, db):
        add_car(db, "local", tracked=False)
        cq = ContinuousQuery(
            db, parse_query(INSIDE_P), horizon=30, staleness_bound=2
        )
        db.clock.tick(10)
        assert cq.current() == {("local",)}
        assert cq.suppressed == 0

    def test_no_bound_means_no_degradation(self, db):
        add_car(db, "quiet")
        cq = ContinuousQuery(db, parse_query(INSIDE_P), horizon=30)
        db.clock.tick(10)
        assert cq.current() == {("quiet",)}

    def test_answer_tuples_suppressed_and_include_stale(self, db):
        add_car(db, "quiet")
        cq = ContinuousQuery(
            db, parse_query(INSIDE_P), horizon=30, staleness_bound=5
        )
        db.clock.tick(6)
        assert cq.answer_tuples() == []
        full = cq.answer_tuples(include_stale=True)
        assert [t.values for t in full] == [("quiet",)]

    def test_late_update_reconciles_answer(self, db):
        add_car(db, "quiet")
        cq = ContinuousQuery(
            db, parse_query(INSIDE_P), horizon=40, staleness_bound=5
        )
        db.clock.tick(8)
        assert cq.current() == set()
        # The delayed update finally lands (e.g. through the ack/retry
        # pipeline): the ordinary refresh path reinstates the tuple.
        db.ingest_motion("quiet", 0, Point(0.0, 0.0), Point(5.0, 5.0), 3)
        assert cq.current() == {("quiet",)}
        assert db.staleness("quiet") == 0

    def test_non_target_support_counts(self, db):
        # The beacon variable b is not retrieved, but tuples still read
        # its position — a stale *beacon* degrades the car tuples.
        add_car(db, "car", tracked=False)
        db.add_moving_object("beacons", "tower", Point(0.0, 0.0))
        db.track("tower")
        cq = ContinuousQuery(
            db, parse_query(NEAR), horizon=30, staleness_bound=4
        )
        assert cq.current() == {("car",)}
        db.clock.tick(5)
        assert cq.current() == set()
        assert cq.suppressed == 1

    def test_stamped_tuples_flag_instead_of_suppress(self, db):
        add_car(db, "fresh")
        add_car(db, "quiet")
        cq = ContinuousQuery(
            db, parse_query(INSIDE_P), horizon=30, staleness_bound=5
        )
        db.clock.tick(6)
        db.update_motion("fresh", Point(0.0, 0.0))
        stamped = {t.values[0]: t for t in cq.stamped_tuples()}
        assert not stamped["fresh"].degraded
        assert stamped["fresh"].max_age == 0
        assert stamped["quiet"].degraded
        assert stamped["quiet"].max_age == 6
        assert stamped["quiet"].support == ("quiet",)

    def test_degradation_invariant(self, db):
        """No non-degraded stamped tuple ever depends on an attribute
        older than the bound — the acceptance-criteria invariant."""
        for i in range(4):
            add_car(db, f"c{i}", x=float(i))
        cq = ContinuousQuery(
            db, parse_query(INSIDE_P), horizon=40, staleness_bound=3
        )
        for step in range(12):
            db.clock.tick()
            if step % 3 == 0:
                db.update_motion(f"c{step % 4}", Point(0.0, 0.0))
            now = db.clock.now
            for t in cq.stamped_tuples():
                if t.active_at(now) and not t.degraded:
                    assert all(
                        db.staleness(v) <= 3 for v in t.support
                    )
            # The degraded display is exactly the fresh instantiations.
            shown = cq.current()
            flagged = {
                t.values
                for t in cq.stamped_tuples()
                if t.active_at(now) and not t.degraded
            }
            assert shown == flagged

    def test_bound_validation(self, db):
        with pytest.raises(QueryError):
            ContinuousQuery(
                db, parse_query(INSIDE_P), horizon=5, staleness_bound=-1
            )

    def test_incremental_method_supports_degradation(self, db):
        add_car(db, "fresh")
        add_car(db, "quiet")
        cq = ContinuousQuery(
            db,
            parse_query(INSIDE_P),
            horizon=30,
            method="incremental",
            staleness_bound=5,
        )
        db.clock.tick(6)
        # A genuine velocity change: a same-vector heartbeat would be
        # dropped by the temporal-validity gate without refreshing.
        db.update_motion("fresh", Point(0.5, 0.0))
        assert cq.current() == {("fresh",)}
        assert cq.incremental_refreshes >= 1


class TestStampedInstantaneous:
    def test_max_age_reported(self, db):
        add_car(db, "old")
        db.clock.tick(7)
        add_car(db, "new")
        q = InstantaneousQuery(parse_query(INSIDE_P), horizon=10)
        stamped = {t.values[0]: t for t in q.stamped(db)}
        assert stamped["old"].max_age == 7
        assert stamped["new"].max_age == 0
        assert not stamped["old"].degraded  # no bound given

    def test_bound_flags_degraded(self, db):
        add_car(db, "old")
        db.clock.tick(7)
        q = InstantaneousQuery(parse_query(INSIDE_P), horizon=10)
        (t,) = q.stamped(db, staleness_bound=5)
        assert t.degraded
        (t,) = q.stamped(db, staleness_bound=10)
        assert not t.degraded
