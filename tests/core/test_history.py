"""Unit tests for database histories (section 2.2 semantics)."""

import pytest

from repro.core import FutureHistory, MostDatabase, ObjectClass, RecordedHistory
from repro.errors import QueryError
from repro.geometry import Point
from repro.motion import LinearFunction


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(
        ObjectClass("cars", static_attributes=("color",), spatial_dimensions=2)
    )
    database.add_moving_object(
        "cars", "c1", Point(0, 0), Point(5, 0), static={"color": "red"}
    )
    return database


class TestFutureHistory:
    def test_dynamic_values_evolve(self, db):
        h = FutureHistory(db)
        assert h.value("c1", "x_position", 0) == 0
        assert h.value("c1", "x_position", 4) == 20
        assert h.position("c1", 2) == Point(10, 0)

    def test_static_values_constant(self, db):
        h = FutureHistory(db)
        assert h.value("c1", "color", 0) == "red"
        assert h.value("c1", "color", 1000) == "red"

    def test_snapshot_isolated_from_updates(self, db):
        h = FutureHistory(db)
        db.clock.tick(1)
        db.update_motion("c1", Point(0, 99))
        db.update_static("c1", "color", "blue")
        # The history keeps the world as of its start time.
        assert h.value("c1", "x_position", 4) == 20
        assert h.value("c1", "color", 4) == "red"

    def test_population_frozen(self, db):
        h = FutureHistory(db)
        db.add_moving_object("cars", "c2", Point(1, 1))
        assert h.object_ids("cars") == ["c1"]

    def test_unknown_attribute(self, db):
        h = FutureHistory(db)
        with pytest.raises(QueryError):
            h.value("c1", "altitude", 0)

    def test_state_view(self, db):
        h = FutureHistory(db)
        state = h.state(3)
        assert state.value("c1", "x_position") == 15
        assert state.position("c1") == Point(15, 0)
        with pytest.raises(QueryError):
            h.state(-1)

    def test_moving_point(self, db):
        h = FutureHistory(db)
        assert h.moving_point("c1").velocity == Point(5, 0)

    def test_dynamic_triple(self, db):
        h = FutureHistory(db)
        assert h.dynamic_triple("c1", "x_position").speed == 5
        with pytest.raises(QueryError):
            h.dynamic_triple("c1", "color")

    def test_region_passthrough(self, db):
        from repro.spatial import Ball

        db.define_region("C", Ball(Point(0, 0), 1))
        assert FutureHistory(db).region("C").radius == 1


class TestRecordedHistory:
    def test_replays_past_versions(self, db):
        # Section 2.3 scenario: speed 5, then updated to 7 at t=1, 10 at t=2.
        db.clock.tick(1)
        db.update_dynamic("c1", "x_position", function=LinearFunction(7))
        db.clock.tick(1)
        db.update_dynamic("c1", "x_position", function=LinearFunction(10))
        h = RecordedHistory(db, start=0)
        # x(t): 5t on [0,1], 5 + 7(t-1) on [1,2], 12 + 10(t-2) after.
        assert h.value("c1", "x_position", 0) == 0
        assert h.value("c1", "x_position", 1) == 5
        assert h.value("c1", "x_position", 2) == 12
        assert h.value("c1", "x_position", 3) == 22

    def test_future_beyond_now_uses_current_triple(self, db):
        db.clock.tick(2)
        db.update_motion("c1", Point(1, 0))
        h = RecordedHistory(db, start=0)
        # Beyond now: speed 1 from position (10, 0) at time 2.
        assert h.value("c1", "x_position", 12) == 20

    def test_static_rollback(self, db):
        db.clock.tick(5)
        db.update_static("c1", "color", "blue")
        h = RecordedHistory(db, start=0)
        assert h.value("c1", "color", 3) == "red"
        assert h.value("c1", "color", 5) == "blue"
        assert h.value("c1", "color", 9) == "blue"

    def test_population_is_current(self, db):
        h = RecordedHistory(db, start=0)
        db.add_moving_object("cars", "c2", Point(1, 1))
        assert set(h.object_ids("cars")) == {"c1", "c2"}
