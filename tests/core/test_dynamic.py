"""Unit tests for dynamic attributes (section 2.1 semantics)."""

import pytest

from repro.core import DynamicAttribute
from repro.errors import MotionError
from repro.motion import LinearFunction, PiecewiseLinearFunction, SinusoidFunction


class TestConstruction:
    def test_triple(self):
        a = DynamicAttribute(value=3.0, updatetime=2.0, function=LinearFunction(5))
        assert a.value == 3.0
        assert a.updatetime == 2.0
        assert a.function == LinearFunction(5)

    def test_function_zero_at_zero_enforced(self):
        class Bad:
            def value(self, t):
                return t + 1

            is_linear = True

            def linear_breakpoints(self, duration):
                return [(0.0, 1.0)]

        with pytest.raises(MotionError):
            DynamicAttribute(value=0, function=Bad())

    def test_static_factory(self):
        a = DynamicAttribute.static(7.0)
        assert a.value_at(100) == 7.0

    def test_linear_factory(self):
        a = DynamicAttribute.linear(10.0, 5.0, updatetime=2.0)
        assert a.value_at(2) == 10.0
        assert a.value_at(4) == 20.0


class TestEvaluation:
    def test_paper_rule(self):
        # Value at updatetime + t0 is value + function(t0).
        a = DynamicAttribute(value=1.0, updatetime=3.0, function=LinearFunction(2))
        assert a.value_at(3) == 1.0
        assert a.value_at(5) == 5.0

    def test_speed(self):
        assert DynamicAttribute.linear(0, 5).speed == 5
        with pytest.raises(MotionError):
            DynamicAttribute(0, function=SinusoidFunction(1, 1)).speed

    def test_sub_attribute_access(self):
        a = DynamicAttribute(value=1.0, updatetime=3.0, function=LinearFunction(2))
        assert a.sub_attribute("value") == 1.0
        assert a.sub_attribute("updatetime") == 3.0
        assert a.sub_attribute("function") == LinearFunction(2)
        with pytest.raises(MotionError):
            a.sub_attribute("speed")


class TestUpdates:
    def test_update_function_keeps_implied_value(self):
        a = DynamicAttribute.linear(0.0, 5.0)
        b = a.updated(at_time=2, function=LinearFunction(7))
        assert b.value == 10.0
        assert b.updatetime == 2
        assert b.value_at(3) == 17.0

    def test_update_value_keeps_function(self):
        a = DynamicAttribute.linear(0.0, 5.0)
        b = a.updated(at_time=2, value=100.0)
        assert b.function == LinearFunction(5)
        assert b.value_at(3) == 105.0

    def test_update_both(self):
        a = DynamicAttribute.linear(0.0, 5.0)
        b = a.updated(at_time=2, value=0.0, function=LinearFunction(-1))
        assert b.value_at(4) == -2.0

    def test_update_into_past_rejected(self):
        a = DynamicAttribute.linear(0.0, 5.0, updatetime=10)
        with pytest.raises(MotionError):
            a.updated(at_time=5)

    def test_immutability(self):
        a = DynamicAttribute.linear(0.0, 5.0)
        a.updated(at_time=2, value=99.0)
        assert a.value == 0.0

    def test_piecewise_function(self):
        f = PiecewiseLinearFunction([(0, 5), (1, 7)])
        a = DynamicAttribute(value=0.0, function=f)
        assert a.value_at(2) == 12.0

    def test_str(self):
        a = DynamicAttribute.linear(1.0, 5.0)
        assert "5*t" in str(a)
