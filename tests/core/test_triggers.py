"""Unit tests for temporal triggers (section 2.3)."""

import pytest

from repro.core import (
    ContinuousQuery,
    MostDatabase,
    ObjectClass,
    PersistentQuery,
    TemporalTrigger,
)
from repro.errors import QueryError
from repro.ftl import parse_query
from repro.geometry import Point
from repro.motion import LinearFunction
from repro.spatial import Polygon


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(ObjectClass("cars", spatial_dimensions=2))
    database.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    return database


INSIDE_P = "RETRIEVE o FROM cars o WHERE INSIDE(o, P)"


class TestContinuousTrigger:
    def test_fires_on_entry_by_motion(self, db):
        db.add_moving_object("cars", "c1", Point(-3, 5), Point(1, 0))
        fired = []
        cq = ContinuousQuery(db, parse_query(INSIDE_P), horizon=50)
        trigger = TemporalTrigger(db, cq, on_enter=fired.append)
        assert fired == []
        db.clock.tick(2)
        assert fired == []
        db.clock.tick(1)  # t=3: x=0, on the boundary -> inside
        assert fired == [("c1",)]
        assert trigger.firings == 1

    def test_fires_immediately_for_already_satisfied(self, db):
        db.add_moving_object("cars", "c1", Point(5, 5))
        fired = []
        cq = ContinuousQuery(db, parse_query(INSIDE_P), horizon=50)
        TemporalTrigger(db, cq, on_enter=fired.append)
        assert fired == [("c1",)]

    def test_on_leave(self, db):
        db.add_moving_object("cars", "c1", Point(9, 5), Point(1, 0))
        entered, left = [], []
        cq = ContinuousQuery(db, parse_query(INSIDE_P), horizon=50)
        TemporalTrigger(db, cq, on_enter=entered.append, on_leave=left.append)
        db.clock.tick(3)  # leaves at t > 1
        assert entered == [("c1",)]
        assert left == [("c1",)]

    def test_fires_on_update(self, db):
        db.add_moving_object("cars", "c1", Point(50, 50))
        fired = []
        cq = ContinuousQuery(db, parse_query(INSIDE_P), horizon=50)
        TemporalTrigger(db, cq, on_enter=fired.append)
        db.update_motion("c1", Point(0, 0), position=Point(5, 5))
        assert fired == [("c1",)]

    def test_cancel(self, db):
        db.add_moving_object("cars", "c1", Point(-3, 5), Point(1, 0))
        fired = []
        cq = ContinuousQuery(db, parse_query(INSIDE_P), horizon=50)
        trigger = TemporalTrigger(db, cq, on_enter=fired.append)
        trigger.cancel()
        trigger.cancel()
        db.clock.tick(10)
        assert fired == []

    def test_rejects_wrong_query_type(self, db):
        with pytest.raises(QueryError):
            TemporalTrigger(db, object(), on_enter=lambda i: None)


class TestPersistentTrigger:
    def test_fires_when_persistent_answer_changes(self, db):
        db.add_moving_object("cars", "o", Point(0, 5), Point(5, 0))
        query = parse_query(
            "RETRIEVE o FROM cars o WHERE [x := o.x_position.function]"
            " EVENTUALLY o.x_position.function >= 2 * x"
        )
        pq = PersistentQuery(db, query, horizon=10)
        fired = []
        TemporalTrigger(db, pq, on_enter=fired.append)
        db.clock.tick(2)
        db.update_dynamic("o", "x_position", function=LinearFunction(10))
        assert fired == [("o",)]
