"""Persistent queries through the interval algorithm (paper future work).

The paper postpones persistent-query processing.  Our extension evaluates
them with the appendix interval algorithm whenever the recorded
trajectories are continuous piecewise-linear, falling back to the
per-state evaluator otherwise; these tests pin the reconstruction, the
fallback triggers, and the equivalence of the two paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MostDatabase,
    ObjectClass,
    PersistentQuery,
    RecordedHistory,
)
from repro.errors import QueryError
from repro.ftl import parse_query
from repro.geometry import Point
from repro.motion import LinearFunction, SinusoidFunction
from repro.spatial import Polygon


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(ObjectClass("cars", spatial_dimensions=2))
    database.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    return database


class TestRecordedMovingPoint:
    def test_single_version(self, db):
        db.add_moving_object("cars", "o", Point(1, 2), Point(3, 0))
        mp = RecordedHistory(db, 0).moving_point("o")
        assert mp.position_at(0) == Point(1, 2)
        assert mp.position_at(4) == Point(13, 2)

    def test_piecewise_from_updates(self, db):
        db.add_moving_object("cars", "o", Point(0, 0), Point(5, 0))
        db.clock.tick(2)
        db.update_motion("o", Point(1, 1))  # continuous: keeps implied pos
        mp = RecordedHistory(db, 0).moving_point("o")
        assert mp.position_at(2) == Point(10, 0)
        assert mp.position_at(4) == Point(12, 2)
        # Matches the per-value reconstruction everywhere.
        h = RecordedHistory(db, 0)
        for t in (0, 1, 2, 3, 7):
            assert mp.position_at(t).x == h.value("o", "x_position", t)
            assert mp.position_at(t).y == h.value("o", "y_position", t)

    def test_anchor_after_history_start(self, db):
        db.clock.tick(3)
        db.add_moving_object("cars", "late", Point(0, 0), Point(1, 0))
        mp = RecordedHistory(db, 0).moving_point("late")
        # Timeline starts at the insert; extrapolation backwards is linear.
        assert mp.position_at(3) == Point(0, 0)

    def test_jump_raises(self, db):
        db.add_moving_object("cars", "o", Point(0, 0), Point(5, 0))
        db.clock.tick(2)
        db.update_motion("o", Point(0, 0), position=Point(500, 0))  # GPS snap
        with pytest.raises(QueryError):
            RecordedHistory(db, 0).moving_point("o")

    def test_nonlinear_raises(self, db):
        db.add_moving_object("cars", "o", Point(0, 0), Point(1, 0))
        db.clock.tick(1)
        db.update_dynamic("o", "x_position", function=SinusoidFunction(1, 1))
        with pytest.raises(QueryError):
            RecordedHistory(db, 0).moving_point("o")

    def test_non_spatial_raises(self, db):
        db.create_class(ObjectClass("plain"))
        db.add_object("plain", "p")
        with pytest.raises(QueryError):
            RecordedHistory(db, 0).moving_point("p")


ENTER_P = "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 20 INSIDE(o, P)"


class TestPersistentViaInterval:
    def test_interval_method_used_for_continuous_histories(self, db):
        db.add_moving_object("cars", "o", Point(-50, 5), Point(1, 0))
        pq = PersistentQuery(db, parse_query(ENTER_P), horizon=80)
        assert pq.last_method == "interval"
        db.clock.tick(3)
        db.update_motion("o", Point(5, 0))  # continuous speed-up
        assert pq.last_method == "interval"
        # From the anchor (t=0): o reaches P's x-range quickly now.
        assert pq.current() == {("o",)}

    def test_fallback_to_naive_on_jump(self, db):
        db.add_moving_object("cars", "o", Point(-500, 5), Point(0, 0))
        pq = PersistentQuery(db, parse_query(ENTER_P), horizon=80)
        assert pq.current() == set()
        db.clock.tick(5)
        db.update_motion("o", Point(0, 0), position=Point(5, 5))  # jump!
        assert pq.last_method == "naive"
        assert pq.current() == {("o",)}

    def test_forced_interval_raises_on_jump(self, db):
        db.add_moving_object("cars", "o", Point(-500, 5), Point(0, 0))
        pq = PersistentQuery(db, parse_query(ENTER_P), horizon=40, method="interval")
        with pytest.raises(QueryError):
            db.clock.tick(1)
            db.update_motion("o", Point(0, 0), position=Point(5, 5))

    def test_unknown_method_rejected(self, db):
        db.add_moving_object("cars", "o", Point(0, 0))
        with pytest.raises(QueryError):
            PersistentQuery(db, parse_query(ENTER_P), horizon=10, method="psychic")

    def test_speed_doubling_query_still_works(self, db):
        # The section 2.3 query uses sub-attribute terms (per-tick sampled
        # under a recorded history) and must agree across methods.
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE [x := o.x_position.function]"
            " EVENTUALLY o.x_position.function >= 2 * x"
        )
        db.add_moving_object("cars", "o", Point(0, 5), Point(5, 0))
        via_auto = PersistentQuery(db, q, horizon=10)
        via_naive = PersistentQuery(db, q, horizon=10, method="naive")
        db.clock.tick(2)
        db.update_dynamic("o", "x_position", function=LinearFunction(10))
        assert via_auto.current() == via_naive.current() == {("o",)}


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),   # ticks until update
            st.integers(min_value=-3, max_value=3),  # new vx
            st.integers(min_value=-3, max_value=3),  # new vy
        ),
        max_size=4,
    )
)
def test_interval_equals_naive_over_recorded_histories(updates):
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    db.add_moving_object("cars", "o", Point(-8, 5), Point(2, 0))
    for dt, vx, vy in updates:
        db.clock.tick(dt)
        db.update_motion("o", Point(vx, vy))
    history_a = RecordedHistory(db, 0)
    history_b = RecordedHistory(db, 0)
    q = parse_query(ENTER_P)
    interval = dict(q.evaluate(history_a, 25, method="interval").rows())
    naive = dict(q.evaluate(history_b, 25, method="naive").rows())
    assert interval == naive
