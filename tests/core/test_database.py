"""Unit tests for the MOST database (updates, log, timelines)."""

import pytest

from repro.core import DynamicAttribute, MostDatabase, ObjectClass
from repro.errors import SchemaError
from repro.geometry import Point
from repro.motion import LinearFunction
from repro.spatial import Ball, Polygon


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(
        ObjectClass("cars", static_attributes=("plate",), spatial_dimensions=2)
    )
    database.create_class(ObjectClass("motels", static_attributes=("price",)))
    return database


class TestCatalog:
    def test_duplicate_class(self, db):
        with pytest.raises(SchemaError):
            db.create_class(ObjectClass("cars"))

    def test_unknown_class(self, db):
        with pytest.raises(SchemaError):
            db.object_class("planes")
        with pytest.raises(SchemaError):
            db.objects_of("planes")

    def test_class_names(self, db):
        assert set(db.class_names()) == {"cars", "motels"}

    def test_regions(self, db):
        db.define_region("P", Polygon.rectangle(0, 0, 1, 1))
        db.define_region("C", Ball(Point(0, 0), 5))
        assert isinstance(db.region("P"), Polygon)
        with pytest.raises(SchemaError):
            db.define_region("P", Ball(Point(0, 0), 1))
        with pytest.raises(SchemaError):
            db.region("missing")


class TestObjects:
    def test_add_moving_object(self, db):
        obj = db.add_moving_object(
            "cars", "RWW860", Point(0, 0), Point(3, 4), static={"plate": "RWW860"}
        )
        assert obj.position_at(1) == Point(3, 4)
        assert len(db) == 1
        assert db.get("RWW860") is obj
        assert [o.object_id for o in db.objects_of("cars")] == ["RWW860"]

    def test_add_stationary_by_default(self, db):
        obj = db.add_moving_object("cars", "c1", Point(5, 5))
        assert obj.moving_point().is_static

    def test_duplicate_id(self, db):
        db.add_moving_object("cars", "c1", Point(0, 0))
        with pytest.raises(SchemaError):
            db.add_moving_object("cars", "c1", Point(1, 1))

    def test_add_to_non_spatial_class(self, db):
        with pytest.raises(SchemaError):
            db.add_moving_object("motels", "m1", Point(0, 0))

    def test_dimension_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.add_moving_object("cars", "c1", Point(0, 0, 0))

    def test_plain_object(self, db):
        db.add_object("motels", "m1", static={"price": 80})
        assert db.get("m1").static_value("price") == 80

    def test_unknown_object(self, db):
        with pytest.raises(SchemaError):
            db.get("ghost")

    def test_all_objects(self, db):
        db.add_moving_object("cars", "c1", Point(0, 0))
        db.add_object("motels", "m1")
        assert {o.object_id for o in db.all_objects()} == {"c1", "m1"}


class TestUpdates:
    def test_update_motion_at_clock_time(self, db):
        db.add_moving_object("cars", "c1", Point(0, 0), Point(5, 0))
        db.clock.tick(2)
        db.update_motion("c1", Point(0, 7))
        obj = db.get("c1")
        # Position continuous at the update: (10, 0) at t=2.
        assert obj.position_at(2) == Point(10, 0)
        assert obj.position_at(3) == Point(10, 7)

    def test_update_motion_with_position_fix(self, db):
        db.add_moving_object("cars", "c1", Point(0, 0), Point(5, 0))
        db.clock.tick(1)
        db.update_motion("c1", Point(0, 0), position=Point(100, 100))
        assert db.get("c1").position_at(5) == Point(100, 100)

    def test_update_motion_dim_mismatch(self, db):
        db.add_moving_object("cars", "c1", Point(0, 0))
        with pytest.raises(SchemaError):
            db.update_motion("c1", Point(1, 2, 3))

    def test_update_static_logged(self, db):
        db.add_object("motels", "m1", static={"price": 80})
        db.clock.tick(3)
        db.update_static("m1", "price", 95)
        assert db.get("m1").static_value("price") == 95
        last = db.log[-1]
        assert last.time == 3
        assert last.old == 80
        assert last.new == 95

    def test_update_dynamic_logged(self, db):
        db.add_moving_object("cars", "c1", Point(0, 0), Point(5, 0))
        db.clock.tick(2)
        db.update_dynamic("c1", "x_position", function=LinearFunction(9))
        last = db.log[-1]
        assert isinstance(last.old, DynamicAttribute)
        assert isinstance(last.new, DynamicAttribute)
        assert last.new.speed == 9
        assert last.new.updatetime == 2

    def test_listener_notified_and_unsubscribed(self, db):
        db.add_object("motels", "m1", static={"price": 80})
        seen = []
        unsub = db.on_update(seen.append)
        db.update_static("m1", "price", 90)
        unsub()
        unsub()
        db.update_static("m1", "price", 95)
        assert len(seen) == 1


class TestTimelines:
    def test_timeline_of_never_updated_attribute(self, db):
        db.add_moving_object("cars", "c1", Point(0, 0), Point(5, 0))
        timeline = db.attribute_timeline("c1", "x_position")
        assert len(timeline) == 1
        assert timeline[0][0] == 0.0
        assert timeline[0][1].speed == 5

    def test_timeline_after_updates(self, db):
        # The section 2.3 scenario: speed 5, then 7 at time 1, then 10 at 2.
        db.add_moving_object("cars", "o", Point(0, 0), Point(5, 0))
        db.clock.tick(1)
        db.update_dynamic("o", "x_position", function=LinearFunction(7))
        db.clock.tick(1)
        db.update_dynamic("o", "x_position", function=LinearFunction(10))
        timeline = db.attribute_timeline("o", "x_position")
        assert [(t, v.speed) for t, v in timeline] == [
            (0.0, 5.0),
            (1, 7.0),
            (2, 10.0),
        ]
