"""Property tests for the vectorized kinetic primitives (DESIGN.md §8).

Every numpy path in :mod:`repro.motion.batch` replicates the scalar
helper in :mod:`repro.spatial.kinetic` operation for operation, so the
properties here demand *exact* agreement — same intervals, same emission
order, same endpoints bit for bit (``==`` treats ``-0.0`` as ``0.0``,
the one float divergence the replication permits).  Engineered tangency
and grazing strategies pin the PR 4 margin cases: ``a·(s-r)²`` contacts
where the discriminant hovers at zero, and paths that cross a polygon
exactly through a vertex.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Vector
from repro.motion import LinearFunction, MovingPoint, PiecewiseLinearFunction
from repro.motion.batch import (
    DistanceBatch,
    LinearTable,
    PolygonBatch,
    available,
    quadratic_at_most_zero_batch,
    segment_crossings_batch,
)
from repro.motion.moving import LinearPiece
from repro.spatial import Polygon
from repro.spatial.kinetic import (
    _quadratic_at_most_zero,
    _segment_crossings,
    paired_legs,
    when_dist_at_least,
    when_dist_at_most,
    when_inside_polygon,
)
from repro.temporal import Interval

pytestmark = pytest.mark.skipif(
    not available(), reason="numpy backend unavailable"
)

# ---------------------------------------------------------------------------
# Quadratic root finding:  a s^2 + b s + c <= 0  on  [0, hi]
# ---------------------------------------------------------------------------

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)
spans = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)


def scalar_pairs(a, b, c, hi):
    return [
        (iv.start, iv.end)
        for iv in _quadratic_at_most_zero(a, b, c, 0.0, hi)
    ]


@settings(max_examples=300, deadline=None)
@given(
    st.lists(
        st.tuples(finite, finite, finite, spans), min_size=1, max_size=40
    )
)
def test_quadratic_batch_matches_scalar(coeffs):
    a, b, c, hi = (list(col) for col in zip(*coeffs))
    batched = quadratic_at_most_zero_batch(a, b, c, hi)
    for i, lanes in enumerate(batched):
        assert lanes == scalar_pairs(a[i], b[i], c[i], hi[i]), (
            f"lane {i}: a={a[i]!r} b={b[i]!r} c={c[i]!r} hi={hi[i]!r}"
        )


@settings(max_examples=300, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-8, max_value=8, allow_nan=False).filter(
                lambda x: abs(x) > 1e-6
            ),
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            spans,
        ),
        min_size=1,
        max_size=40,
    )
)
def test_quadratic_batch_matches_scalar_at_tangencies(shapes):
    """Engineered double roots ``a (s - r)^2 <= 0``: the discriminant is
    analytically zero but floats leave it hovering around ±ulp, the exact
    regime the scalar helper's graze recovery handles.  The batch must
    follow it branch for branch — no flakes, no spurious or lost
    touch-intervals."""
    a = [s[0] for s in shapes]
    b = [-2.0 * s[0] * s[1] for s in shapes]
    c = [s[0] * s[1] * s[1] for s in shapes]
    hi = [s[2] for s in shapes]
    batched = quadratic_at_most_zero_batch(a, b, c, hi)
    for i, lanes in enumerate(batched):
        assert lanes == scalar_pairs(a[i], b[i], c[i], hi[i]), (
            f"lane {i}: a={a[i]!r} root={shapes[i][1]!r} hi={hi[i]!r}"
        )


def test_quadratic_batch_degenerate_rows():
    """Constant, linear, and sign-flipped rows in one batch — the branch
    coverage the random floats rarely compose in a single call."""
    rows = [
        (0.0, 0.0, -1.0, 5.0),   # always true
        (0.0, 0.0, 1.0, 5.0),    # never true
        (0.0, 2.0, -4.0, 5.0),   # linear, b > 0
        (0.0, -2.0, 4.0, 5.0),   # linear, b < 0
        (1.0, -4.0, 3.0, 5.0),   # opens up, two roots
        (-1.0, 4.0, -3.0, 5.0),  # opens down, two slots
        (1.0, 0.0, 1.0, 5.0),    # opens up, no real roots
        (-1.0, 0.0, -1.0, 5.0),  # opens down, no real roots
        (1e-15, 1.0, -2.0, 5.0),  # |a| under the scalar epsilon
    ]
    a, b, c, hi = (list(col) for col in zip(*rows))
    batched = quadratic_at_most_zero_batch(a, b, c, hi)
    for i, lanes in enumerate(batched):
        assert lanes == scalar_pairs(a[i], b[i], c[i], hi[i]), rows[i]


# ---------------------------------------------------------------------------
# Segment crossings
# ---------------------------------------------------------------------------

coords = st.floats(
    min_value=-20, max_value=20, allow_nan=False, allow_infinity=False
)


@settings(max_examples=300, deadline=None)
@given(
    st.lists(
        st.tuples(coords, coords, coords, coords, spans),
        min_size=1,
        max_size=25,
    ),
    st.tuples(coords, coords, coords, coords),
)
def test_crossings_batch_matches_scalar(paths, seg):
    a = Point(seg[0], seg[1])
    b = Point(seg[2], seg[3])
    p0s = [Point(p[0], p[1]) for p in paths]
    vs = [Vector(p[2], p[3]) for p in paths]
    s_maxes = [p[4] for p in paths]
    batched = segment_crossings_batch(p0s, vs, s_maxes, a, b)
    for i in range(len(paths)):
        expect = _segment_crossings(p0s[i], vs[i], a, b, s_maxes[i])
        assert batched[i] == expect, f"path {i}: {paths[i]} seg {seg}"


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=-10, max_value=10),
    st.integers(min_value=-10, max_value=10),
    st.integers(min_value=-3, max_value=3),
    st.integers(min_value=-3, max_value=3),
    st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
)
def test_crossings_batch_vertex_grazing(ax, ay, vx, vy, s_hit):
    """Paths steered to meet a segment *endpoint* exactly at ``s_hit``
    (and collinear runs along the segment itself): the tolerance windows
    around the endpoint projections must match the scalar helper's."""
    a = Point(float(ax), float(ay))
    b = Point(float(ax + 4), float(ay + 2))
    v = Vector(float(vx), float(vy))
    cases = [
        # Hits vertex a at s_hit exactly.
        (Point(a.x - v.x * s_hit, a.y - v.y * s_hit), v, 2 * s_hit),
        # Hits vertex b at s_hit exactly.
        (Point(b.x - v.x * s_hit, b.y - v.y * s_hit), v, 2 * s_hit),
        # Collinear with the segment, sliding along it.
        (a, Vector(4.0, 2.0), s_hit),
        # Parallel offset: never crosses.
        (Point(a.x, a.y + 1.0), Vector(4.0, 2.0), s_hit),
    ]
    p0s = [c[0] for c in cases]
    vs = [c[1] for c in cases]
    s_maxes = [c[2] for c in cases]
    batched = segment_crossings_batch(p0s, vs, s_maxes, a, b)
    for i in range(len(cases)):
        expect = _segment_crossings(p0s[i], vs[i], a, b, s_maxes[i])
        assert batched[i] == expect, f"case {i}: {cases[i]}"


# ---------------------------------------------------------------------------
# End-to-end queues against the scalar solvers
# ---------------------------------------------------------------------------

WINDOW = Interval(0, 12)


def linear_mover(x, y, vx, vy) -> MovingPoint:
    return MovingPoint(
        Point(float(x), float(y)),
        [LinearFunction(float(vx)), LinearFunction(float(vy))],
    )


def piecewise_mover(x, y, legs) -> MovingPoint:
    """A mover whose axes change slope at integer breakpoints."""
    fns = []
    for axis in range(2):
        bps = [(float(i * 4), float(legs[i][axis])) for i in range(len(legs))]
        fns.append(PiecewiseLinearFunction(bps))
    return MovingPoint(Point(float(x), float(y)), fns)


def oracle_dist(m1, m2, r, at_least):
    solve = when_dist_at_least if at_least else when_dist_at_most
    dense = solve(m1, m2, float(r), WINDOW)
    return dense.discretized().clip(WINDOW.start, WINDOW.end)


small_ints = st.integers(min_value=-9, max_value=9)
velocities = st.integers(min_value=-3, max_value=3)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(
            small_ints, small_ints, velocities, velocities,
            small_ints, small_ints, velocities, velocities,
            st.integers(min_value=0, max_value=8),
            st.booleans(),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_distance_batch_matches_scalar_solver(rows):
    """A mixed DistanceBatch (single-leg pairs and piecewise legs in the
    same solve) against ``when_dist_at_most``/``at_least`` discretized
    and clipped exactly as the evaluator does.  Integer lattices make
    grazing contacts (dist ≡ r at a tick) common rather than rare."""
    table = LinearTable(WINDOW.start, WINDOW.end)
    batch = DistanceBatch(table)
    oracles = []
    for i, row in enumerate(rows):
        x1, y1, vx1, vy1, x2, y2, vx2, vy2, r, at_least = row
        m1 = linear_mover(x1, y1, vx1, vy1)
        m2 = linear_mover(x2, y2, vx2, vy2)
        if i % 3 == 2:
            # Piecewise lane: the second mover bends mid-window.
            m2 = piecewise_mover(x2, y2, [(vx2, vy2), (-vx2, vy1)])
            legs = paired_legs(
                m1.linear_pieces(WINDOW.start, WINDOW.end),
                m2.linear_pieces(WINDOW.start, WINDOW.end),
                WINDOW,
            )
            batch.add_legs(legs, float(r), at_least)
        else:
            s1 = table.add(("m1", i), m1.single_leg(WINDOW.start, WINDOW.end))
            s2 = table.add(("m2", i), m2.single_leg(WINDOW.start, WINDOW.end))
            batch.add_pair(s1, s2, float(r), at_least)
        oracles.append(oracle_dist(m1, m2, r, at_least))
    solved = batch.solve()
    for i, (got, want) in enumerate(zip(solved, oracles)):
        assert got == want, f"lane {i}: {rows[i]}"


POLYGONS = [
    Polygon.rectangle(-4, -4, 4, 4),
    Polygon([Point(0, -5), Point(6, 0), Point(0, 5), Point(-6, 0)]),
    # Non-convex: a notch cut into a square.
    Polygon(
        [
            Point(-5, -5),
            Point(5, -5),
            Point(5, 5),
            Point(0, 0),
            Point(-5, 5),
        ]
    ),
]


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(small_ints, small_ints, velocities, velocities),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=0, max_value=len(POLYGONS) - 1),
)
def test_polygon_batch_matches_scalar_solver(rows, poly_idx):
    """PolygonBatch against ``when_inside_polygon`` discretized and
    clipped.  Integer starts and velocities drive paths exactly through
    vertices and along edges — the grazing-crossing regime."""
    polygon = POLYGONS[poly_idx]
    table = LinearTable(WINDOW.start, WINDOW.end)
    batch = PolygonBatch(polygon, table)
    oracles = []
    for i, (x, y, vx, vy) in enumerate(rows):
        m = linear_mover(x, y, vx, vy)
        slot = table.add(("m", i), m.single_leg(WINDOW.start, WINDOW.end))
        batch.add_slot(slot)
        dense = when_inside_polygon(m, polygon, WINDOW)
        oracles.append(dense.discretized().clip(WINDOW.start, WINDOW.end))
    solved = batch.solve()
    for i, (got, want) in enumerate(zip(solved, oracles)):
        assert got == want, f"lane {i}: {rows[i]}"


def test_polygon_batch_piecewise_legs_match_scalar_solver():
    """Piecewise movers through every polygon, seeded exhaustively rather
    than property-sampled (paired_legs construction is deterministic)."""
    rng = random.Random(77)
    for polygon in POLYGONS:
        reference = MovingPoint(Point(0.0, 0.0)).linear_pieces(
            WINDOW.start, WINDOW.end
        )
        table = LinearTable(WINDOW.start, WINDOW.end)
        batch = PolygonBatch(polygon, table)
        oracles = []
        for _ in range(25):
            x, y = rng.randint(-9, 9), rng.randint(-9, 9)
            v1 = (rng.randint(-3, 3), rng.randint(-3, 3))
            v2 = (rng.randint(-3, 3), rng.randint(-3, 3))
            m = piecewise_mover(x, y, [v1, v2])
            legs = paired_legs(
                m.linear_pieces(WINDOW.start, WINDOW.end),
                reference,
                WINDOW,
            )
            batch.add_legs(legs)
            dense = when_inside_polygon(m, polygon, WINDOW)
            oracles.append(dense.discretized().clip(WINDOW.start, WINDOW.end))
        solved = batch.solve()
        for i, (got, want) in enumerate(zip(solved, oracles)):
            assert got == want, f"{polygon}: lane {i}"


def test_grazing_distance_contacts_are_exact():
    """dist ≡ r contacts engineered directly: two movers whose closest
    approach equals the bound exactly (closing speed 1 on one axis), the
    canonical tangency the PR 4 margin exists for."""
    table = LinearTable(WINDOW.start, WINDOW.end)
    batch = DistanceBatch(table)
    oracles = []
    for i, r in enumerate(range(0, 7)):
        # m1 runs along y = 0; m2 sits at (6, r): closest approach is
        # exactly r at t = 6.
        m1 = linear_mover(0, 0, 1, 0)
        m2 = linear_mover(6, r, 0, 0)
        s1 = table.add(("g1", i), m1.single_leg(WINDOW.start, WINDOW.end))
        s2 = table.add(("g2", i), m2.single_leg(WINDOW.start, WINDOW.end))
        batch.add_pair(s1, s2, float(r), False)
        oracles.append(oracle_dist(m1, m2, r, False))
    solved = batch.solve()
    for i, (got, want) in enumerate(zip(solved, oracles)):
        assert got == want, f"grazing radius {i}"
        # The touch instant t=6 itself must be in the answer.
        assert want.contains(6)


def test_quadratic_shim_rejects_nothing_scalar_accepts():
    """Cross-check emission order on a randomized sweep large enough to
    hit every branch pairing (the shim is the documented contract the
    DistanceBatch fast path is built on)."""
    rng = random.Random(5)
    rows = []
    for _ in range(500):
        kind = rng.randrange(4)
        if kind == 0:
            a, b, c = 0.0, 0.0, rng.uniform(-5, 5)
        elif kind == 1:
            a, b, c = 0.0, rng.uniform(-5, 5), rng.uniform(-5, 5)
        else:
            a = rng.uniform(-5, 5)
            root = rng.uniform(0, 10)
            if kind == 2:  # tangent
                b, c = -2 * a * root, a * root * root
            else:
                b, c = rng.uniform(-20, 20), rng.uniform(-20, 20)
        rows.append((a, b, c, rng.uniform(0, 15)))
    a, b, c, hi = (list(col) for col in zip(*rows))
    batched = quadratic_at_most_zero_batch(a, b, c, hi)
    for i, lanes in enumerate(batched):
        assert lanes == scalar_pairs(a[i], b[i], c[i], hi[i]), rows[i]
