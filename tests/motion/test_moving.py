"""Unit tests for moving points."""

import pytest

from repro.errors import MotionError
from repro.motion import (
    LinearFunction,
    MovingPoint,
    PiecewiseLinearFunction,
    SinusoidFunction,
    linear_moving_point,
    static_point,
)
from repro.spatial import Point, Vector


class TestConstruction:
    def test_default_is_static(self):
        m = MovingPoint(Point(3, 4))
        assert m.is_static
        assert m.position_at(100) == Point(3, 4)

    def test_function_count_mismatch(self):
        with pytest.raises(MotionError):
            MovingPoint(Point(0, 0), [LinearFunction(1)])

    def test_linear_factory(self):
        m = linear_moving_point(Point(0, 0), Vector(1, 2))
        assert m.is_linear
        assert m.velocity == Vector(1, 2)
        assert m.position_at(3) == Point(3, 6)

    def test_linear_factory_dim_mismatch(self):
        with pytest.raises(MotionError):
            linear_moving_point(Point(0, 0), Vector(1, 2, 3))

    def test_static_factory(self):
        assert static_point(Point(1, 1)).is_static

    def test_speed(self):
        m = linear_moving_point(Point(0, 0), Vector(3, 4))
        assert m.speed == 5.0

    def test_velocity_undefined_for_nonlinear(self):
        m = MovingPoint(Point(0.0,), [SinusoidFunction(1, 1)])
        with pytest.raises(MotionError):
            _ = m.velocity


class TestEvaluation:
    def test_anchor_time_offset(self):
        # Updated at t=10 with speed 5: position at t=12 is anchor + 10.
        m = linear_moving_point(Point(0, 0), Vector(5, 0), anchor_time=10)
        assert m.position_at(10) == Point(0, 0)
        assert m.position_at(12) == Point(10, 0)

    def test_section21_example(self):
        # X.POSITION.function = 5*t means speed 5 in the X direction.
        m = MovingPoint(Point(0.0,), [LinearFunction(5)])
        assert m.position_at(2) == Point(10.0)

    def test_piecewise_position(self):
        f = PiecewiseLinearFunction([(0, 5), (1, 7)])
        m = MovingPoint(Point(0.0,), [f])
        assert m.position_at(1).x == 5
        assert m.position_at(2).x == 12


class TestLinearPieces:
    def test_single_leg_for_linear(self):
        m = linear_moving_point(Point(0, 0), Vector(1, 0))
        pieces = m.linear_pieces(0, 10)
        assert len(pieces) == 1
        assert pieces[0].velocity == Vector(1, 0)
        assert pieces[0].position_at(4) == Point(4, 0)

    def test_piecewise_splits(self):
        f = PiecewiseLinearFunction([(0, 5), (2, 7)])
        m = MovingPoint(Point(0.0, 0.0), [f, LinearFunction(0)])
        pieces = m.linear_pieces(0, 5)
        assert len(pieces) == 2
        assert pieces[0].end == 2
        assert pieces[0].velocity.x == 5
        assert pieces[1].velocity.x == 7
        assert pieces[1].origin.x == 10

    def test_anchor_offset_breakpoints(self):
        f = PiecewiseLinearFunction([(0, 1), (3, 2)])
        m = MovingPoint(Point(0.0,), [f], anchor_time=10)
        pieces = m.linear_pieces(10, 20)
        assert [p.start for p in pieces] == [10, 13]

    def test_none_for_nonlinear(self):
        m = MovingPoint(Point(0.0,), [SinusoidFunction(1, 1)])
        assert m.linear_pieces(0, 10) is None

    def test_bad_window(self):
        m = static_point(Point(0, 0))
        with pytest.raises(MotionError):
            m.linear_pieces(5, 3)

    def test_pieces_agree_with_position_at(self):
        f = PiecewiseLinearFunction([(0, 2), (1, -1), (4, 0.5)])
        m = MovingPoint(Point(1.0, 2.0), [f, LinearFunction(3)])
        pieces = m.linear_pieces(0, 6)
        for p in pieces:
            for frac in (0.0, 0.3, 0.9):
                t = p.start + frac * (p.end - p.start)
                assert p.position_at(t).is_close(m.position_at(t), tol=1e-9)


class TestUpdates:
    def test_update_motion_keeps_implied_position(self):
        m = linear_moving_point(Point(0, 0), Vector(5, 0))
        m2 = m.updated(at_time=2, functions=[LinearFunction(7), LinearFunction(0)])
        assert m2.anchor == Point(10, 0)
        assert m2.anchor_time == 2
        assert m2.position_at(3) == Point(17, 0)

    def test_update_position_only(self):
        m = linear_moving_point(Point(0, 0), Vector(5, 0))
        m2 = m.updated(at_time=2, position=Point(100, 0))
        assert m2.position_at(3) == Point(105, 0)

    def test_update_both(self):
        m = linear_moving_point(Point(0, 0), Vector(5, 0))
        m2 = m.updated(
            at_time=1,
            position=Point(0, 0),
            functions=[LinearFunction(0), LinearFunction(1)],
        )
        assert m2.position_at(4) == Point(0, 3)

    def test_repr(self):
        m = linear_moving_point(Point(0, 0), Vector(5, 0))
        assert "5*t" in repr(m)
