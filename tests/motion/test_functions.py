"""Unit tests for scalar time functions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MotionError
from repro.motion import (
    LinearFunction,
    PiecewiseLinearFunction,
    PolynomialFunction,
    SinusoidFunction,
    ZERO_FUNCTION,
)

finite = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


class TestLinear:
    def test_value(self):
        f = LinearFunction(5.0)
        assert f.value(0) == 0
        assert f.value(2) == 10
        assert f.value(-1) == -5

    def test_is_linear(self):
        assert LinearFunction(3).is_linear

    def test_breakpoints(self):
        assert LinearFunction(3).linear_breakpoints(10) == [(0.0, 3)]

    def test_zero_function(self):
        assert ZERO_FUNCTION.value(100) == 0

    @given(finite, finite)
    def test_zero_at_origin_and_linearity(self, slope, t):
        f = LinearFunction(slope)
        assert f.value(0) == 0
        assert f.value(t) == pytest.approx(slope * t)

    def test_str(self):
        assert str(LinearFunction(5)) == "5*t"


class TestPiecewise:
    def test_value_across_pieces(self):
        # Speed 5 for t in [0,1), then 7 in [1,2), then 10.
        f = PiecewiseLinearFunction([(0, 5), (1, 7), (2, 10)])
        assert f.value(0) == 0
        assert f.value(1) == 5
        assert f.value(2) == 12
        assert f.value(3) == 22

    def test_continuity_at_breakpoints(self):
        f = PiecewiseLinearFunction([(0, 2), (5, -3)])
        eps = 1e-9
        assert f.value(5 - eps) == pytest.approx(f.value(5 + eps), abs=1e-6)

    def test_negative_extrapolation(self):
        f = PiecewiseLinearFunction([(0, 4), (2, 1)])
        assert f.value(-1) == -4

    def test_breakpoints_clipped_to_duration(self):
        f = PiecewiseLinearFunction([(0, 1), (5, 2), (9, 3)])
        assert f.linear_breakpoints(6) == [(0, 1), (5, 2)]

    def test_single_piece_is_linear(self):
        assert PiecewiseLinearFunction([(0, 2)]).is_linear
        assert not PiecewiseLinearFunction([(0, 2), (1, 3)]).is_linear

    def test_empty_rejected(self):
        with pytest.raises(MotionError):
            PiecewiseLinearFunction([])

    def test_nonzero_first_start_rejected(self):
        with pytest.raises(MotionError):
            PiecewiseLinearFunction([(1, 2)])

    def test_unsorted_rejected(self):
        with pytest.raises(MotionError):
            PiecewiseLinearFunction([(0, 1), (3, 2), (2, 5)])

    def test_duplicate_start_rejected(self):
        with pytest.raises(MotionError):
            PiecewiseLinearFunction([(0, 1), (0, 2)])


class TestPolynomial:
    def test_value(self):
        f = PolynomialFunction([2, 3])  # 2t + 3t^2
        assert f.value(0) == 0
        assert f.value(2) == 4 + 12

    def test_zero_at_origin(self):
        assert PolynomialFunction([1, -4, 2]).value(0) == 0

    def test_linearity_detection(self):
        assert PolynomialFunction([5]).is_linear
        assert PolynomialFunction([5, 0, 0]).is_linear
        assert not PolynomialFunction([5, 1]).is_linear

    def test_breakpoints(self):
        assert PolynomialFunction([5]).linear_breakpoints(3) == [(0.0, 5)]
        assert PolynomialFunction([5, 1]).linear_breakpoints(3) is None

    def test_empty_polynomial(self):
        f = PolynomialFunction([])
        assert f.value(7) == 0
        assert f.is_linear

    def test_str(self):
        assert str(PolynomialFunction([2, 3])) == "2*t^1 + 3*t^2"
        assert str(PolynomialFunction([])) == "0"


class TestSinusoid:
    def test_value(self):
        f = SinusoidFunction(2.0, math.pi)
        assert f.value(0) == 0
        assert f.value(0.5) == pytest.approx(2.0)
        assert f.value(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_is_linear(self):
        assert SinusoidFunction(0, 3).is_linear
        assert SinusoidFunction(3, 0).is_linear
        assert not SinusoidFunction(1, 1).is_linear

    def test_breakpoints_none_when_nonlinear(self):
        assert SinusoidFunction(1, 1).linear_breakpoints(5) is None
        assert SinusoidFunction(0, 1).linear_breakpoints(5) == [(0.0, 0.0)]
