"""Tests for the section 5.1 MOST-on-DBMS layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bridge import MostOnDbms, decompose, dynamic_attributes_of, dynamic_atoms_in
from repro.core import DynamicAttribute
from repro.dbms import Column, Database, FLOAT, INT, STRING
from repro.dbms.expressions import Literal
from repro.dbms.sql.parser import parse_expression
from repro.errors import SqlError
from repro.index import DynamicAttributeIndex
from repro.motion import LinearFunction
from repro.temporal import SimulationClock


@pytest.fixture
def most() -> MostOnDbms:
    db = Database(clock=SimulationClock())
    layer = MostOnDbms(db)
    layer.create_table(
        "vehicles",
        static_columns=[Column("id", INT), Column("kind", STRING)],
        dynamic_attributes=["pos", "fuel"],
        key="id",
    )
    # pos moves at different speeds; fuel drains.
    layer.insert(
        "vehicles",
        {"id": 1, "kind": "car"},
        {"pos": DynamicAttribute.linear(0.0, 5.0), "fuel": DynamicAttribute.linear(100.0, -1.0)},
    )
    layer.insert(
        "vehicles",
        {"id": 2, "kind": "car"},
        {"pos": DynamicAttribute.linear(50.0, 0.0), "fuel": DynamicAttribute.linear(40.0, -2.0)},
    )
    layer.insert(
        "vehicles",
        {"id": 3, "kind": "truck"},
        {"pos": DynamicAttribute.linear(-30.0, 2.0), "fuel": DynamicAttribute.linear(200.0, -0.5)},
    )
    return layer


class TestDiscovery:
    def test_dynamic_attributes_of(self, most):
        dynamics = dynamic_attributes_of(most.db.table("vehicles").schema)
        assert set(dynamics) == {"pos", "fuel"}
        assert dynamics["pos"].updatetime == "pos.updatetime"

    def test_incomplete_triple_is_not_dynamic(self):
        from repro.dbms.schema import Schema

        schema = Schema.of(("a.value", FLOAT), ("a.updatetime", FLOAT))
        assert dynamic_attributes_of(schema) == {}

    def test_dynamic_atoms_in(self, most):
        dynamics = {"vehicles": dynamic_attributes_of(most.db.table("vehicles").schema)}
        bindings = {"v": "vehicles"}
        where = parse_expression("v.pos > 10 AND v.kind = 'car' AND v.fuel < 50")
        atoms = dynamic_atoms_in(where, bindings, dynamics)
        assert len(atoms) == 2

    def test_sub_attribute_reference_is_static(self, most):
        dynamics = {"vehicles": dynamic_attributes_of(most.db.table("vehicles").schema)}
        where = parse_expression("v.pos.function = 5")
        assert dynamic_atoms_in(where, {"v": "vehicles"}, dynamics) == []


class TestDecompose:
    def test_2k_variants(self):
        p = parse_expression("a > 1")
        q = parse_expression("b > 2")
        f = parse_expression("a > 1 AND b > 2 AND c = 3")
        variants = decompose(f, [p, q])
        assert len(variants) == 4
        polarity_sets = {
            tuple(v for _a, v in variant.polarities) for variant in variants
        }
        assert polarity_sets == {
            (True, True),
            (True, False),
            (False, True),
            (False, False),
        }

    def test_substitution_applied(self):
        p = parse_expression("a > 1")
        f = parse_expression("a > 1 AND c = 3")
        variants = decompose(f, [p])
        trues = [v for v in variants if v.polarities[0][1]]
        assert "True" in str(trues[0].where)

    def test_no_atoms(self):
        f = parse_expression("c = 3")
        [v] = decompose(f, [])
        assert v.where == f
        assert v.polarities == ()


class TestInterception:
    def test_passthrough_static_query(self, most):
        rel = most.query("SELECT id FROM vehicles WHERE kind = 'truck'")
        assert rel.column("id") == [3]
        assert most.stats.passthrough == 1
        assert most.stats.decomposed == 0

    def test_sub_attribute_query_passes_through(self, most):
        # Section 2.1: "the objects whose speed in the X direction is 5".
        rel = most.query("SELECT id FROM vehicles WHERE pos.function = 5")
        assert rel.column("id") == [1]
        assert most.stats.passthrough == 1

    def test_dynamic_select_target(self, most):
        most.db.clock.tick(4)
        rel = most.query("SELECT id, pos FROM vehicles WHERE kind = 'car'")
        assert rel.to_set() == {(1, 20.0), (2, 50.0)}
        assert most.stats.decomposed == 0  # no dynamic WHERE atoms

    def test_dynamic_where_atom(self, most):
        most.db.clock.tick(4)  # pos: 20, 50, -22
        rel = most.query("SELECT id FROM vehicles WHERE pos > 10")
        assert set(rel.column("id")) == {1, 2}
        assert most.stats.decomposed == 1
        assert most.stats.variants_issued == 2

    def test_answer_changes_with_time_without_updates(self, most):
        q = "SELECT id FROM vehicles WHERE pos >= 49"
        assert set(most.query(q).column("id")) == {2}
        most.db.clock.tick(10)  # car 1 at 50 now
        assert set(most.query(q).column("id")) == {1, 2}

    def test_two_dynamic_atoms_four_variants(self, most):
        most.stats.reset()
        most.db.clock.tick(2)
        rel = most.query(
            "SELECT id FROM vehicles WHERE pos > 0 AND fuel > 50"
        )
        # t=2: pos (10, 50, -26), fuel (98, 36, 199) -> only id 1.
        assert rel.column("id") == [1]
        assert most.stats.variants_issued == 4

    def test_mixed_static_dynamic(self, most):
        most.db.clock.tick(2)
        rel = most.query(
            "SELECT id FROM vehicles WHERE kind = 'car' AND fuel > 50"
        )
        assert rel.column("id") == [1]

    def test_or_with_dynamic_atom(self, most):
        most.db.clock.tick(2)
        rel = most.query(
            "SELECT id FROM vehicles WHERE kind = 'truck' OR pos >= 50"
        )
        assert set(rel.column("id")) == {2, 3}

    def test_select_star_with_dynamic_where(self, most):
        rel = most.query("SELECT * FROM vehicles WHERE pos >= 50")
        assert len(rel) == 1
        assert "pos.value" in rel.schema.names

    def test_arithmetic_over_dynamic_value(self, most):
        most.db.clock.tick(10)
        rel = most.query("SELECT pos * 2 AS double_pos FROM vehicles WHERE id = 1")
        assert rel.scalar() == 100.0

    def test_update_motion_changes_answers(self, most):
        most.db.clock.tick(2)
        most.update_motion(
            "vehicles", 1, "pos", DynamicAttribute.linear(1000.0, 0.0, updatetime=2)
        )
        rel = most.query("SELECT id FROM vehicles WHERE pos >= 999")
        assert rel.column("id") == [1]

    def test_update_motion_unknown_key(self, most):
        with pytest.raises(SqlError):
            most.update_motion("vehicles", 99, "pos", DynamicAttribute.static(0))

    def test_non_select_passthrough(self, most):
        n = most.execute("DELETE FROM vehicles WHERE id = 3")
        assert n == 1

    def test_query_requires_select(self, most):
        with pytest.raises(SqlError):
            most.query("DELETE FROM vehicles")


class TestIndexedVariant:
    def attach_index(self, most) -> DynamicAttributeIndex:
        index = DynamicAttributeIndex(
            epoch=0, horizon=1000, value_lo=-10000, value_hi=10000
        )
        for row in most.db.table("vehicles").rows():
            schema = most.db.table("vehicles").schema
            key = row[schema.index_of("id")]
            index.insert(
                key,
                DynamicAttribute(
                    value=row[schema.index_of("pos.value")],
                    updatetime=row[schema.index_of("pos.updatetime")],
                    function=LinearFunction(row[schema.index_of("pos.function")]),
                ),
            )
        most.register_index("vehicles", "pos", index)
        return index

    def test_indexed_atom_same_answer(self, most):
        self.attach_index(most)
        most.db.clock.tick(4)
        rel = most.query("SELECT id FROM vehicles WHERE pos > 10")
        assert set(rel.column("id")) == {1, 2}
        assert most.stats.index_filtered_atoms >= 1
        assert most.stats.rows_post_filtered == 0

    def test_index_follows_motion_updates(self, most):
        self.attach_index(most)
        most.db.clock.tick(1)
        most.update_motion(
            "vehicles", 3, "pos", DynamicAttribute.linear(500.0, 0.0, updatetime=1)
        )
        rel = most.query("SELECT id FROM vehicles WHERE pos >= 400")
        assert rel.column("id") == [3]

    def test_equality_atom_not_indexed(self, most):
        self.attach_index(most)
        most.stats.reset()
        rel = most.query("SELECT id FROM vehicles WHERE pos = 50")
        assert rel.column("id") == [2]
        assert most.stats.index_filtered_atoms == 0
        assert most.stats.rows_post_filtered > 0


# ---------------------------------------------------------------------------
# Property: decomposed evaluation == direct evaluation of the original
# predicate on current values.
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-20, max_value=20),
            st.integers(min_value=-3, max_value=3),
            st.integers(min_value=0, max_value=100),
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=-20, max_value=40),
    st.integers(min_value=0, max_value=100),
)
def test_decomposition_matches_direct(rows, now, pos_bound, price_bound):
    db = Database(clock=SimulationClock())
    layer = MostOnDbms(db)
    layer.create_table(
        "t",
        static_columns=[Column("id", INT), Column("price", FLOAT)],
        dynamic_attributes=["pos"],
        key="id",
    )
    for i, (v, s, price) in enumerate(rows):
        layer.insert(
            "t",
            {"id": i, "price": float(price)},
            {"pos": DynamicAttribute.linear(float(v), float(s))},
        )
    db.clock.tick(now)
    rel = layer.query(
        f"SELECT id FROM t WHERE pos >= {pos_bound} AND price <= {price_bound}"
    )
    want = sorted(
        i
        for i, (v, s, price) in enumerate(rows)
        if v + s * now >= pos_bound and price <= price_bound
    )
    assert sorted(rel.column("id")) == want
