"""Tests for FTL-over-DBMS (section 5.1, last paragraph)."""

import pytest

from repro.bridge import ClassSpec, MostOnDbms, TemporalBridge
from repro.core import DynamicAttribute
from repro.dbms import Column, Database, FLOAT, INT, STRING
from repro.errors import SchemaError, SqlError
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Ball, Polygon
from repro.temporal import SimulationClock


@pytest.fixture
def bridge() -> TemporalBridge:
    db = Database(clock=SimulationClock())
    layer = MostOnDbms(db)
    layer.create_table(
        "vehicles",
        static_columns=[Column("id", STRING), Column("price", FLOAT)],
        dynamic_attributes=["px", "py", "fuel"],
        key="id",
    )

    def add(vid, x, vx, price, fuel, fuel_rate):
        layer.insert(
            "vehicles",
            {"id": vid, "price": price},
            {
                "px": DynamicAttribute.linear(x, vx),
                "py": DynamicAttribute.linear(5.0, 0.0),
                "fuel": DynamicAttribute.linear(fuel, fuel_rate),
            },
        )

    add("fast", -10.0, 2.0, 100.0, 50.0, -1.0)
    add("slow", -40.0, 1.0, 80.0, 90.0, -0.5)
    add("parked", 100.0, 0.0, 60.0, 10.0, 0.0)

    return TemporalBridge(
        layer,
        classes={
            "cars": ClassSpec(
                table="vehicles",
                position_attributes=("px", "py"),
                scalar_attributes=("fuel",),
                static_columns=("price",),
            )
        },
        regions={"P": Polygon.rectangle(0, 0, 20, 20)},
    )


class TestValidation:
    def test_unknown_dynamic_attribute(self):
        db = Database(clock=SimulationClock())
        layer = MostOnDbms(db)
        layer.create_table(
            "t", static_columns=[Column("id", INT)], dynamic_attributes=["a"], key="id"
        )
        with pytest.raises(SchemaError):
            TemporalBridge(
                layer, {"c": ClassSpec(table="t", scalar_attributes=("zap",))}
            )

    def test_bad_position_arity(self):
        db = Database(clock=SimulationClock())
        layer = MostOnDbms(db)
        layer.create_table(
            "t", static_columns=[Column("id", INT)], dynamic_attributes=["a"], key="id"
        )
        with pytest.raises(SchemaError):
            TemporalBridge(
                layer, {"c": ClassSpec(table="t", position_attributes=("a",))}
            )

    def test_keyless_table_rejected(self):
        db = Database(clock=SimulationClock())
        layer = MostOnDbms(db)
        layer.create_table(
            "t", static_columns=[Column("id", INT)], dynamic_attributes=["a"]
        )
        with pytest.raises(SchemaError):
            TemporalBridge(layer, {"c": ClassSpec(table="t")})

    def test_unknown_static_column(self):
        db = Database(clock=SimulationClock())
        layer = MostOnDbms(db)
        layer.create_table(
            "t", static_columns=[Column("id", INT)], dynamic_attributes=["a"], key="id"
        )
        with pytest.raises(SchemaError):
            TemporalBridge(
                layer, {"c": ClassSpec(table="t", static_columns=("ghost",))}
            )

    def test_unmapped_class_in_query(self, bridge):
        q = parse_query("RETRIEVE o FROM planes o WHERE INSIDE(o, P)")
        with pytest.raises(SchemaError):
            bridge.evaluate(q, horizon=10)


class TestViewLoading:
    def test_view_reconstructs_motion(self, bridge):
        view = bridge.load_view()
        fast = view.get("fast")
        assert fast.position_at(0) == Point(-10, 5)
        assert fast.position_at(5) == Point(0, 5)
        assert fast.static_value("price") == 100.0
        assert fast.value_at("fuel", 10) == 40.0

    def test_null_subattribute_rejected(self, bridge):
        bridge.layer.db.execute(
            "INSERT INTO vehicles (id, price) VALUES ('ghost', 1.0)"
        )
        with pytest.raises(SqlError):
            bridge.load_view()


class TestQueries:
    def test_future_spatial_query(self, bridge):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)"
        )
        # fast enters x>=0 at t=5; slow at t=40; parked never (x=100).
        assert bridge.evaluate(q, horizon=60) == {("fast",)}

    def test_methods_agree(self, bridge):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE o.fuel >= 45 AND EVENTUALLY INSIDE(o, P)"
        )
        assert bridge.evaluate(q, horizon=40) == bridge.evaluate(
            q, horizon=40, method="naive"
        )

    def test_answer_reflects_dbms_updates(self, bridge):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)"
        )
        assert bridge.evaluate(q, horizon=60) == {("fast",)}
        # Teleport 'parked' into P through the DBMS layer.
        bridge.layer.update_motion(
            "vehicles", "parked", "px", DynamicAttribute.linear(10.0, 0.0)
        )
        assert bridge.evaluate(q, horizon=60) == {("fast",), ("parked",)}

    def test_answer_tuples_shape(self, bridge):
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        answer = bridge.answer(q, horizon=60)
        tuples = {t.values[0]: (t.begin, t.end) for t in answer.tuples}
        assert tuples[("fast")] == (5, 15)  # x in [0,20] for t in [5,15]

    def test_continuous_query_over_dbms(self, bridge):
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        cq = bridge.continuous(q, horizon=60)
        assert cq.evaluations == 1
        assert cq.current() == set()  # fast is at x=-10
        bridge.layer.db.clock.tick(8)  # fast at x=6: inside
        assert cq.current() == {("fast",)}
        assert cq.evaluations == 1  # display moved without reevaluation

        # A DBMS commit invalidates the answer lazily.
        bridge.layer.update_motion(
            "vehicles", "parked", "px", DynamicAttribute.linear(5.0, 0.0, updatetime=8)
        )
        assert cq.current() == {("fast",), ("parked",)}
        assert cq.evaluations == 2

    def test_continuous_query_expiry_and_cancel(self, bridge):
        from repro.errors import SqlError

        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        cq = bridge.continuous(q, horizon=3)
        bridge.layer.db.clock.tick(5)
        assert cq.current() == set()
        cq.cancel()
        cq.cancel()
        with pytest.raises(SqlError):
            cq.current()

    def test_continuous_answer_tuples(self, bridge):
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        cq = bridge.continuous(q, horizon=60)
        tuples = {t.values[0]: (t.begin, t.end) for t in cq.answer_tuples()}
        assert tuples[("fast")] == (5, 15)

    def test_scalar_dynamic_in_query(self, bridge):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE ALWAYS FOR 30 o.fuel >= 20"
        )
        result = bridge.evaluate(q, horizon=60)
        # fast: 50 - t >= 20 until t=30 (window fits) -> satisfied at 0.
        # slow: 90 - 0.5t stays >= 20 for 140 ticks -> satisfied.
        # parked: fuel 10 < 20 -> not satisfied.
        assert result == {("fast",), ("slow",)}
