"""Property tests for the interval-level temporal operators.

Each operator is checked against a brute-force per-tick evaluation of its
logical definition over a bounded discrete horizon — exactly the semantics
of section 3.3 of the paper restricted to finite histories.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TemporalError
from repro.temporal import (
    DENSE,
    DISCRETE,
    Interval,
    IntervalSet,
    always,
    always_for,
    eventually,
    eventually_after,
    eventually_within,
    nexttime,
    until,
    until_within,
)

HORIZON = 24
tick_sets = st.sets(st.integers(min_value=0, max_value=HORIZON), max_size=18)
bounds = st.integers(min_value=0, max_value=8)


def iset(ticks) -> IntervalSet:
    return IntervalSet.from_ticks(sorted(ticks), DISCRETE)


def ticks_of(s: IntervalSet) -> set:
    return set(s.ticks(horizon=HORIZON))


# ---------------------------------------------------------------------------
# Brute-force reference semantics (section 3.3) over ticks 0..HORIZON
# ---------------------------------------------------------------------------
def ref_until(g1: set, g2: set) -> set:
    out = set()
    for t in range(HORIZON + 1):
        for tp in range(t, HORIZON + 1):
            if tp in g2 and all(u in g1 for u in range(t, tp)):
                out.add(t)
                break
    return out


def ref_until_within(c: int, g1: set, g2: set) -> set:
    out = set()
    for t in range(HORIZON + 1):
        for tp in range(t, min(t + c, HORIZON) + 1):
            if tp in g2 and all(u in g1 for u in range(t, tp)):
                out.add(t)
                break
    return out


def ref_eventually(f: set) -> set:
    return {t for t in range(HORIZON + 1) if any(tp in f for tp in range(t, HORIZON + 1))}


def ref_eventually_within(c: int, f: set) -> set:
    return {
        t
        for t in range(HORIZON + 1)
        if any(tp in f for tp in range(t, min(t + c, HORIZON) + 1))
    }


def ref_eventually_after(c: int, f: set) -> set:
    return {
        t
        for t in range(HORIZON + 1)
        if any(tp in f for tp in range(t + c, HORIZON + 1))
    }


def ref_always(f: set) -> set:
    return {t for t in range(HORIZON + 1) if all(tp in f for tp in range(t, HORIZON + 1))}


def ref_always_for(c: int, f: set) -> set:
    # Only meaningful where the window fits inside the modelled horizon.
    return {
        t
        for t in range(HORIZON - c + 1)
        if all(tp in f for tp in range(t, t + c + 1))
    }


def ref_nexttime(f: set) -> set:
    return {t for t in range(HORIZON + 1) if (t + 1) in f}


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@settings(max_examples=300)
@given(tick_sets, tick_sets)
def test_until_matches_reference(g1, g2):
    got = ticks_of(until(iset(g1), iset(g2)))
    assert got == ref_until(g1, g2)


@settings(max_examples=300)
@given(bounds, tick_sets, tick_sets)
def test_until_within_matches_reference(c, g1, g2):
    got = ticks_of(until_within(c, iset(g1), iset(g2)))
    assert got == ref_until_within(c, g1, g2)


@settings(max_examples=200)
@given(tick_sets)
def test_eventually_matches_reference(f):
    got = ticks_of(eventually(iset(f)))
    assert got == ref_eventually(f)


@settings(max_examples=200)
@given(bounds, tick_sets)
def test_eventually_within_matches_reference(c, f):
    got = ticks_of(eventually_within(c, iset(f)))
    assert got == ref_eventually_within(c, f)


@settings(max_examples=200)
@given(bounds, tick_sets)
def test_eventually_after_matches_reference(c, f):
    # eventually_after may extend past points where the reference cannot
    # see beyond the horizon: compare only against what the bounded input
    # implies, which matches because inputs never exceed the horizon.
    got = ticks_of(eventually_after(c, iset(f)))
    assert got == ref_eventually_after(c, f)


@settings(max_examples=200)
@given(tick_sets)
def test_always_matches_reference(f):
    got = ticks_of(always(iset(f), 0, HORIZON))
    assert got == ref_always(f)


@settings(max_examples=200)
@given(bounds, tick_sets)
def test_always_for_matches_reference(c, f):
    got = {t for t in ticks_of(always_for(c, iset(f))) if t <= HORIZON - c}
    assert got == ref_always_for(c, f)


@settings(max_examples=200)
@given(tick_sets)
def test_nexttime_matches_reference(f):
    got = ticks_of(nexttime(iset(f)))
    assert got == ref_nexttime(f)


@settings(max_examples=150)
@given(tick_sets)
def test_eventually_is_true_until(f):
    true_set = IntervalSet.span(0, HORIZON, DISCRETE)
    assert until(true_set, iset(f)) == eventually(iset(f))


@settings(max_examples=150)
@given(tick_sets, tick_sets)
def test_until_implies_eventually(g1, g2):
    u = ticks_of(until(iset(g1), iset(g2)))
    ev = ticks_of(eventually(iset(g2)))
    assert u <= ev


# ---------------------------------------------------------------------------
# Dense-domain and error-path units
# ---------------------------------------------------------------------------
class TestDense:
    def test_until_dense_extension(self):
        g1 = IntervalSet.from_pairs([(2.0, 8.0)])
        g2 = IntervalSet.from_pairs([(8.0, 9.0)])
        assert until(g1, g2).intervals == (Interval(2.0, 9.0),)

    def test_until_dense_gap_blocks(self):
        g1 = IntervalSet.from_pairs([(2.0, 7.5)])
        g2 = IntervalSet.from_pairs([(8.0, 9.0)])
        assert until(g1, g2).intervals == (Interval(8.0, 9.0),)

    def test_until_dense_chain(self):
        g1 = IntervalSet.from_pairs([(2.0, 8.0)])
        g2 = IntervalSet.from_pairs([(1.0, 2.0), (8.0, 9.0)])
        assert until(g1, g2).intervals == (Interval(1.0, 9.0),)

    def test_until_within_truncates(self):
        g1 = IntervalSet.from_pairs([(0.0, 10.0)])
        g2 = IntervalSet.from_pairs([(10.0, 10.0)])
        got = until_within(3.0, g1, g2)
        assert got.intervals == (Interval(7.0, 10.0),)

    def test_nexttime_requires_discrete(self):
        with pytest.raises(TemporalError):
            nexttime(IntervalSet.from_pairs([(0, 1)], DENSE))

    def test_negative_bounds_rejected(self):
        s = IntervalSet.empty(DENSE)
        with pytest.raises(TemporalError):
            eventually_within(-1, s)
        with pytest.raises(TemporalError):
            eventually_after(-1, s)
        with pytest.raises(TemporalError):
            always_for(-1, s)
        with pytest.raises(TemporalError):
            until_within(-1, s, s)

    def test_always_for_dense(self):
        f = IntervalSet.from_pairs([(0.0, 5.0), (7.0, 8.0)])
        assert always_for(2.0, f).intervals == (Interval(0.0, 3.0),)

    def test_domain_mismatch(self):
        with pytest.raises(TemporalError):
            until(IntervalSet.empty(DENSE), IntervalSet.empty(DISCRETE))
