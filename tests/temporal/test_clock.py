"""Unit tests for :mod:`repro.temporal.clock`."""

import pytest

from repro.errors import TemporalError
from repro.temporal import SimulationClock


class TestClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0

    def test_custom_start(self):
        assert SimulationClock(start=7).now == 7

    def test_negative_start_rejected(self):
        with pytest.raises(TemporalError):
            SimulationClock(start=-1)

    def test_tick(self):
        clock = SimulationClock()
        assert clock.tick() == 1
        assert clock.tick(4) == 5
        assert clock.now == 5

    def test_tick_negative_rejected(self):
        with pytest.raises(TemporalError):
            SimulationClock().tick(-1)

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(9)
        assert clock.now == 9

    def test_advance_backwards_rejected(self):
        clock = SimulationClock(start=5)
        with pytest.raises(TemporalError):
            clock.advance_to(3)

    def test_listeners_fire_per_tick(self):
        clock = SimulationClock()
        seen = []
        clock.on_tick(seen.append)
        clock.tick(3)
        assert seen == [1, 2, 3]

    def test_listener_removal(self):
        clock = SimulationClock()
        seen = []
        clock.on_tick(seen.append)
        clock.remove_listener(seen.append)
        clock.tick()
        assert seen == []

    def test_remove_absent_listener_is_noop(self):
        SimulationClock().remove_listener(lambda t: None)

    def test_listener_order(self):
        clock = SimulationClock()
        seen = []
        clock.on_tick(lambda t: seen.append(("a", t)))
        clock.on_tick(lambda t: seen.append(("b", t)))
        clock.tick()
        assert seen == [("a", 1), ("b", 1)]

    def test_repr(self):
        assert "now=2" in repr(SimulationClock(start=2))
