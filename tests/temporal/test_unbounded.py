"""Temporal operators over unbounded (infinite-end) interval sets.

The paper's histories are infinite; bounded evaluation clips them, but the
interval algebra itself must stay sound when satisfaction extends forever
(e.g. a static object inside a polygon for good).
"""

import math

import pytest

from repro.temporal import (
    DENSE,
    DISCRETE,
    Interval,
    IntervalSet,
    always,
    always_for,
    eventually,
    eventually_after,
    eventually_within,
    until,
)


def unbounded(start, domain=DISCRETE):
    return IntervalSet([Interval(start, math.inf)], domain)


class TestUnbounded:
    def test_set_properties(self):
        s = unbounded(5)
        assert s.latest == math.inf
        assert s.contains(1e15)
        assert s.total_duration == math.inf

    def test_union_with_unbounded_absorbs(self):
        s = unbounded(5).union(IntervalSet.from_pairs([(7, 9)], DISCRETE))
        assert s.intervals == (Interval(5, math.inf),)

    def test_intersection_clips(self):
        s = unbounded(5).intersection(
            IntervalSet.from_pairs([(0, 10)], DISCRETE)
        )
        assert s.intervals == (Interval(5, 10),)

    def test_complement_of_unbounded(self):
        comp = unbounded(5).complement(Interval(0, 20))
        assert comp.intervals == (Interval(0, 4),)

    def test_difference_with_unbounded_cut(self):
        s = IntervalSet.from_pairs([(0, 100)], DISCRETE).difference(unbounded(50))
        assert s.intervals == (Interval(0, 49),)

    def test_until_with_unbounded_g2(self):
        g1 = IntervalSet.from_pairs([(0, 9)], DISCRETE)
        g2 = unbounded(10)
        got = until(g1, g2)
        assert got.intervals == (Interval(0, math.inf),)

    def test_until_with_unbounded_g1(self):
        g1 = unbounded(0)
        g2 = IntervalSet.from_pairs([(50, 60)], DISCRETE)
        got = until(g1, g2)
        assert got.intervals == (Interval(0, 60),)

    def test_eventually_unbounded(self):
        got = eventually(unbounded(5))
        assert got.intervals == (Interval(0, math.inf),)

    def test_eventually_within_unbounded(self):
        got = eventually_within(3, unbounded(10))
        assert got.intervals == (Interval(7, math.inf),)

    def test_eventually_after_unbounded(self):
        got = eventually_after(100, unbounded(10))
        assert got.intervals == (Interval(0, math.inf),)

    def test_always_for_keeps_unbounded(self):
        got = always_for(5, unbounded(3))
        assert got.intervals == (Interval(3, math.inf),)

    def test_always_with_horizon_inside_unbounded(self):
        got = always(unbounded(3), start=0, horizon=100)
        assert got.intervals == (Interval(3, 100),)

    def test_discretized_keeps_unbounded(self):
        dense = IntervalSet([Interval(2.5, math.inf)], DENSE)
        got = dense.discretized()
        assert got.intervals == (Interval(3, math.inf),)

    def test_ticks_require_horizon(self):
        from repro.errors import TemporalError

        with pytest.raises(TemporalError):
            unbounded(0).ticks()
        assert unbounded(8).ticks(horizon=10) == [8, 9, 10]
