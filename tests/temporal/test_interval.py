"""Unit tests for :mod:`repro.temporal.interval`."""

import math

import pytest

from repro.errors import TemporalError
from repro.temporal import DENSE, DISCRETE, Interval


class TestConstruction:
    def test_valid(self):
        iv = Interval(1, 5)
        assert iv.start == 1
        assert iv.end == 5

    def test_point_interval(self):
        iv = Interval(3, 3)
        assert iv.duration == 0
        assert iv.contains(3)

    def test_unbounded_end(self):
        iv = Interval(0, math.inf)
        assert iv.is_unbounded
        assert iv.contains(1e12)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(TemporalError):
            Interval(5, 1)

    def test_nan_rejected(self):
        with pytest.raises(TemporalError):
            Interval(math.nan, 1)

    def test_inf_start_rejected(self):
        with pytest.raises(TemporalError):
            Interval(math.inf, math.inf)


class TestPredicates:
    def test_contains_boundaries(self):
        iv = Interval(2, 4)
        assert iv.contains(2)
        assert iv.contains(4)
        assert not iv.contains(1.999)
        assert not iv.contains(4.001)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))
        assert Interval(0, 5).overlaps(Interval(3, 4))
        assert not Interval(0, 5).overlaps(Interval(6, 9))

    def test_precedes(self):
        assert Interval(0, 4).precedes(Interval(5, 6))
        assert not Interval(0, 5).precedes(Interval(5, 6))

    def test_mergeable_dense_touching(self):
        assert Interval(0, 5).mergeable(Interval(5, 8), DENSE)
        assert not Interval(0, 5).mergeable(Interval(5.1, 8), DENSE)

    def test_mergeable_discrete_consecutive(self):
        assert Interval(0, 5).mergeable(Interval(6, 8), DISCRETE)
        assert not Interval(0, 5).mergeable(Interval(7, 8), DISCRETE)

    def test_mergeable_symmetric(self):
        assert Interval(6, 8).mergeable(Interval(0, 5), DISCRETE)

    def test_compatible_appendix_definition(self):
        # [l1,u1] compatible with [m1,n1] iff m1 <= u1 + gap and n1 >= u1.
        g1 = Interval(0, 5)
        assert g1.compatible(Interval(6, 9), DISCRETE)
        assert g1.compatible(Interval(3, 9), DISCRETE)
        assert not g1.compatible(Interval(7, 9), DISCRETE)
        assert not g1.compatible(Interval(2, 4), DISCRETE)  # ends before u1


class TestConstructions:
    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 9)) == Interval(5, 5)
        assert Interval(0, 5).intersection(Interval(6, 9)) is None

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(8, 9)) == Interval(0, 9)

    def test_shift(self):
        assert Interval(1, 4).shift(2) == Interval(3, 6)
        assert Interval(1, math.inf).shift(5) == Interval(6, math.inf)

    def test_clip(self):
        assert Interval(0, 10).clip(3, 7) == Interval(3, 7)
        assert Interval(0, 2).clip(5, 9) is None


class TestMeasures:
    def test_duration(self):
        assert Interval(2, 7).duration == 5

    def test_ticks(self):
        assert list(Interval(1.5, 4.2).ticks()) == [2, 3, 4]
        assert list(Interval(3, 3).ticks()) == [3]

    def test_ticks_unbounded_raises(self):
        with pytest.raises(TemporalError):
            Interval(0, math.inf).ticks()

    def test_ordering(self):
        assert sorted([Interval(3, 4), Interval(1, 9), Interval(1, 2)]) == [
            Interval(1, 2),
            Interval(1, 9),
            Interval(3, 4),
        ]

    def test_str(self):
        assert str(Interval(1, 2.5)) == "[1, 2.5]"
