"""Property tests for the :class:`IntervalSet` algebra invariants.

The appendix's chain construction relies on ``R_g`` interval sets being
*normalised*: sorted, pairwise disjoint, and with no two intervals
mergeable in the set's time domain ("a non-zero gap separating intervals").
Every operation must preserve that invariant, normalisation must be
idempotent, and complement must round-trip within its bounds.  The
incremental maintenance path patches these sets in and out of cached
relations, so the invariants now carry correctness weight beyond display.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.temporal import DENSE, DISCRETE, Interval, IntervalSet

domains = st.sampled_from((DISCRETE, DENSE))

# Raw (possibly overlapping, unsorted) interval material.
raw_interval = st.tuples(
    st.integers(min_value=-30, max_value=30),
    st.integers(min_value=0, max_value=15),
).map(lambda p: Interval(p[0], p[0] + p[1]))

raw_intervals = st.lists(raw_interval, max_size=8)


def make_set(intervals, domain) -> IntervalSet:
    return IntervalSet(intervals, domain)


def assert_normalised(s: IntervalSet) -> None:
    """The full invariant: sorted, disjoint, non-mergeable neighbours."""
    ivs = s.intervals
    for iv in ivs:
        assert iv.start <= iv.end
    for a, b in zip(ivs, ivs[1:]):
        assert a.end < b.start, f"{a} and {b} out of order or overlapping"
        assert not a.mergeable(b, s.domain), (
            f"{a} and {b} are adjacent in {s.domain.name} — normalisation "
            "must have coalesced them"
        )


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------


@given(raw_intervals, domains)
def test_construction_normalises(intervals, domain):
    assert_normalised(make_set(intervals, domain))


@given(raw_intervals, domains)
def test_normalisation_idempotent(intervals, domain):
    once = make_set(intervals, domain)
    twice = IntervalSet(once.intervals, domain)
    assert once == twice


@given(raw_intervals, domains)
def test_normalisation_preserves_membership(intervals, domain):
    s = make_set(intervals, domain)
    for t in range(-35, 50):
        raw = any(iv.start <= t <= iv.end for iv in intervals)
        assert s.contains(t) == raw


# ---------------------------------------------------------------------------
# Binary algebra keeps the invariant and matches pointwise semantics
# ---------------------------------------------------------------------------


@given(raw_intervals, raw_intervals, domains)
def test_union_invariant_and_semantics(xs, ys, domain):
    a, b = make_set(xs, domain), make_set(ys, domain)
    u = a.union(b)
    assert_normalised(u)
    for t in range(-35, 50):
        assert u.contains(t) == (a.contains(t) or b.contains(t))


@given(raw_intervals, raw_intervals, domains)
def test_intersection_invariant_and_semantics(xs, ys, domain):
    a, b = make_set(xs, domain), make_set(ys, domain)
    i = a.intersection(b)
    assert_normalised(i)
    for t in range(-35, 50):
        assert i.contains(t) == (a.contains(t) and b.contains(t))


@given(raw_intervals, raw_intervals)
def test_discrete_difference_invariant_and_semantics(xs, ys):
    a, b = make_set(xs, DISCRETE), make_set(ys, DISCRETE)
    d = a.difference(b)
    assert_normalised(d)
    for t in range(-35, 50):
        assert d.contains(t) == (a.contains(t) and not b.contains(t))


@given(raw_intervals, raw_intervals, domains)
def test_union_commutative_associative_material(xs, ys, domain):
    a, b = make_set(xs, domain), make_set(ys, domain)
    assert a.union(b) == b.union(a)
    assert a.union(a) == a  # idempotent
    assert a.intersection(a) == a


# ---------------------------------------------------------------------------
# Complement round-trips within its bounding interval
# ---------------------------------------------------------------------------

bounding = st.tuples(
    st.integers(min_value=-30, max_value=0),
    st.integers(min_value=1, max_value=40),
).map(lambda p: Interval(p[0], p[0] + p[1]))


@given(raw_intervals, bounding, domains)
def test_complement_invariant(intervals, bound, domain):
    s = make_set(intervals, domain)
    c = s.complement(bound)
    assert_normalised(c)
    # Nothing outside the bound.
    for iv in c.intervals:
        assert bound.start <= iv.start and iv.end <= bound.end


@given(raw_intervals, bounding)
def test_discrete_complement_partitions_the_bound(intervals, bound):
    s = make_set(intervals, DISCRETE)
    c = s.complement(bound)
    for t in range(int(bound.start), int(bound.end) + 1):
        assert c.contains(t) == (not s.contains(t))
    assert s.intersection(c).is_empty


@given(raw_intervals, bounding)
def test_discrete_complement_round_trip(intervals, bound):
    clipped = make_set(intervals, DISCRETE).clip(bound.start, bound.end)
    back = clipped.complement(bound).complement(bound)
    assert back == clipped


# ---------------------------------------------------------------------------
# Clip / shift / clamp keep the invariant
# ---------------------------------------------------------------------------


@given(raw_intervals, bounding, domains)
def test_clip_invariant(intervals, bound, domain):
    s = make_set(intervals, domain).clip(bound.start, bound.end)
    assert_normalised(s)
    if not s.is_empty:
        assert s.earliest >= bound.start and s.latest <= bound.end


@given(raw_intervals, st.integers(min_value=-10, max_value=10), domains)
def test_shift_invariant_and_reversible(intervals, delta, domain):
    s = make_set(intervals, domain)
    shifted = s.shift(delta)
    assert_normalised(shifted)
    assert shifted.shift(-delta) == s
    assert shifted.total_duration == s.total_duration


@given(raw_intervals, st.integers(min_value=-30, max_value=40), domains)
def test_clamp_start_invariant(intervals, lo, domain):
    s = make_set(intervals, domain).clamp_start(lo)
    assert_normalised(s)
    if not s.is_empty:
        assert s.earliest >= lo


# ---------------------------------------------------------------------------
# Unbounded intervals (the Always/Until joins produce [t, inf) sets)
# ---------------------------------------------------------------------------


@given(raw_intervals, st.integers(min_value=-30, max_value=30), domains)
def test_unbounded_tail_normalises(intervals, tail_start, domain):
    s = make_set(
        list(intervals) + [Interval(tail_start, math.inf)], domain
    )
    assert_normalised(s)
    assert s.latest == math.inf
    assert s.contains(10**9)
