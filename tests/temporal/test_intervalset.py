"""Unit + property tests for :mod:`repro.temporal.intervalset`.

The property tests compare the interval-set algebra against brute-force
sets of integer ticks, which is exact in the discrete domain.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TemporalError
from repro.temporal import DENSE, DISCRETE, Interval, IntervalSet

# ---------------------------------------------------------------------------
# Strategies: random small discrete interval sets over ticks 0..30
# ---------------------------------------------------------------------------
TICK_MAX = 30

tick_sets = st.sets(st.integers(min_value=0, max_value=TICK_MAX), max_size=20)


def from_tick_set(ticks: set) -> IntervalSet:
    return IntervalSet.from_ticks(sorted(ticks), DISCRETE)


def to_tick_set(iset: IntervalSet) -> set:
    return set(iset.ticks(horizon=TICK_MAX))


class TestNormalisation:
    def test_overlapping_merge(self):
        s = IntervalSet([Interval(0, 5), Interval(3, 9)], DENSE)
        assert s.intervals == (Interval(0, 9),)

    def test_touching_merge_dense(self):
        s = IntervalSet([Interval(0, 5), Interval(5, 9)], DENSE)
        assert s.intervals == (Interval(0, 9),)

    def test_consecutive_merge_discrete(self):
        s = IntervalSet([Interval(0, 5), Interval(6, 9)], DISCRETE)
        assert s.intervals == (Interval(0, 9),)

    def test_gap_preserved_dense(self):
        s = IntervalSet([Interval(0, 5), Interval(6, 9)], DENSE)
        assert len(s) == 2

    def test_unsorted_input(self):
        s = IntervalSet([Interval(8, 9), Interval(0, 1), Interval(4, 5)], DENSE)
        assert s.intervals == (Interval(0, 1), Interval(4, 5), Interval(8, 9))

    def test_nested_input(self):
        s = IntervalSet([Interval(0, 10), Interval(2, 3)], DENSE)
        assert s.intervals == (Interval(0, 10),)

    @given(tick_sets)
    def test_normalisation_preserves_ticks(self, ticks):
        assert to_tick_set(from_tick_set(ticks)) == ticks


class TestConstructors:
    def test_empty(self):
        s = IntervalSet.empty(DISCRETE)
        assert s.is_empty
        assert not s
        assert len(s) == 0

    def test_point(self):
        s = IntervalSet.point(4)
        assert s.contains(4)
        assert not s.contains(4.1)

    def test_span(self):
        assert IntervalSet.span(2, 9).intervals == (Interval(2, 9),)

    def test_from_pairs(self):
        s = IntervalSet.from_pairs([(0, 1), (5, 6)])
        assert len(s) == 2

    def test_from_boolean_samples(self):
        s = IntervalSet.from_boolean_samples(
            [True, True, False, True, False, True], DISCRETE
        )
        assert s.intervals == (
            Interval(0, 1),
            Interval(3, 3),
            Interval(5, 5),
        )

    def test_from_boolean_samples_offset(self):
        s = IntervalSet.from_boolean_samples([True, True], DISCRETE, start=10)
        assert s.intervals == (Interval(10, 11),)


class TestPointQueries:
    def test_contains_binary_search(self):
        s = IntervalSet.from_pairs([(0, 1), (4, 6), (10, 12)])
        for t, expected in [(0, True), (3, False), (5, True), (12, True), (13, False)]:
            assert s.contains(t) is expected

    def test_interval_containing(self):
        s = IntervalSet.from_pairs([(0, 1), (4, 6)])
        assert s.interval_containing(5) == Interval(4, 6)
        assert s.interval_containing(2) is None

    def test_first_point_at_or_after(self):
        s = IntervalSet.from_pairs([(2, 4), (8, 9)])
        assert s.first_point_at_or_after(0) == 2
        assert s.first_point_at_or_after(3) == 3
        assert s.first_point_at_or_after(5) == 8
        assert s.first_point_at_or_after(10) is None

    def test_earliest_latest(self):
        s = IntervalSet.from_pairs([(2, 4), (8, 9)])
        assert s.earliest == 2
        assert s.latest == 9

    def test_earliest_on_empty_raises(self):
        with pytest.raises(TemporalError):
            _ = IntervalSet.empty().earliest


class TestAlgebraUnits:
    def test_union(self):
        a = IntervalSet.from_pairs([(0, 2)])
        b = IntervalSet.from_pairs([(1, 5)])
        assert a.union(b).intervals == (Interval(0, 5),)

    def test_intersection(self):
        a = IntervalSet.from_pairs([(0, 4), (6, 10)])
        b = IntervalSet.from_pairs([(3, 7)])
        assert a.intersection(b).intervals == (Interval(3, 4), Interval(6, 7))

    def test_difference_dense(self):
        a = IntervalSet.from_pairs([(0, 10)])
        b = IntervalSet.from_pairs([(3, 5)])
        out = a.difference(b)
        assert out.intervals == (Interval(0, 3), Interval(5, 10))

    def test_difference_discrete(self):
        a = IntervalSet.from_ticks(range(0, 11), DISCRETE)
        b = IntervalSet.from_ticks([3, 4, 5], DISCRETE)
        assert a.difference(b).intervals == (Interval(0, 2), Interval(6, 10))

    def test_difference_unbounded_cut(self):
        a = IntervalSet.from_pairs([(0, 10)])
        cut = IntervalSet([Interval(5, math.inf)], DENSE)
        assert a.difference(cut).intervals == (Interval(0, 5),)

    def test_complement(self):
        s = IntervalSet.from_ticks([2, 3], DISCRETE)
        comp = s.complement(Interval(0, 5))
        assert comp.intervals == (Interval(0, 1), Interval(4, 5))

    def test_clip(self):
        s = IntervalSet.from_pairs([(0, 4), (6, 10)])
        assert s.clip(2, 8).intervals == (Interval(2, 4), Interval(6, 8))

    def test_shift(self):
        s = IntervalSet.from_pairs([(0, 2)])
        assert s.shift(3).intervals == (Interval(3, 5),)

    def test_clamp_start(self):
        s = IntervalSet.from_pairs([(0, 4), (6, 10)])
        assert s.clamp_start(2).intervals == (Interval(2, 4), Interval(6, 10))
        assert s.clamp_start(5).intervals == (Interval(6, 10),)

    def test_covers(self):
        s = IntervalSet.from_pairs([(0, 4), (6, 10)])
        assert s.covers(Interval(1, 3))
        assert not s.covers(Interval(3, 7))

    def test_domain_mismatch_raises(self):
        with pytest.raises(TemporalError):
            IntervalSet.empty(DENSE).union(IntervalSet.empty(DISCRETE))

    def test_total_duration(self):
        s = IntervalSet.from_pairs([(0, 2), (5, 6)])
        assert s.total_duration == 3

    def test_equality_and_hash(self):
        a = IntervalSet.from_pairs([(0, 2), (1, 5)])
        b = IntervalSet.from_pairs([(0, 5)])
        assert a == b
        assert hash(a) == hash(b)


# ---------------------------------------------------------------------------
# Property tests: algebra vs brute-force tick sets
# ---------------------------------------------------------------------------
@settings(max_examples=200)
@given(tick_sets, tick_sets)
def test_union_matches_set_union(t1, t2):
    got = from_tick_set(t1).union(from_tick_set(t2))
    assert to_tick_set(got) == t1 | t2


@settings(max_examples=200)
@given(tick_sets, tick_sets)
def test_intersection_matches_set_intersection(t1, t2):
    got = from_tick_set(t1).intersection(from_tick_set(t2))
    assert to_tick_set(got) == t1 & t2


@settings(max_examples=200)
@given(tick_sets, tick_sets)
def test_difference_matches_set_difference(t1, t2):
    got = from_tick_set(t1).difference(from_tick_set(t2))
    assert to_tick_set(got) == t1 - t2


@settings(max_examples=200)
@given(tick_sets)
def test_complement_matches(t1):
    comp = from_tick_set(t1).complement(Interval(0, TICK_MAX))
    assert to_tick_set(comp) == set(range(TICK_MAX + 1)) - t1


@settings(max_examples=100)
@given(tick_sets)
def test_double_complement_is_identity(t1):
    s = from_tick_set(t1)
    bound = Interval(0, TICK_MAX)
    assert to_tick_set(s.complement(bound).complement(bound)) == t1


@settings(max_examples=100)
@given(tick_sets, st.integers(min_value=0, max_value=TICK_MAX))
def test_contains_matches_membership(t1, probe):
    assert from_tick_set(t1).contains(probe) == (probe in t1)
