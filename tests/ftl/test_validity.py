"""Unit tests for the temporal-validity analysis (pass 8).

Covers the symbolic horizon lattice and its propagation rules, the
runtime concretization primitives (``class_motion_events`` and
``update_divergence``), and the horizon edge cases the design calls out:
zero-length windows, ``Nexttime`` at the horizon boundary, motion-leg
boundaries landing exactly on ``t_expire``, and clock-regression
rejection.
"""

import math

import pytest

from repro.core import ContinuousQuery, DynamicAttribute, MostDatabase, ObjectClass
from repro.core.database import MostUpdate
from repro.ftl import (
    AndF,
    Attr,
    Compare,
    Const,
    Eventually,
    EventuallyWithin,
    FtlQuery,
    Inside,
    Nexttime,
    NotF,
    Until,
    Var,
    parse_query,
)
from repro.ftl.analysis.validity import (
    Constraint,
    Horizon,
    analyze_formula_validity,
    analyze_query_validity,
    class_motion_events,
    update_divergence,
)
from repro.geometry import Point
from repro.motion.functions import (
    LinearFunction,
    PiecewiseLinearFunction,
    PolynomialFunction,
)
from repro.spatial import Polygon

INF = math.inf


def build_db() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "cars",
            static_attributes=("price",),
            dynamic_attributes=("fuel",),
            spatial_dimensions=2,
        )
    )
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    db.add_moving_object(
        "cars",
        "c0",
        Point(1.0, 1.0),
        Point(1.0, 0.0),
        static={"price": 40.0},
        dynamic_extra={"fuel": DynamicAttribute.linear(30.0, -1.0)},
    )
    return db


BINDINGS = {"o": "cars"}


# ---------------------------------------------------------------------------
# The symbolic lattice
# ---------------------------------------------------------------------------


class TestHorizonLattice:
    def test_union_is_bottom_absorbing(self):
        bot = Horizon(bottom=True, reason="because")
        sliding = Horizon(
            constraints=frozenset({Constraint(False, 0.0, frozenset({"cars"}))})
        )
        assert Horizon.union([sliding, bot]).bottom
        assert Horizon.union([bot, sliding]).bottom

    def test_union_of_constants_is_constant(self):
        assert Horizon.union([Horizon(), Horizon()]).kind == "constant"

    def test_union_merges_constraints(self):
        a = Horizon(
            constraints=frozenset({Constraint(False, 0.0, frozenset({"cars"}))})
        )
        b = Horizon(
            constraints=frozenset({Constraint(True, 0.0, frozenset({"vans"}))})
        )
        merged = Horizon.union([a, b])
        assert merged.kind == "sliding"  # any sliding constraint dominates
        assert merged.classes() == ["cars", "vans"]

    def test_shift_leaves_guarded_and_constant_alone(self):
        guarded = Horizon(
            constraints=frozenset({Constraint(True, 0.0, frozenset({"cars"}))})
        )
        assert guarded.shifted(3.0) == guarded
        assert Horizon().shifted(3.0) == Horizon()

    def test_shift_accumulates_on_sliding(self):
        sliding = Horizon(
            constraints=frozenset({Constraint(False, 1.0, frozenset({"cars"}))})
        )
        (c,) = sliding.shifted(2.0).constraints
        assert c.offset == 3.0 and not c.guarded

    def test_guardify_is_idempotent(self):
        sliding = Horizon(
            constraints=frozenset({Constraint(False, 4.0, frozenset({"cars"}))})
        )
        g = sliding.guardified()
        assert g.kind == "guarded"
        assert g.guardified() == g


# ---------------------------------------------------------------------------
# Propagation rules
# ---------------------------------------------------------------------------


class TestPropagation:
    def _root(self, formula):
        return analyze_formula_validity(formula, bindings=BINDINGS).root_horizon

    def test_kinetic_atom_is_sliding_zero(self):
        h = self._root(Inside(Var("o"), "P"))
        (c,) = h.constraints
        assert not c.guarded and c.offset == 0.0 and c.classes == {"cars"}

    def test_static_only_atom_is_constant_with_schema(self):
        f = Compare("<=", Attr(Var("o"), "price"), Const(60))
        with_schema = analyze_formula_validity(
            f, bindings=BINDINGS, schema=build_db()
        ).root_horizon
        assert with_schema.kind == "constant"
        # Schema-less analysis cannot prove `price` static, so it
        # conservatively treats the read as kinetic.
        assert self._root(f).kind == "sliding"

    def test_nexttime_shifts_by_one(self):
        h = self._root(Nexttime(Inside(Var("o"), "P")))
        (c,) = h.constraints
        assert c.offset == 1.0

    def test_eventually_within_shifts_by_bound(self):
        h = self._root(EventuallyWithin(5, Inside(Var("o"), "P")))
        (c,) = h.constraints
        assert c.offset == 5.0 and not c.guarded

    def test_unbounded_eventually_guardifies(self):
        h = self._root(Eventually(Inside(Var("o"), "P")))
        assert h.kind == "guarded"

    def test_until_guardifies_both_sides(self):
        h = self._root(
            Until(Inside(Var("o"), "P"), NotF(Inside(Var("o"), "P")))
        )
        assert h.kind == "guarded"
        assert h.classes() == ["cars"]

    def test_boolean_connectives_union(self):
        h = self._root(
            AndF(
                Inside(Var("o"), "P"),
                EventuallyWithin(3, Inside(Var("o"), "P")),
            )
        )
        offsets = sorted(c.offset for c in h.constraints)
        assert offsets == [0.0, 3.0]

    def test_bottom_nodes_surface_ftl803(self):
        class Weird:  # not a Formula the walker knows
            span = None

            def free_vars(self):
                return set()

        analysis = analyze_formula_validity(
            Inside(Var("o"), "P"), bindings=BINDINGS
        )
        assert not analysis.root_horizon.bottom
        codes = {d.code for d in analysis.diagnostics}
        assert "FTL801" in codes

    def test_query_level_analysis_matches_formula_level(self):
        query = parse_query(
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 INSIDE(o, P)"
        )
        via_query = analyze_query_validity(query)
        via_formula = analyze_formula_validity(
            query.where, bindings=query.bindings
        )
        assert via_query.root_horizon == via_formula.root_horizon


# ---------------------------------------------------------------------------
# Concretization
# ---------------------------------------------------------------------------


class TestConcretize:
    sliding = Horizon(
        constraints=frozenset({Constraint(False, 2.0, frozenset({"cars"}))})
    )
    guarded = Horizon(
        constraints=frozenset({Constraint(True, 0.0, frozenset({"cars"}))})
    )

    def test_sliding_subtracts_offset(self):
        assert self.sliding.concretize({"cars": 10.0}, 0.0, 20.0) == 8.0

    def test_sliding_clamps_to_t_eval(self):
        assert self.sliding.concretize({"cars": 1.0}, 0.0, 20.0) == 0.0

    def test_guarded_is_all_or_nothing(self):
        assert self.guarded.concretize({"cars": 25.0}, 0.0, 20.0) == INF
        assert self.guarded.concretize({"cars": 5.0}, 0.0, 20.0) == 0.0

    def test_event_exactly_at_window_end_keeps_guard(self):
        # A leg boundary exactly at t_expire: the guarded horizon stays
        # INF (piecewise-linear trajectories are continuous at the
        # boundary) and the sliding horizon lands exactly on end.
        assert self.guarded.concretize({"cars": 20.0}, 0.0, 20.0) == INF
        zero_off = Horizon(
            constraints=frozenset({Constraint(False, 0.0, frozenset({"cars"}))})
        )
        assert zero_off.concretize({"cars": 20.0}, 0.0, 20.0) == 20.0

    def test_missing_or_nonlinear_event_bottoms_out(self):
        assert self.sliding.concretize({}, 3.0, 20.0) == 3.0
        assert self.sliding.concretize({"cars": None}, 3.0, 20.0) == 3.0

    def test_bottom_concretizes_to_t_eval(self):
        bot = Horizon(bottom=True, reason="x")
        assert bot.concretize({"cars": INF}, 7.0, 20.0) == 7.0

    def test_zero_length_window(self):
        # t_eval == end: everything still clamps to t_eval, never below.
        assert self.sliding.concretize({"cars": INF}, 5.0, 5.0) == INF
        assert self.guarded.concretize({"cars": 5.5}, 5.0, 5.0) == INF


# ---------------------------------------------------------------------------
# class_motion_events
# ---------------------------------------------------------------------------


class TestClassMotionEvents:
    def test_linear_fleet_has_no_events(self):
        db = build_db()
        events = class_motion_events(db, ["cars"], 0.0, 50.0)
        assert events == {"cars": INF}

    def test_piecewise_leg_boundary_is_an_event(self):
        db = build_db()
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (6.0, -1.0)]),
        )
        events = class_motion_events(db, ["cars"], 0.0, 50.0)
        assert events["cars"] == 6.0  # updatetime 0 + leg start 6

    def test_nonlinear_function_yields_none(self):
        db = build_db()
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PolynomialFunction((1.0, 0.5)),
        )
        assert class_motion_events(db, ["cars"], 0.0, 50.0) == {"cars": None}

    def test_unknown_class_yields_none(self):
        db = build_db()
        assert class_motion_events(db, ["ghosts"], 0.0, 50.0) == {
            "ghosts": None
        }

    def test_events_at_or_before_t_eval_are_ignored(self):
        db = build_db()
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (3.0, 2.0)]),
        )
        # The t=3 leg boundary is in the past of t_eval=4.
        assert class_motion_events(db, ["cars"], 4.0, 50.0) == {"cars": INF}


# ---------------------------------------------------------------------------
# update_divergence
# ---------------------------------------------------------------------------


def _dyn(value, updatetime, function):
    return DynamicAttribute(
        value=value, updatetime=updatetime, function=function
    )


def _update(old, new, time=5, kind="dynamic"):
    return MostUpdate(
        time=time,
        object_id="c0",
        attribute="x_position",
        old=old,
        new=new,
        class_name="cars",
        kind=kind,
    )


class TestUpdateDivergence:
    def test_static_equal_never_diverges(self):
        u = _update(40.0, 40.0, kind="static")
        assert update_divergence(u, 30.0) == INF

    def test_static_changed_diverges_at_update_time(self):
        u = _update(40.0, 50.0, kind="static")
        assert update_divergence(u, 30.0) == 5.0

    def test_heartbeat_reanchor_never_diverges(self):
        old = _dyn(0.0, 0.0, LinearFunction(1.0))
        new = _dyn(5.0, 5.0, LinearFunction(1.0))  # value_at(5) == 5.0
        assert update_divergence(_update(old, new), 30.0) == INF

    def test_velocity_change_diverges_inside_window(self):
        old = _dyn(0.0, 0.0, LinearFunction(1.0))
        new = _dyn(5.0, 5.0, LinearFunction(2.0))
        div = update_divergence(_update(old, new), 30.0)
        assert div < 30.0

    def test_position_jump_diverges_immediately(self):
        old = _dyn(0.0, 0.0, LinearFunction(1.0))
        new = _dyn(7.0, 5.0, LinearFunction(1.0))  # implied value was 5.0
        assert update_divergence(_update(old, new), 30.0) == 5.0

    def test_clock_regression_is_rejected(self):
        old = _dyn(0.0, 10.0, LinearFunction(1.0))
        new = _dyn(0.0, 4.0, LinearFunction(1.0))  # goes backwards
        assert update_divergence(_update(old, new), 30.0) == 5.0

    def test_nonlinear_new_function_diverges_immediately(self):
        old = _dyn(0.0, 0.0, LinearFunction(1.0))
        new = _dyn(5.0, 5.0, PolynomialFunction((1.0, 0.1)))
        assert update_divergence(_update(old, new), 30.0) == 5.0

    def test_zero_length_remaining_window_never_diverges(self):
        # end <= update time: the new state is never observed before the
        # query expires, so the update provably cannot change Answer(CQ).
        old = _dyn(0.0, 0.0, LinearFunction(1.0))
        new = _dyn(99.0, 5.0, LinearFunction(-3.0))
        assert update_divergence(_update(old, new), 5.0) == INF
        assert update_divergence(_update(old, new), 4.0) == INF

    def test_piecewise_divergence_localised_to_changed_leg(self):
        old = _dyn(0.0, 0.0, PiecewiseLinearFunction([(0.0, 1.0), (10.0, 1.0)]))
        new = _dyn(5.0, 5.0, PiecewiseLinearFunction([(0.0, 1.0), (5.0, 2.0)]))
        # Identical until new's second leg starts at absolute t=10.
        div = update_divergence(_update(old, new), 30.0)
        assert 5.0 <= div <= 10.0

    def test_malformed_update_diverges_immediately(self):
        u = _update(None, None)
        assert update_divergence(u, 30.0) == 5.0


# ---------------------------------------------------------------------------
# Horizon edge cases end to end (continuous queries)
# ---------------------------------------------------------------------------


def _heartbeat(db: MostDatabase, oid: str) -> None:
    """Re-anchor every position axis on its existing motion law."""
    obj = db.get(oid)
    now = db.clock.now
    x = obj.dynamic_attribute("x_position")
    y = obj.dynamic_attribute("y_position")
    db.update_motion(
        oid,
        Point(x.function.value(1.0), y.function.value(1.0)),
        position=Point(x.value_at(now), y.value_at(now)),
    )


class TestHorizonEdgeCases:
    def test_heartbeat_is_skipped_and_answer_identical(self):
        db, db2 = build_db(), build_db()
        q = "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 INSIDE(o, P)"
        a = ContinuousQuery(db, parse_query(q), horizon=20)
        b = ContinuousQuery(
            db2, parse_query(q), horizon=20, validity_horizons=False
        )
        db.clock.tick()
        db2.clock.tick()
        _heartbeat(db, "c0")
        _heartbeat(db2, "c0")
        assert a.current() == b.current()
        assert a.horizon_skipped > 0
        assert b.horizon_skipped == 0
        assert a.evaluations < b.evaluations

    def test_leg_boundary_beyond_expiry_keeps_query_eligible(self):
        db = build_db()
        # Leg flips at t=50, far beyond the query's expires_at=10.
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (50.0, -1.0)]),
        )
        q = "RETRIEVE o FROM cars o WHERE EVENTUALLY INSIDE(o, P)"
        cq = ContinuousQuery(db, parse_query(q), horizon=10)
        db.clock.tick()
        _heartbeat(db, "c0")
        assert cq.horizon_skipped > 0

    def test_leg_boundary_exactly_at_expiry_keeps_query_eligible(self):
        db = build_db()
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (10.0, -1.0)]),
        )
        q = "RETRIEVE o FROM cars o WHERE EVENTUALLY INSIDE(o, P)"
        # expires_at == 10 == the absolute leg boundary: continuity at
        # the breakpoint means the guarded horizon still covers the
        # whole (inclusive) window.
        cq = ContinuousQuery(db, parse_query(q), horizon=10)
        db.clock.tick()
        _heartbeat(db, "c0")
        assert cq.horizon_skipped > 0

    def test_leg_boundary_inside_window_disables_the_gate(self):
        db = build_db()
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (4.0, -1.0)]),
        )
        q = "RETRIEVE o FROM cars o WHERE EVENTUALLY INSIDE(o, P)"
        cq = ContinuousQuery(db, parse_query(q), horizon=10)
        assert not cq._horizon_eligible
        db.clock.tick()
        _heartbeat(db, "c0")
        # Conservative: the near event makes the whole-query gate stand
        # down, so even a pure heartbeat forces the usual dirty path.
        assert cq.horizon_skipped == 0
        assert cq.needs_refresh

    def test_nexttime_at_horizon_boundary(self):
        db = build_db()
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (10.0, -1.0)]),
        )
        # NEXT shifts the read window one tick forward: an event exactly
        # at expires_at=10 is *inside* Nexttime's shifted window, so the
        # sliding horizon ends at event - 1 = 9 < 10: not eligible.
        query = FtlQuery(
            targets=("o",),
            bindings=BINDINGS,
            where=Nexttime(Inside(Var("o"), "P")),
        )
        cq = ContinuousQuery(db, query, horizon=10)
        assert not cq._horizon_eligible
        # With the boundary moved past expires_at + 1, NEXT is covered.
        db2 = build_db()
        db2.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (11.0, -1.0)]),
        )
        query2 = FtlQuery(
            targets=("o",),
            bindings=BINDINGS,
            where=Nexttime(Inside(Var("o"), "P")),
        )
        cq2 = ContinuousQuery(db2, query2, horizon=10)
        assert cq2._horizon_eligible

    def test_zero_horizon_query(self):
        db = build_db()
        q = "RETRIEVE o FROM cars o WHERE INSIDE(o, P)"
        cq = ContinuousQuery(db, parse_query(q), horizon=0)
        assert cq.current() == {("c0",)}
        assert cq.valid_until >= float(db.clock.now)

    def test_valid_until_reflects_sliding_horizon(self):
        db = build_db()
        db.update_dynamic(
            "c0",
            "x_position",
            value=1.0,
            function=PiecewiseLinearFunction([(0.0, 1.0), (6.0, -1.0)]),
        )
        q = "RETRIEVE o FROM cars o WHERE INSIDE(o, P)"
        cq = ContinuousQuery(db, parse_query(q), horizon=20)
        # Atom horizon: earliest event (6.0) minus offset 0, clamped to
        # the expiration window.
        assert cq.valid_until == 6.0

    def test_window_shifted_cache_reuse(self):
        from repro.ftl.atoms import KineticSolveCache
        from repro.temporal import IntervalSet

        cache = KineticSolveCache()
        value = IntervalSet.span(0.0, 20.0)
        key = ("atom", (0.0, 20.0), "triple")
        cache.put(key, value, stamp=((0.0, 20.0), 15.0))
        # Contained later window, before the stamp expiry: clipped hit.
        got = cache.shifted_get(("atom", (2.0, 10.0), "triple"))
        assert got == value.clip(2.0, 10.0)
        assert cache.shift_hits == 1
        # Start at/beyond expiry, or window not contained: refused.
        assert cache.shifted_get(("atom", (15.0, 18.0), "triple")) is None
        assert cache.shifted_get(("atom", (-1.0, 10.0), "triple")) is None
        # Different motion triple: different base key, no reuse.
        assert cache.shifted_get(("atom", (2.0, 10.0), "other")) is None
        assert cache.shift_hits == 1

    def test_unstamped_entries_never_shift(self):
        from repro.ftl.atoms import KineticSolveCache
        from repro.temporal import IntervalSet

        cache = KineticSolveCache()
        cache.put(("atom", (0.0, 20.0), "triple"), IntervalSet.span(0.0, 20.0))
        assert cache.shifted_get(("atom", (2.0, 10.0), "triple")) is None
        assert cache.shift_hits == 0

    def test_ticked_refresh_reuses_solves_by_window_shift(self):
        """After a tick, the stamped query re-solves nothing for atoms
        whose validity outlives the new window; the unstamped twin pays
        the full solve again."""
        db, db2 = build_db(), build_db()
        q = "RETRIEVE o FROM cars o WHERE EVENTUALLY INSIDE(o, P)"
        stamped = ContinuousQuery(db, parse_query(q), horizon=20)
        twin = ContinuousQuery(
            db2, parse_query(q), horizon=20, validity_horizons=False
        )
        db.clock.tick()
        db2.clock.tick()
        # Force a refresh with no motion change: the window slid by one.
        stamped._dirty = True
        twin._dirty = True
        stamped.refresh()
        twin.refresh()
        assert stamped.current() == twin.current()
        assert db.kinetic_cache.shift_hits > 0
        assert db2.kinetic_cache.shift_hits == 0

    def test_clock_regression_update_is_never_skipped(self):
        db = build_db()
        q = "RETRIEVE o FROM cars o WHERE EVENTUALLY INSIDE(o, P)"
        cq = ContinuousQuery(db, parse_query(q), horizon=20)
        db.clock.tick(3)
        old = db.get("c0").dynamic_attribute("x_position")
        regressed = DynamicAttribute(
            value=0.0, updatetime=0.0, function=old.function
        )
        db._commit(
            MostUpdate(
                time=db.clock.now,
                object_id="c0",
                attribute="x_position",
                old=old,
                new=regressed,
                class_name="cars",
            )
        )
        assert cq.horizon_skipped == 0
        assert cq.needs_refresh
