"""Behavioural tests of both FTL evaluators on the paper's example queries.

Every test asserts the interval evaluator's result; a shared helper also
cross-checks it against the naive reference semantics.
"""

import pytest

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.errors import FtlSemanticsError
from repro.ftl import FtlQuery, parse_formula, parse_query
from repro.geometry import Point
from repro.motion import SinusoidFunction
from repro.spatial import Ball, Polygon


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(
        ObjectClass(
            "cars",
            static_attributes=("price",),
            dynamic_attributes=("fuel",),
            spatial_dimensions=2,
        )
    )
    database.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    database.define_region("Q", Polygon.rectangle(20, 0, 30, 10))
    database.define_region("C", Ball(Point(5, 5), 3))
    return database


def both(db, text, horizon):
    """Evaluate with both methods; assert agreement; return the answer."""
    query = parse_query(text)
    history = FutureHistory(db)
    interval = query.evaluate(history, horizon, method="interval")
    naive = query.evaluate(history, horizon, method="naive")
    a = {(inst, iset) for inst, iset in interval.rows()}
    b = {(inst, iset) for inst, iset in naive.rows()}
    assert a == b, f"evaluators disagree on {text!r}:\n{a}\nvs\n{b}"
    return interval


def add_car(db, oid, x, vx, y=5.0, vy=0.0, price=50.0, fuel_speed=0.0, fuel=100.0):
    from repro.core import DynamicAttribute

    db.add_moving_object(
        "cars",
        oid,
        Point(x, y),
        Point(vx, vy),
        static={"price": price},
        dynamic_extra={"fuel": DynamicAttribute.linear(fuel, fuel_speed)},
    )


class TestAtoms:
    def test_inside_polygon(self, db):
        add_car(db, "a", -5, 1)
        rel = both(db, "RETRIEVE o FROM cars o WHERE INSIDE(o, P)", 30)
        [(inst, iset)] = list(rel.rows())
        assert inst == ("a",)
        assert iset.intervals[0].start == 5
        assert iset.intervals[0].end == 15

    def test_inside_ball(self, db):
        add_car(db, "a", -5, 1)  # passes through C's x-range at y=5
        rel = both(db, "RETRIEVE o FROM cars o WHERE INSIDE(o, C)", 30)
        [(inst, iset)] = list(rel.rows())
        assert iset.intervals[0].start == 7  # |x-5|<=3 -> x in [2,8] -> t in [7,13]
        assert iset.intervals[0].end == 13

    def test_outside(self, db):
        add_car(db, "a", -5, 1)
        rel = both(db, "RETRIEVE o FROM cars o WHERE OUTSIDE(o, P)", 30)
        [(inst, iset)] = list(rel.rows())
        assert iset.contains(0)
        assert not iset.contains(10)
        assert iset.contains(16)

    def test_static_attribute_comparison(self, db):
        add_car(db, "cheap", 0, 0, price=50)
        add_car(db, "posh", 0, 0, price=500)
        rel = both(db, "RETRIEVE o FROM cars o WHERE o.price <= 100", 10)
        assert {i for i, _ in rel.rows()} == {("cheap",)}

    def test_dynamic_attribute_comparison(self, db):
        add_car(db, "a", 0, 0, fuel=100, fuel_speed=-10)
        rel = both(db, "RETRIEVE o FROM cars o WHERE o.fuel >= 50", 20)
        [(inst, iset)] = list(rel.rows())
        assert iset.intervals[0].start == 0
        assert iset.intervals[0].end == 5

    def test_dist_comparison(self, db):
        add_car(db, "a", 0, 1)
        add_car(db, "b", 10, -1)
        rel = both(
            db,
            "RETRIEVE o, n FROM cars o, cars n WHERE DIST(o, n) <= 4 AND o.price <= n.price",
            20,
        )
        got = dict(rel.rows())
        assert got[("a", "b")].intervals[0].start == 3
        assert got[("a", "b")].intervals[0].end == 7

    def test_within_sphere(self, db):
        add_car(db, "a", 0, 1)
        add_car(db, "b", 10, -1)
        rel = both(
            db,
            "RETRIEVE o, n FROM cars o, cars n WHERE WITHIN_SPHERE(1, o, n)",
            20,
        )
        got = dict(rel.rows())
        # enclosing two points in radius 1 <=> dist <= 2 <=> t in [4, 6]
        assert got[("a", "b")].intervals[0].start == 4
        assert got[("a", "b")].intervals[0].end == 6

    def test_time_term(self, db):
        add_car(db, "a", 0, 0)
        rel = both(db, "RETRIEVE o FROM cars o WHERE time >= 4 AND time <= 6", 10)
        [(inst, iset)] = list(rel.rows())
        assert iset.intervals[0].start == 4
        assert iset.intervals[0].end == 6

    def test_strict_comparisons(self, db):
        add_car(db, "a", 0, 1)
        rel = both(db, "RETRIEVE o FROM cars o WHERE o.x_position > 3", 10)
        [(inst, iset)] = list(rel.rows())
        assert iset.intervals[0].start == 4

    def test_nonlinear_motion_falls_back(self, db):
        from repro.core import DynamicAttribute

        db.add_object(
            "cars",
            "osc",
            static={"price": 1.0},
            dynamic={
                "fuel": DynamicAttribute.static(1),
                "x_position": DynamicAttribute(
                    5.0, function=SinusoidFunction(10, 0.7)
                ),
                "y_position": DynamicAttribute.static(5.0),
            },
        )
        both(db, "RETRIEVE o FROM cars o WHERE INSIDE(o, P)", 20)
        both(db, "RETRIEVE o FROM cars o WHERE o.x_position <= 7", 20)


class TestPaperExamples:
    def test_example_I(self, db):
        # Objects entering P within 3 units with PRICE <= 100.
        add_car(db, "hit", -2, 1, price=80)
        add_car(db, "expensive", -2, 1, price=200)
        add_car(db, "slow", -20, 1, price=80)
        rel = both(
            db,
            "RETRIEVE o FROM cars o WHERE o.price <= 100 "
            "AND EVENTUALLY WITHIN 3 INSIDE(o, P)",
            40,
        )
        assert rel.satisfied_at(0) == {("hit",)}

    def test_example_II(self, db):
        # Enter P within 3 and stay for 2 more.
        add_car(db, "stays", -2, 1)          # inside [2,12]: stays
        add_car(db, "grazes", -2, 5, y=5)    # inside [0.4,2.4] -> ticks 1,2 only
        rel = both(
            db,
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 "
            "(INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P))",
            40,
        )
        assert ("stays",) in rel.satisfied_at(0)
        assert ("grazes",) not in rel.satisfied_at(0)

    def test_example_III(self, db):
        # Enter P within 3, stay 2, then after >= 5 more enter Q.
        add_car(db, "tour", -2, 1)  # P during [2,12], Q during [22,32]
        rel = both(
            db,
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 "
            "(INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P) "
            "AND EVENTUALLY AFTER 5 INSIDE(o, Q))",
            40,
        )
        assert rel.satisfied_at(0) == {("tour",)}

    def test_section_32_until_query(self, db):
        add_car(db, "a", 0, 1, y=5)
        add_car(db, "b", 1, 1, y=5)  # stays within 1 of a; both enter P
        rel = both(
            db,
            "RETRIEVE o, n FROM cars o, cars n WHERE "
            "DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))",
            30,
        )
        assert ("a", "b") in rel.satisfied_at(0)

    def test_assignment_value_capture(self, db):
        add_car(db, "a", 0, 2)
        # x bound to the position at evaluation state; satisfied when the
        # position later grows by >= 10 (true from any state, speed 2>0).
        rel = both(
            db,
            "RETRIEVE o FROM cars o WHERE [x := o.x_position] "
            "EVENTUALLY o.x_position >= x + 10",
            20,
        )
        [(inst, iset)] = list(rel.rows())
        # From state t, need t' <= 20 with 2t' >= 2t + 10: holds for t <= 15.
        assert iset.intervals[0].start == 0
        assert iset.intervals[0].end == 15

    def test_nexttime(self, db):
        add_car(db, "a", -1, 1)
        rel = both(
            db, "RETRIEVE o FROM cars o WHERE NEXTTIME INSIDE(o, P)", 15
        )
        [(inst, iset)] = list(rel.rows())
        assert iset.intervals[0].start == 0  # inside from t=1

    def test_until_where_left_never_holds(self, db):
        add_car(db, "a", -5, 1, price=500)
        # price <= 100 never holds, but Until is satisfied where INSIDE is.
        rel = both(
            db,
            "RETRIEVE o FROM cars o WHERE o.price <= 100 UNTIL INSIDE(o, P)",
            30,
        )
        [(inst, iset)] = list(rel.rows())
        assert iset.intervals[0].start == 5

    def test_disjunction(self, db):
        add_car(db, "a", -2, 1)    # enters P
        add_car(db, "b", 18, 1)    # enters Q
        rel = both(
            db,
            "RETRIEVE o FROM cars o WHERE INSIDE(o, P) OR INSIDE(o, Q)",
            30,
        )
        assert {i for i, _ in rel.rows()} == {("a",), ("b",)}

    def test_negation(self, db):
        add_car(db, "a", 5, 0)
        rel = both(
            db, "RETRIEVE o FROM cars o WHERE NOT INSIDE(o, C)", 20
        )
        # Static at (5,5) = centre of C: never outside.
        assert not list(rel.rows())

    def test_always(self, db):
        add_car(db, "stay", 5, 0)
        add_car(db, "leave", 5, 1)
        rel = both(db, "RETRIEVE o FROM cars o WHERE ALWAYS INSIDE(o, P)", 20)
        got = dict(rel.rows())
        assert ("stay",) in got
        assert ("leave",) not in got


class TestSafetyAndErrors:
    def test_unbounded_variable_in_naive(self, db):
        from repro.core import FutureHistory
        from repro.ftl.context import EvalContext
        from repro.ftl.naive import NaiveEvaluator

        add_car(db, "a", 0, 0)
        ctx = EvalContext(FutureHistory(db), 10, {"o": "cars"})
        f = parse_formula("INSIDE(n, P)")
        with pytest.raises(FtlSemanticsError):
            NaiveEvaluator(ctx).evaluate(f)

    def test_unknown_method(self, db):
        add_car(db, "a", 0, 0)
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        with pytest.raises(FtlSemanticsError):
            q.evaluate(FutureHistory(db), 10, method="quantum")

    def test_negative_horizon(self, db):
        from repro.ftl.context import EvalContext

        with pytest.raises(FtlSemanticsError):
            EvalContext(FutureHistory(db), -1, {})

    def test_target_not_in_where_ranges_freely(self, db):
        add_car(db, "a", 5, 0)
        add_car(db, "b", 50, 0)
        rel = both(
            db,
            "RETRIEVE o, n FROM cars o, cars n WHERE INSIDE(o, P)",
            5,
        )
        assert {i for i, _ in rel.rows()} == {("a", "a"), ("a", "b")}
