"""Unit tests for the static update-impact (read-set) analysis.

Covers the dependency taxonomy over terms and formulas, covering
semantics of :class:`Dep`/:class:`ReadSet`, schema-aware vs schema-less
attribute classification, conservative fallbacks, the FTL701/FTL702
diagnostics, update footprints, and the EXPLAIN ``dependencies`` block.
"""

import pytest

from repro.core import DynamicAttribute, MostDatabase, ObjectClass
from repro.ftl import parse_formula, parse_query
from repro.ftl.analysis import (
    Dep,
    ReadSet,
    analyze_formula_deps,
    analyze_query_deps,
    update_footprint,
)
from repro.ftl.analysis.deps import (
    ATTRIBUTE,
    EMPTY_READ_SET,
    POPULATION,
    POSITION,
    REGION,
    STATIC,
    UPDATE_SENSITIVE_KINDS,
)
from repro.ftl.ast import Const, Var
from repro.geometry import Point
from repro.spatial import Polygon


def build_db() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "cars",
            static_attributes=("price",),
            dynamic_attributes=("fuel",),
            spatial_dimensions=2,
        )
    )
    db.create_class(ObjectClass("motels", static_attributes=("rating",)))
    db.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    db.add_moving_object(
        "cars",
        "c0",
        Point(0, 0),
        Point(1, 0),
        static={"price": 100.0},
        dynamic_extra={"fuel": DynamicAttribute.linear(50.0, -1.0)},
    )
    return db


def kinds(rs: ReadSet, cls: str) -> set:
    return set(rs.kinds_for(cls))


class TestDepCovering:
    def test_exact_match(self):
        read = Dep(POSITION, "cars", "x_position")
        assert read.matches(Dep(POSITION, "cars", "x_position"))
        assert not read.matches(Dep(POSITION, "cars", "y_position"))
        assert not read.matches(Dep(POSITION, "vans", "x_position"))
        assert not read.matches(Dep(ATTRIBUTE, "cars", "x_position"))

    def test_empty_detail_is_wildcard(self):
        read = Dep(POSITION, "cars")
        assert read.matches(Dep(POSITION, "cars", "x_position"))
        write_all = Dep(POSITION, "cars")
        assert Dep(POSITION, "cars", "x_position").matches(write_all)

    def test_conservative_covers_everything(self):
        rs = ReadSet(frozenset(), conservative=True)
        assert rs.covers(Dep(STATIC, "anything", "whatever"))
        assert not rs.disjoint_from([Dep(ATTRIBUTE, "x", "y")])
        assert rs.update_sensitive

    def test_disjoint_from(self):
        rs = ReadSet(frozenset({Dep(POSITION, "cars")}))
        assert rs.disjoint_from([Dep(ATTRIBUTE, "cars", "fuel")])
        assert not rs.disjoint_from(
            [Dep(ATTRIBUTE, "cars", "fuel"), Dep(POSITION, "cars", "y_position")]
        )

    def test_insensitive_kinds(self):
        rs = ReadSet(frozenset({Dep(POSITION, "cars"), Dep(POPULATION, "cars")}))
        assert rs.insensitive_kinds_for("cars") == [ATTRIBUTE, STATIC]
        assert set(UPDATE_SENSITIVE_KINDS) == {POSITION, ATTRIBUTE, STATIC}


class TestFormulaReadSets:
    def test_spatial_atom(self):
        deps = analyze_formula_deps(
            parse_formula("INSIDE(o, P)"), bindings={"o": "cars"},
            schema=build_db(),
        )
        assert kinds(deps.root_reads, "cars") == {POSITION, POPULATION}
        assert Dep(REGION, None, "P") in deps.root_reads.deps

    def test_attribute_classification_with_schema(self):
        db = build_db()
        fuel = analyze_formula_deps(
            parse_formula("o.fuel < 10"), bindings={"o": "cars"}, schema=db
        )
        assert kinds(fuel.root_reads, "cars") == {ATTRIBUTE, POPULATION}
        price = analyze_formula_deps(
            parse_formula("o.price < 10"), bindings={"o": "cars"}, schema=db
        )
        assert kinds(price.root_reads, "cars") == {STATIC, POPULATION}
        axis = analyze_formula_deps(
            parse_formula("o.x_position < 10"), bindings={"o": "cars"},
            schema=db,
        )
        assert kinds(axis.root_reads, "cars") == {POSITION, POPULATION}

    def test_schema_less_is_sound_both_ways(self):
        deps = analyze_formula_deps(
            parse_formula("o.fuel < 10"), bindings={"o": "cars"}
        )
        # Without a schema, a non-axis attribute could be dynamic or
        # static — the read-set must cover both update kinds.
        assert deps.root_reads.covers(Dep(ATTRIBUTE, "cars", "fuel"))
        assert deps.root_reads.covers(Dep(STATIC, "cars", "fuel"))
        assert not deps.root_reads.covers(Dep(POSITION, "cars", "x_position"))

    def test_dist_reads_both_positions(self):
        deps = analyze_formula_deps(
            parse_formula("DIST(v, b) <= 60"),
            bindings={"v": "trackers", "b": "beacons"},
        )
        assert kinds(deps.root_reads, "trackers") == {POSITION, POPULATION}
        assert kinds(deps.root_reads, "beacons") == {POSITION, POPULATION}

    def test_connectives_union(self):
        deps = analyze_formula_deps(
            parse_formula("EVENTUALLY (o.fuel < 10 AND INSIDE(o, P))"),
            bindings={"o": "cars"},
            schema=build_db(),
        )
        assert kinds(deps.root_reads, "cars") == {
            POSITION, ATTRIBUTE, POPULATION,
        }

    def test_assignment_value_variable_carries_no_class(self):
        deps = analyze_formula_deps(
            parse_formula(
                "EVENTUALLY [m := t.x_position] (c.x_position > m)"
            ),
            bindings={"c": "cars", "t": "trucks"},
        )
        # m is a value variable: the deps of t.x_position are charged to
        # trucks, and m itself contributes nothing.
        assert kinds(deps.root_reads, "cars") == {POSITION, POPULATION}
        assert kinds(deps.root_reads, "trucks") == {POSITION, POPULATION}

    def test_unattributable_term_is_conservative(self):
        from repro.ftl.ast import Attr, Compare

        f = Compare(">", Attr(Var("x"), "speed"), Const(1.0))
        deps = analyze_formula_deps(f, bindings={})
        assert deps.root_reads.conservative

    def test_per_node_reads_are_monotone(self):
        f = parse_formula("o.fuel < 10 AND INSIDE(o, P)")
        deps = analyze_formula_deps(
            f, bindings={"o": "cars"}, schema=build_db()
        )
        for child in (f.left, f.right):
            child_reads = deps.reads_for(child)
            assert child_reads is not None
            assert child_reads.deps <= deps.reads_for(f).deps


class TestQueryLevel:
    def test_query_reads_include_population_of_every_binding(self):
        q = parse_query(
            "RETRIEVE o FROM cars o, motels m WHERE INSIDE(o, P)"
        )
        deps = analyze_query_deps(q, schema=build_db())
        # m never occurs in WHERE, but the target enumeration still
        # reads the motels extent.
        assert Dep(POPULATION, "motels") in deps.query_reads.deps

    def test_ftl702_lists_insensitive_kinds(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        deps = analyze_query_deps(q, schema=build_db())
        assert deps.insensitive_kinds == {"cars": [ATTRIBUTE, STATIC]}
        codes = [d.code for d in deps.diagnostics]
        assert "FTL702" in codes

    def test_ftl701_fires_on_maximal_constant_subtree(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE 1 < 2 AND INSIDE(o, P)")
        deps = analyze_query_deps(q, schema=build_db())
        f701 = [d for d in deps.diagnostics if d.code == "FTL701"]
        assert len(f701) == 1
        assert "1 < 2" in (f701[0].subformula or "")

    def test_no_ftl701_when_everything_is_sensitive(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE o.fuel < 10")
        deps = analyze_query_deps(q, schema=build_db())
        assert not [d for d in deps.diagnostics if d.code == "FTL701"]

    def test_to_json_shape(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        out = analyze_query_deps(q, schema=build_db()).to_json()
        assert set(out) == {"query", "by_class", "regions", "diagnostics"}
        assert out["regions"] == ["P"]
        assert out["by_class"]["cars"]["reads"] == [POPULATION, POSITION]
        assert out["by_class"]["cars"]["insensitive_to"] == [ATTRIBUTE, STATIC]


class TestUpdateFootprint:
    def test_kinds(self):
        db = build_db()
        db.clock.tick()
        db.update_dynamic("c0", "fuel", value=40.0)
        db.update_static("c0", "price", 90.0)
        db.update_motion("c0", Point(2.0, 0.0))
        log = db.log
        fuel = next(u for u in log if u.attribute == "fuel")
        price = next(u for u in log if u.attribute == "price")
        axis = next(u for u in log if u.attribute == "x_position")
        assert update_footprint(fuel, db) == Dep(ATTRIBUTE, "cars", "fuel")
        assert update_footprint(price, db) == Dep(STATIC, "cars", "price")
        assert update_footprint(axis, db) == Dep(
            POSITION, "cars", "x_position"
        )

    def test_unattributable_update_is_none(self):
        class Unknown:
            class_name = None
            object_id = "ghost"
            attribute = "fuel"
            kind = "dynamic"

        assert update_footprint(Unknown(), build_db()) is None
        # Without a database the canonical axis names still classify.
        class Bare:
            class_name = "cars"
            object_id = "c0"
            attribute = "y_position"
            kind = "dynamic"

        assert update_footprint(Bare()) == Dep(
            POSITION, "cars", "y_position"
        )


class TestPlanIntegration:
    def test_plan_json_has_dependencies_and_node_reads(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        plan = q.plan_for()
        out = plan.to_json()
        assert out["dependencies"]["by_class"]["cars"]["reads"]
        assert "reads" in out["root"]

    def test_plan_analysis_keys_match_ordered_tree(self):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE o.fuel < 10 AND INSIDE(o, P)"
        )
        plan = q.plan_for()
        deps = plan.dependency_analysis(schema=build_db())
        ordered = plan.resolve(q.where)
        assert deps.reads_for(ordered) is not None
        assert deps.reads_for(ordered.left) is not None
        assert deps.reads_for(ordered.right) is not None

    def test_dependency_analysis_memoized_per_schema(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
        plan = q.plan_for()
        assert plan.dependency_analysis() is plan.dependency_analysis()
        db = build_db()
        with_schema = plan.dependency_analysis(schema=db)
        assert with_schema is not plan.dependency_analysis()
        assert plan.dependency_analysis(schema=db) is with_schema


class TestEmptyReadSet:
    def test_constants(self):
        assert EMPTY_READ_SET.deps == frozenset()
        assert not EMPTY_READ_SET.update_sensitive
        assert EMPTY_READ_SET.disjoint_from(
            [Dep(k, "cars", "a") for k in UPDATE_SENSITIVE_KINDS]
        )


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
