"""Property test: the analyzer's acceptance is sound.

Any formula the static analyzer accepts (no error-severity diagnostics
against the database schema) must evaluate without
:class:`FtlSemanticsError` under all three methods — naive, interval,
and the incremental continuous-query pipeline (including a post-update
refresh).  This is the contract pre-evaluation gating rests on: passing
the analyzer means no semantic failure can surface mid-evaluation.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ContinuousQuery, MostDatabase, ObjectClass
from repro.errors import FtlSemanticsError
from repro.ftl import (
    Always,
    AlwaysFor,
    AndF,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    FtlQuery,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
    analyze_formula,
)
from repro.geometry import Point
from repro.spatial import Polygon

HORIZON = 8


def build_db() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    for i, (x, vx) in enumerate([(-4, 2), (3, -1), (8, 0)]):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(float(x), 1.0),
            Point(float(vx), 0.0),
            static={"price": 40.0 * (i + 1)},
        )
    return db


bounds = st.integers(min_value=0, max_value=4)

atoms = st.one_of(
    st.builds(Inside, st.just(Var("o")), st.just("P")),
    st.builds(Outside, st.just(Var("n")), st.just("P")),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">=", "=", "!="]),
        st.just(Attr(Var("o"), "x_position")),
        st.builds(Const, st.integers(min_value=-6, max_value=10)),
    ),
    st.builds(
        Compare,
        st.just("<="),
        st.just(Attr(Var("o"), "price")),
        st.builds(Const, st.integers(min_value=0, max_value=150)),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.builds(Dist, st.just(Var("o")), st.just(Var("n"))),
        st.builds(Const, st.integers(min_value=0, max_value=12)),
    ),
    st.builds(
        WithinSphere,
        st.integers(min_value=1, max_value=6),
        st.just((Var("o"), Var("n"))),
    ),
)


def formulas(depth: int):
    if depth == 0:
        return atoms
    sub = formulas(depth - 1)
    return st.one_of(
        atoms,
        st.builds(AndF, sub, sub),
        st.builds(OrF, sub, sub),
        st.builds(NotF, sub),
        st.builds(Until, sub, sub),
        st.builds(UntilWithin, bounds, sub, sub),
        st.builds(Nexttime, sub),
        st.builds(Eventually, sub),
        st.builds(EventuallyWithin, bounds, sub),
        st.builds(EventuallyAfter, bounds, sub),
        st.builds(Always, sub),
        st.builds(AlwaysFor, bounds, sub),
        st.builds(
            Assign,
            st.just("v"),
            st.just(Attr(Var("o"), "x_position")),
            st.builds(
                Compare,
                st.sampled_from(["<=", ">="]),
                st.just(Attr(Var("n"), "x_position")),
                st.just(Var("v")),
            ),
        ),
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(formula=formulas(2))
def test_accepted_formulas_evaluate_everywhere(formula):
    db = build_db()
    bindings = {"o": "cars", "n": "cars"}
    result = analyze_formula(formula, bindings, schema=db)
    assert result.ok, f"generator produced a rejected formula: {result.errors}"

    query = FtlQuery(targets=("o",), bindings=bindings, where=formula)
    try:
        cq = ContinuousQuery(
            db, query, horizon=HORIZON, method="incremental"
        )
        cq.current()
        for method in ("naive", "interval"):
            ContinuousQuery(db, query, horizon=HORIZON, method=method).current()
        # Exercise the post-update refresh (incremental patch or the
        # analyzer-sanctioned fallback to full reevaluation).
        db.update_motion("c0", Point(-1.0, 0.0), position=Point(5.0, 1.0))
        cq.refresh()
        cq.current()
    except FtlSemanticsError as exc:  # pragma: no cover - the property
        raise AssertionError(
            f"analyzer accepted {formula} but evaluation raised: {exc}"
        ) from None
