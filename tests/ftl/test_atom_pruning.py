"""Differential suite for index-pruned atom evaluation (DESIGN.md §7).

The accelerated base case — trajectory-MBR pruning plus the shared
kinetic-solve cache — must be answer-invisible: for every seeded world,
query and evaluation method, the pruned+cached run must produce the same
relation, tuple for tuple and interval for interval, as the exhaustive
run with both layers disabled.  The worlds here are deliberately
*sparse* (positions an order of magnitude wider than the regions and
proximity bounds) so the pruner actually fires; guard tests assert that
it does, keeping the suite honest.
"""

import random

import pytest

from repro.core import MostDatabase, ObjectClass
from repro.core.history import FutureHistory
from repro.core.queries import ContinuousQuery
from repro.errors import QueryError, SchemaError
from repro.ftl import (
    AndF,
    Compare,
    Const,
    Dist,
    Eventually,
    FtlQuery,
    Inside,
    Outside,
    Var,
    WithinSphere,
)
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.ftl.naive import NaiveEvaluator
from repro.geometry import Point
from repro.spatial import Polygon

from tests.ftl.test_differential import (
    HORIZON,
    STEPS,
    apply_random_updates,
    build_world,
    random_query,
)


def rows_of(relation):
    """Canonical, order-independent form of a relation for equality."""
    return sorted(
        (inst, tuple((iv.start, iv.end) for iv in iset.intervals))
        for inst, iset in relation.rows()
    )


def build_sparse_world(rng: random.Random, n: int = 6) -> MostDatabase:
    """A fleet spread over +-300 with small regions: most instantiations
    never come near a region or each other, so pruning has teeth."""
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    db.create_class(ObjectClass("vans", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(-10, -10, 10, 10))
    db.define_region("Q", Polygon.rectangle(200, 200, 230, 230))
    for i in range(n):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(rng.randint(-300, 300), rng.randint(-300, 300)),
            Point(rng.randint(-2, 2), rng.randint(-2, 2)),
            static={"price": rng.randint(0, 150)},
        )
    for i in range(max(2, n // 2)):
        db.add_moving_object(
            "vans",
            f"v{i}",
            Point(rng.randint(-300, 300), rng.randint(-300, 300)),
            Point(rng.randint(-2, 2), rng.randint(-2, 2)),
        )
    return db


def both_modes(query, db, horizon=HORIZON):
    """(exhaustive rows, accelerated rows) on snapshots of one db."""
    exhaustive = query.evaluate_full(
        FutureHistory(db), horizon, index_pruning=False, solve_cache=False
    )
    accelerated = query.evaluate_full(FutureHistory(db), horizon)
    return rows_of(exhaustive), rows_of(accelerated)


# ---------------------------------------------------------------------------
# The main differential sweep: 200+ seeded scenarios
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(120))
def test_pruned_equals_exhaustive_random_worlds(seed):
    """Random dense-ish worlds and random formulas (all atom kinds, all
    temporal operators) — identical relations with and without the
    acceleration layers."""
    rng = random.Random(seed)
    db = build_world(rng)
    query = random_query(rng)
    plain, fast = both_modes(query, db)
    assert plain == fast, f"seed {seed}: {query.where}"


@pytest.mark.parametrize("seed", range(120, 220))
def test_pruned_equals_exhaustive_sparse_worlds(seed):
    """Sparse worlds where pruning fires on most instantiations."""
    rng = random.Random(seed)
    db = build_sparse_world(rng)
    query = random_query(rng)
    plain, fast = both_modes(query, db)
    assert plain == fast, f"seed {seed}: {query.where}"


ATOMS = [
    Inside(Var("c"), "P"),
    Outside(Var("c"), "Q"),
    WithinSphere(3, (Var("c"), Var("v"))),
    Compare("<=", Dist(Var("c"), Var("v")), Const(5)),
    Compare(">=", Dist(Var("c"), Var("v")), Const(5)),
    Compare("<", Dist(Var("c"), Var("v")), Const(5)),
    Compare(">", Const(5), Dist(Var("c"), Var("v"))),
]


@pytest.mark.parametrize("atom", ATOMS, ids=lambda a: str(a))
def test_every_prunable_atom_kind(atom):
    """Each prunable atom kind, alone and under a temporal operator, on
    sparse worlds — equal answers, and the pruner demonstrably fired."""
    pruned_total = 0
    for seed in range(8):
        rng = random.Random(1000 + seed)
        db = build_sparse_world(rng)
        free = sorted(atom.free_vars())
        bindings = {v: ("cars" if v == "c" else "vans") for v in free}
        for where in (atom, Eventually(atom)):
            query = FtlQuery(
                targets=tuple(free), bindings=bindings, where=where
            )
            plain, fast = both_modes(query, db)
            assert plain == fast, f"seed {seed}: {where}"
            ctx = EvalContext(FutureHistory(db), HORIZON, bindings)
            ev = IntervalEvaluator(ctx, solve_cache=False)
            ev.evaluate(where)
            pruned_total += ev.pruned_instantiations
    assert pruned_total > 0, f"pruner never fired for {atom}"


# ---------------------------------------------------------------------------
# Continuous queries under update streams
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
@pytest.mark.parametrize("method", ["interval", "incremental"])
def test_continuous_queries_agree_under_updates(method, seed):
    """Accelerated vs exhaustive continuous queries over identical update
    streams: every display and the final Answer(CQ) must agree.  The
    incremental method additionally exercises the shared cache across
    PartialIntervalEvaluator refreshes."""
    rng = random.Random(seed)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(2):
        rng.setstate(world_bits)
        dbs.append(build_world(rng))
    query = random_query(rng)
    plain = ContinuousQuery(
        dbs[0],
        query,
        horizon=HORIZON,
        method=method,
        index_pruning=False,
        solve_cache=False,
    )
    fast = ContinuousQuery(dbs[1], query, horizon=HORIZON, method=method)
    for step in range(STEPS):
        for db in dbs:
            db.clock.tick()
        apply_random_updates(rng, dbs)
        a, b = plain.current(), fast.current()
        assert a == b, (
            f"seed {seed} step {step}: displays diverge for {query.where}\n"
            f"exhaustive:  {sorted(a, key=str)}\n"
            f"accelerated: {sorted(b, key=str)}"
        )
    tuples = [
        sorted((t.values, t.begin, t.end) for t in cq.answer_tuples())
        for cq in (plain, fast)
    ]
    assert tuples[0] == tuples[1], f"seed {seed}: {query.where}"


def test_cache_invalidated_by_motion_update():
    """An explicit motion update changes the attribute triples, hence the
    cache keys: the accelerated answer tracks the new motion instead of
    serving the pre-update solve."""
    rng = random.Random(7)
    db = build_sparse_world(rng, n=4)
    query = FtlQuery(
        targets=("c",),
        bindings={"c": "cars"},
        where=Inside(Var("c"), "P"),
    )
    plain, fast = both_modes(query, db)
    assert plain == fast
    # Send a far-away car through the region.
    db.update_motion("c0", Point(0, 0), position=Point(0, 0))
    plain, fast = both_modes(query, db)
    assert plain == fast
    assert any(inst == ("c0",) for inst, _ in fast)


# ---------------------------------------------------------------------------
# Counters and cache units
# ---------------------------------------------------------------------------


def test_counters_account_for_pruning_and_caching():
    rng = random.Random(3)
    db = build_sparse_world(rng, n=8)
    # Survivors: a car crossing P with a van alongside, so pruning leaves
    # work for the cache layer to absorb on the second run.
    db.add_moving_object(
        "cars", "cnear", Point(-2, 0), Point(1, 0), static={"price": 1}
    )
    db.add_moving_object("vans", "vnear", Point(-1, 1), Point(1, 0))
    bindings = {"c": "cars", "v": "vans"}
    where = AndF(
        Inside(Var("c"), "P"),
        Compare("<=", Dist(Var("c"), Var("v")), Const(4)),
    )

    def run(**kwargs):
        ctx = EvalContext(FutureHistory(db), HORIZON, bindings)
        ev = IntervalEvaluator(ctx, **kwargs)
        ev.evaluate(where)
        return ev

    exhaustive = run(index_pruning=False, solve_cache=False)
    pruned = run(solve_cache=False)
    assert exhaustive.pruned_instantiations == 0
    assert exhaustive.cache_hits == exhaustive.cache_misses == 0
    assert pruned.pruned_instantiations > 0
    assert pruned.kinetic_solves < exhaustive.kinetic_solves
    counters = pruned.counters()
    assert set(counters) == {
        "kinetic_solves",
        "sampled_atom_evals",
        "pruned_instantiations",
        "cache_hits",
        "cache_misses",
        "cache_shift_hits",
    }
    # Same evaluation twice through the db-wide cache: the second run's
    # surviving instantiations are all hits, with zero fresh solves.
    first = run()
    second = run()
    assert first.kinetic_solves == pruned.kinetic_solves
    assert second.kinetic_solves == 0
    assert second.cache_hits > 0
    assert second.cache_misses == 0
    # Per-atom stats feed the drift report.
    for stats in second.atom_stats.values():
        assert stats["instantiations"] == stats["pruned"] + stats["cache_hits"]


def test_cache_bound_is_enforced():
    from repro.ftl.atoms import KineticSolveCache
    from repro.temporal import DISCRETE, IntervalSet

    cache = KineticSolveCache(max_entries=4)
    sets = IntervalSet.empty(DISCRETE)
    for i in range(10):
        cache.put(("k", i), sets)
    assert len(cache) == 4
    assert cache.get(("k", 0)) is None  # FIFO-evicted
    assert cache.get(("k", 9)) is not None
    assert cache.hits == 1 and cache.misses == 1
    cache.get(("k", 1), record=False)  # oracle probes don't touch stats
    assert cache.hits == 1 and cache.misses == 1


def test_naive_read_through_matches_geometry():
    """The per-state oracle with ``use_solve_cache=True`` reads interval
    sets the interval evaluator solved and agrees with its own geometric
    evaluation — the cache-coherence check of the two representations."""
    rng = random.Random(11)
    db = build_world(rng)
    bindings = {"c": "cars", "v": "vans"}
    where = AndF(
        Inside(Var("c"), "P"), WithinSphere(4, (Var("c"), Var("v")))
    )
    # Warm the db-wide cache with the interval evaluator's solves.
    warm_ctx = EvalContext(FutureHistory(db), HORIZON, bindings)
    IntervalEvaluator(warm_ctx, index_pruning=False).evaluate(where)
    ctx = EvalContext(FutureHistory(db), HORIZON, bindings)
    plain = NaiveEvaluator(ctx).evaluate(where)
    ctx2 = EvalContext(FutureHistory(db), HORIZON, bindings)
    cached = NaiveEvaluator(ctx2, use_solve_cache=True)
    reread = cached.evaluate(where)
    assert rows_of(plain) == rows_of(reread)
    assert cached.cache_hits > 0


# ---------------------------------------------------------------------------
# Error parity
# ---------------------------------------------------------------------------


def test_pruning_preserves_errors_on_nonspatial_objects():
    """An atom over a class without spatial attributes raises the same
    error with acceleration on and off — pruning must never swallow it."""
    db = MostDatabase()
    db.create_class(ObjectClass("tags", dynamic_attributes=("level",)))
    db.define_region("P", Polygon.rectangle(0, 0, 5, 5))
    from repro.core.dynamic import DynamicAttribute

    db.add_object(
        "tags",
        "t0",
        dynamic={"level": DynamicAttribute.linear(1.0, 0.5)},
    )
    query = FtlQuery(
        targets=("t",), bindings={"t": "tags"}, where=Inside(Var("t"), "P")
    )
    with pytest.raises((QueryError, SchemaError)) as plain_err:
        query.evaluate_full(
            FutureHistory(db), 5, index_pruning=False, solve_cache=False
        )
    with pytest.raises((QueryError, SchemaError)) as fast_err:
        query.evaluate_full(FutureHistory(db), 5)
    assert type(plain_err.value) is type(fast_err.value)
    assert str(plain_err.value) == str(fast_err.value)
