"""Differential harness: naive ≡ interval ≡ incremental continuous queries.

Three continuous queries — one per evaluation method — are registered over
identical randomly generated worlds and driven through the same randomized
update sequence.  At every step their displays must agree, and at the end
their full ``Answer(CQ)`` tuple sets must agree.  Scenarios use integer
positions, velocities and thresholds (like ``test_equivalence``) so the
kinetic solvers and the per-state oracle see the same tick-boundary
crossings.

Each seed is one deterministic case; the parametrized suite runs 200+.
"""

import random

import pytest

from repro.core import MostDatabase, ObjectClass
from repro.core.queries import ContinuousQuery
from repro.ftl import (
    Always,
    AlwaysFor,
    AndF,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    FtlQuery,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
)
from repro.geometry import Point
from repro.spatial import Polygon

HORIZON = 14
STEPS = 6

# ---------------------------------------------------------------------------
# Random worlds: two bound classes plus an unbound noise class
# ---------------------------------------------------------------------------


def build_world(rng: random.Random) -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    db.create_class(ObjectClass("vans", spatial_dimensions=2))
    db.create_class(ObjectClass("birds", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    db.define_region("Q", Polygon.rectangle(4, -6, 15, 3))
    for i in range(rng.randint(2, 3)):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(rng.randint(-8, 12), rng.randint(-8, 12)),
            Point(rng.randint(-2, 2), rng.randint(-2, 2)),
            static={"price": rng.randint(0, 150)},
        )
    for i in range(rng.randint(1, 2)):
        db.add_moving_object(
            "vans",
            f"v{i}",
            Point(rng.randint(-8, 12), rng.randint(-8, 12)),
            Point(rng.randint(-2, 2), rng.randint(-2, 2)),
        )
    db.add_moving_object("birds", "b0", Point(0, 0), Point(1, 1))
    return db


# ---------------------------------------------------------------------------
# Random formulas from the incrementally maintainable fragment
# ---------------------------------------------------------------------------


def random_atom(rng: random.Random):
    kind = rng.randrange(6)
    if kind == 0:
        ctor = rng.choice((Inside, Outside))
        return ctor(Var(rng.choice(("c", "v"))), rng.choice(("P", "Q")))
    if kind == 1:
        return Compare(
            rng.choice(("<=", ">=", "<", ">")),
            Attr(Var(rng.choice(("c", "v"))), "x_position"),
            Const(rng.randint(-10, 15)),
        )
    if kind == 2:
        return Compare(
            "<=", Attr(Var("c"), "price"), Const(rng.randint(0, 150))
        )
    if kind == 3:
        return Compare(
            rng.choice(("<=", ">=")),
            Dist(Var("c"), Var("v")),
            Const(rng.randint(0, 12)),
        )
    if kind == 4:
        return WithinSphere(rng.randint(1, 6), (Var("c"), Var("v")))
    return Compare(
        rng.choice(("<=", ">=")),
        Attr(Var("c"), "y_position"),
        Const(rng.randint(-10, 15)),
    )


def random_formula(rng: random.Random, depth: int):
    if depth == 0 or rng.random() < 0.3:
        return random_atom(rng)
    kind = rng.randrange(11)
    sub = lambda: random_formula(rng, depth - 1)  # noqa: E731
    bound = rng.randint(0, 5)
    if kind == 0:
        return AndF(sub(), sub())
    if kind == 1:
        return OrF(sub(), sub())
    if kind == 2:
        return NotF(sub())
    if kind == 3:
        return Until(sub(), sub())
    if kind == 4:
        return UntilWithin(bound, sub(), sub())
    if kind == 5:
        return Nexttime(sub())
    if kind == 6:
        return Eventually(sub())
    if kind == 7:
        return EventuallyWithin(bound, sub())
    if kind == 8:
        return EventuallyAfter(bound, sub())
    if kind == 9:
        return Always(sub())
    return AlwaysFor(bound, sub())


def random_query(rng: random.Random) -> FtlQuery:
    formula = random_formula(rng, 2)
    free = sorted(formula.free_vars())
    if not free:  # pragma: no cover - atoms always mention a variable
        formula = AndF(formula, Inside(Var("c"), "P"))
        free = ["c"]
    bindings = {v: ("cars" if v == "c" else "vans") for v in free}
    return FtlQuery(targets=tuple(free), bindings=bindings, where=formula)


# ---------------------------------------------------------------------------
# Randomized update sequences applied identically to every replica
# ---------------------------------------------------------------------------


def apply_random_updates(rng: random.Random, dbs) -> None:
    """One step of the update process, replayed identically on each db."""
    n_updates = rng.randint(0, 2)
    movers = [o.object_id for o in dbs[0].objects_of("cars")] + [
        o.object_id for o in dbs[0].objects_of("vans")
    ]
    for _ in range(n_updates):
        action = rng.random()
        if action < 0.6:
            oid = rng.choice(movers)
            velocity = Point(rng.randint(-2, 2), rng.randint(-2, 2))
            position = (
                Point(rng.randint(-8, 12), rng.randint(-8, 12))
                if rng.random() < 0.3
                else None
            )
            for db in dbs:
                db.update_motion(oid, velocity, position=position)
        elif action < 0.8:
            price = rng.randint(0, 150)
            for db in dbs:
                db.update_static("c0", "price", price)
        else:
            # Noise: the unbound class must never dirty the answers.
            velocity = Point(rng.randint(-2, 2), rng.randint(-2, 2))
            for db in dbs:
                db.update_motion("b0", velocity)


def run_case(seed: int) -> None:
    rng = random.Random(seed)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(3):
        rng.setstate(world_bits)  # identical replicas
        dbs.append(build_world(rng))
    query = random_query(rng)
    cqs = [
        ContinuousQuery(db, query, horizon=HORIZON, method=method)
        for db, method in zip(dbs, ("naive", "interval", "incremental"))
    ]
    naive, interval, incremental = cqs
    for step in range(STEPS):
        for db in dbs:
            db.clock.tick()
        apply_random_updates(rng, dbs)
        a, b, c = naive.current(), interval.current(), incremental.current()
        assert a == b == c, (
            f"seed {seed} step {step}: displays diverge for {query.where}\n"
            f"naive:       {sorted(a, key=str)}\n"
            f"interval:    {sorted(b, key=str)}\n"
            f"incremental: {sorted(c, key=str)}"
        )
    tuple_sets = [
        sorted((t.values, t.begin, t.end) for t in cq.answer_tuples())
        for cq in cqs
    ]
    assert tuple_sets[0] == tuple_sets[1] == tuple_sets[2], (
        f"seed {seed}: Answer(CQ) tuples diverge for {query.where}\n"
        f"naive:       {tuple_sets[0]}\n"
        f"interval:    {tuple_sets[1]}\n"
        f"incremental: {tuple_sets[2]}"
    )
    # The replicas saw identical update streams, so the unbound-class noise
    # and coalescing behaviour must leave all three counters in lockstep.
    assert naive.evaluations == interval.evaluations == incremental.evaluations


@pytest.mark.parametrize("seed", range(200))
def test_methods_agree(seed):
    run_case(seed)


@pytest.mark.parametrize("seed", range(200, 220))
def test_methods_agree_deep_formulas(seed):
    """Deeper trees stress the Until outer join and Or/Not enumeration."""
    rng = random.Random(seed)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(3):
        rng.setstate(world_bits)
        dbs.append(build_world(rng))
    formula = random_formula(rng, 3)
    free = sorted(formula.free_vars())
    bindings = {v: ("cars" if v == "c" else "vans") for v in free}
    query = FtlQuery(targets=tuple(free), bindings=bindings, where=formula)
    cqs = [
        ContinuousQuery(db, query, horizon=HORIZON, method=method)
        for db, method in zip(dbs, ("naive", "interval", "incremental"))
    ]
    for step in range(4):
        for db in dbs:
            db.clock.tick()
        apply_random_updates(rng, dbs)
        results = [cq.current() for cq in cqs]
        assert results[0] == results[1] == results[2], (
            f"seed {seed} step {step}: {formula}"
        )


def test_incremental_actually_used():
    """Guard: the differential suite exercises the incremental path, not a
    silent fallback to full reevaluation."""
    refreshes = 0
    for seed in range(40):
        rng = random.Random(seed)
        world_bits = rng.getstate()
        rng.setstate(world_bits)
        db = build_world(rng)
        query = random_query(rng)
        cq = ContinuousQuery(db, query, horizon=HORIZON, method="incremental")
        assert cq._use_incremental
        for _ in range(STEPS):
            db.clock.tick()
            apply_random_updates(rng, [db])
            cq.current()
        refreshes += cq.incremental_refreshes
    assert refreshes > 50
