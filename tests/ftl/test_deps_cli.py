"""Golden-file tests for the lint CLI's ``--deps`` update-impact report.

Each ``golden/deps/*.ftl`` fixture has a ``*.deps.json`` sibling pinning
the schema-less dependency report — per-class read kinds, insensitive
update kinds, region reads, and the FTL701/FTL702 findings.  The golden
files pin the analysis' user-visible contract: a read-set gaining or
losing a kind, or a finding drifting, fails here.

To regenerate after an intentional change::

    PYTHONPATH=src python tests/ftl/test_deps_cli.py --update
"""

import json
import sys
from pathlib import Path

import pytest

from repro.ftl.lint import deps_report, lint_file, main

GOLDEN_DIR = Path(__file__).parent / "golden" / "deps"
FIXTURES = sorted(GOLDEN_DIR.glob("*.ftl"))


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[p.stem for p in FIXTURES]
)
def test_golden_deps_report(fixture):
    expected = json.loads(fixture.with_suffix(".deps.json").read_text())
    actual = deps_report(fixture.read_text())
    assert actual == expected


def test_fixtures_exist():
    assert FIXTURES, "golden/deps fixtures are missing"


def test_lint_file_embeds_report_only_with_flag():
    fixture = str(FIXTURES[0])
    assert "dependencies" not in lint_file(fixture)
    assert lint_file(fixture, deps=True)["dependencies"] is not None


def test_cli_json_roundtrip(capsys):
    status = main(["--json", "--deps", str(FIXTURES[0])])
    assert status == 0
    reports = json.loads(capsys.readouterr().out)
    deps = reports[0]["dependencies"]
    assert set(deps) == {"query", "by_class", "regions", "diagnostics"}


def test_cli_human_output_mentions_reads(capsys):
    status = main(["--deps", str(FIXTURES[0])])
    assert status == 0
    out = capsys.readouterr().out
    assert "dependencies:" in out
    assert "reads" in out


def test_deps_never_affect_exit_status(tmp_path, capsys):
    bad = tmp_path / "bad.ftl"
    bad.write_text("RETRIEVE o FROM cars o WHERE INSIDE(o,")
    assert main(["--deps", str(bad)]) == 1
    capsys.readouterr()
    good = tmp_path / "good.ftl"
    good.write_text("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
    # FTL702 info findings in the report leave the status at 0.
    assert main(["--deps", "--strict", str(good)]) == 0
    capsys.readouterr()


def test_parse_failure_yields_none_report():
    assert deps_report("RETRIEVE o FROM") is None


def _update() -> None:
    for fixture in FIXTURES:
        report = deps_report(fixture.read_text())
        fixture.with_suffix(".deps.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )
        print(f"updated {fixture.with_suffix('.deps.json')}")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
