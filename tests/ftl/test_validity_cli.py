"""Golden-file tests for the lint CLI's ``--validity`` horizon report.

Each ``golden/validity/*.ftl`` fixture has a ``*.validity.json`` sibling
pinning the schema-less validity report — the root horizon shape, the
event classes and the per-kind node counts.  The goldens pin the
analysis' user-visible contract: a horizon changing kind, gaining an
offset, or a diagnostic drifting, fails here.

Also covers the flag-composition contract: ``--deps --validity`` merges
both reports into ONE per-file JSON document, and ``--strict-deps``
promotes the FTL701/FTL702 advisory findings to an exit-1 gate.

To regenerate after an intentional change::

    PYTHONPATH=src python tests/ftl/test_validity_cli.py --update
"""

import json
import sys
from pathlib import Path

import pytest

from repro.ftl.lint import lint_file, main, validity_report

GOLDEN_DIR = Path(__file__).parent / "golden" / "validity"
FIXTURES = sorted(GOLDEN_DIR.glob("*.ftl"))

DEPS_DIR = Path(__file__).parent / "golden" / "deps"


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[p.stem for p in FIXTURES]
)
def test_golden_validity_report(fixture):
    expected = json.loads(fixture.with_suffix(".validity.json").read_text())
    actual = validity_report(fixture.read_text())
    assert actual == expected


def test_fixtures_exist():
    assert FIXTURES, "golden/validity fixtures are missing"


def test_lint_file_embeds_report_only_with_flag():
    fixture = str(FIXTURES[0])
    assert "validity" not in lint_file(fixture)
    assert lint_file(fixture, validity=True)["validity"] is not None


def test_cli_json_shape(capsys):
    status = main(["--json", "--validity", str(FIXTURES[0])])
    assert status == 0
    reports = json.loads(capsys.readouterr().out)
    validity = reports[0]["validity"]
    assert set(validity) == {"root", "classes", "nodes", "diagnostics"}
    assert set(validity["nodes"]) == {
        "total", "bottom", "constant", "sliding", "guarded",
    }


def test_deps_and_validity_merge_into_one_document(capsys):
    """``--deps --validity --json`` emits a single per-file report
    carrying BOTH analysis blocks — not two documents."""
    status = main(["--json", "--deps", "--validity", str(FIXTURES[0])])
    assert status == 0
    out = capsys.readouterr().out
    reports = json.loads(out)  # one JSON document
    assert len(reports) == 1
    report = reports[0]
    assert set(report) >= {"file", "dependencies", "validity"}
    assert set(report["dependencies"]) == {
        "query", "by_class", "regions", "diagnostics",
    }
    assert report["validity"]["root"]["kind"] in (
        "bottom", "constant", "sliding", "guarded",
    )


def test_cli_human_output_mentions_horizon(capsys):
    status = main(["--validity", str(FIXTURES[0])])
    assert status == 0
    out = capsys.readouterr().out
    assert "validity:" in out


def test_validity_never_affects_exit_status(tmp_path, capsys):
    bad = tmp_path / "bad.ftl"
    bad.write_text("RETRIEVE o FROM cars o WHERE INSIDE(o,")
    assert main(["--validity", str(bad)]) == 1
    capsys.readouterr()
    good = tmp_path / "good.ftl"
    good.write_text("RETRIEVE o FROM cars o WHERE INSIDE(o, P)")
    assert main(["--validity", "--strict", str(good)]) == 0
    capsys.readouterr()


def test_strict_deps_gates_on_ftl70x(capsys):
    """FTL701/FTL702 are advisory under ``--deps`` but an exit-1 gate
    under ``--strict-deps`` (which implies ``--deps``)."""
    fixture = str(DEPS_DIR / "position_only.ftl")  # carries FTL702 info
    assert main(["--deps", fixture]) == 0
    capsys.readouterr()
    assert main(["--strict-deps", fixture]) == 1
    out = capsys.readouterr().out
    assert "FTL70" in out


def test_strict_deps_passes_clean_queries(tmp_path, capsys):
    """A query sensitive to every update kind of its classes has no
    FTL701/FTL702 findings, so the strict gate stays green."""
    clean = tmp_path / "clean.ftl"
    clean.write_text(
        "RETRIEVE o FROM cars o WHERE o.fuel < 10 AND "
        "o.price < 50 AND INSIDE(o, P)"
    )
    assert main(["--strict-deps", str(clean)]) == 0
    capsys.readouterr()


def test_parse_failure_yields_none_report():
    assert validity_report("RETRIEVE o FROM") is None


def _update() -> None:
    for fixture in FIXTURES:
        report = validity_report(fixture.read_text())
        fixture.with_suffix(".validity.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )
        print(f"updated {fixture.with_suffix('.validity.json')}")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
