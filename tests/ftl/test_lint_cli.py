"""Tests for the ``python -m repro.ftl.lint`` command-line interface."""

import json
import subprocess
import sys
from pathlib import Path

from repro.ftl.lint import lint_text, main, strip_comments

GOLDEN = Path(__file__).parent / "golden"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestMain:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(
            tmp_path, "ok.ftl",
            "RETRIEVE o FROM cars o WHERE INSIDE(o, P)\n",
        )
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) checked, 0 with findings" in out

    def test_error_file_exits_one(self, tmp_path, capsys):
        path = write(
            tmp_path, "bad.ftl",
            "RETRIEVE o FROM cars o WHERE o.x_position / 0 > 1\n",
        )
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "error[FTL301]" in out
        assert f"{path}:1:30:" in out

    def test_warning_passes_unless_strict(self, tmp_path, capsys):
        path = write(
            tmp_path, "warn.ftl",
            "RETRIEVE o FROM cars o "
            "WHERE EVENTUALLY WITHIN 0 o.x_position > 1\n",
        )
        assert main([path]) == 0
        capsys.readouterr()
        assert main(["--strict", path]) == 1

    def test_syntax_error_reported_with_position(self, tmp_path, capsys):
        path = write(
            tmp_path, "syn.ftl", "RETRIEVE o FROM cars o\nWHERE >\n"
        )
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "error[syntax]" in out
        assert ":2:" in out

    def test_unbound_variable_reported_as_semantics(self, tmp_path, capsys):
        path = write(
            tmp_path, "sem.ftl",
            "RETRIEVE o FROM cars o WHERE m.x_position > 1\n",
        )
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "error[semantics]" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.ftl")]) == 1
        assert "error" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        bad = write(
            tmp_path, "bad.ftl",
            "RETRIEVE o FROM cars o WHERE o.x_position / 0 > 1\n",
        )
        ok = write(
            tmp_path, "ok.ftl",
            "RETRIEVE o FROM cars o WHERE INSIDE(o, P)\n",
        )
        assert main(["--json", bad, ok]) == 1
        reports = json.loads(capsys.readouterr().out)
        by_file = {r["file"]: r for r in reports}
        assert not by_file[bad]["ok"]
        assert by_file[ok]["ok"]
        (diag,) = by_file[bad]["diagnostics"]
        assert diag["code"] == "FTL301"
        assert diag["span"]["line"] == 1
        assert "fragment" in by_file[ok]

    def test_multiple_files_aggregate_status(self, tmp_path, capsys):
        ok = write(
            tmp_path, "ok.ftl",
            "RETRIEVE o FROM cars o WHERE INSIDE(o, P)\n",
        )
        bad = write(
            tmp_path, "bad.ftl",
            "RETRIEVE o FROM cars o WHERE o.x_position / 0 > 1\n",
        )
        assert main([ok, bad]) == 1
        assert "2 file(s) checked, 1 with findings" in capsys.readouterr().out


class TestHelpers:
    def test_strip_comments_preserves_line_numbers(self):
        text = "-- header\nRETRIEVE o\n-- mid\nFROM cars o\nWHERE TRUE"
        stripped = strip_comments(text)
        assert stripped.count("\n") == text.count("\n")
        assert "header" not in stripped

    def test_lint_text_clean(self):
        analysis, extra = lint_text(
            "RETRIEVE o FROM cars o WHERE INSIDE(o, P)"
        )
        assert analysis is not None and analysis.ok and not extra

    def test_lint_text_syntax_error(self):
        analysis, extra = lint_text("RETRIEVE o FROM")
        assert analysis is None
        assert extra[0]["code"] == "syntax"


def test_module_entry_point():
    """``python -m repro.ftl.lint`` runs as a module."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.ftl.lint", str(GOLDEN / "clean.ftl")],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    assert "0 with findings" in result.stdout


def test_examples_directory_is_clean():
    """The shipped example queries must lint cleanly (the CI gate)."""
    examples = sorted(
        (Path(__file__).parents[2] / "examples" / "queries").glob("*.ftl")
    )
    assert examples, "examples/queries/*.ftl missing"
    assert main([str(p) for p in examples]) == 0
