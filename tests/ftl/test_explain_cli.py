"""Tests for the ``python -m repro.ftl.explain`` command-line interface.

The golden files under ``golden/explain/`` pin the CLI's user-visible
contract for the shipped example queries — the rendered plan tree and
the ``--json`` report.  To regenerate after an intentional change::

    PYTHONPATH=src python tests/ftl/test_explain_cli.py --update
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ftl.explain import explain_file, main

EXAMPLES = sorted(
    (Path(__file__).parents[2] / "examples" / "queries").glob("*.ftl")
)
GOLDEN_DIR = Path(__file__).parent / "golden" / "explain"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def normalized_report(path: Path) -> dict:
    """The JSON report with the machine-specific file path relativized."""
    report = explain_file(str(path))
    report["file"] = path.name
    return report


class TestMain:
    def test_examples_explain_cleanly(self, capsys):
        assert main([str(p) for p in EXAMPLES]) == 0
        out = capsys.readouterr().out
        for p in EXAMPLES:
            assert f"== {p} ==" in out
        assert "cost" in out

    def test_json_output_is_valid(self, capsys):
        assert main(["--json"] + [str(p) for p in EXAMPLES]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == len(EXAMPLES)
        for report in reports:
            assert report["ok"]
            assert report["plan"]["total"]["cost"] > 0
            assert "_render" not in report

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        path = write(tmp_path, "bad.ftl", "RETRIEVE o FROM\n")
        assert main([path]) == 1
        assert "error[syntax]" in capsys.readouterr().out

    def test_analysis_error_exits_one(self, tmp_path, capsys):
        path = write(
            tmp_path, "bad.ftl",
            "RETRIEVE o FROM cars o WHERE o.x_position / 0 > 1\n",
        )
        assert main([path]) == 1
        assert "FTL301" in capsys.readouterr().out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.ftl")]) == 1
        assert "error" in capsys.readouterr().out

    def test_no_order_shows_syntactic_plan(self, tmp_path, capsys):
        path = write(
            tmp_path, "q.ftl",
            "RETRIEVE c FROM cars c, vans v, vans w\n"
            "WHERE DIST(c, v) <= 4 AND DIST(v, w) <= 4 AND c.price <= 3\n",
        )
        assert main([path]) == 0
        ordered = capsys.readouterr().out
        assert main(["--no-order", path]) == 0
        syntactic = capsys.readouterr().out
        assert "[reordered]" in ordered
        assert "[reordered]" not in syntactic
        assert ordered != syntactic

    def test_expand_rewrites_derived_operators(self, tmp_path, capsys):
        path = write(
            tmp_path, "q.ftl",
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 8 INSIDE(o, P)\n",
        )
        assert main(["--expand", path]) == 0
        out = capsys.readouterr().out
        assert "until-chain-merge" in out
        assert "eventually-within" not in out

    def test_class_size_and_horizon_scale_costs(self, capsys):
        path = str(EXAMPLES[0])
        assert main(["--class-size", "2", "--horizon", "4", path]) == 0
        small = capsys.readouterr().out
        assert main(["--class-size", "64", "--horizon", "64", path]) == 0
        large = capsys.readouterr().out
        assert small != large

    def test_diagnostics_printed_under_plan(self, tmp_path, capsys):
        path = write(
            tmp_path, "q.ftl",
            "RETRIEVE c FROM cars c, vans v\n"
            "WHERE INSIDE(c, P) AND INSIDE(v, P)\n",
        )
        assert main([path]) == 0
        assert "warning[FTL601]" in capsys.readouterr().out


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_golden_explain_json(example):
    expected = json.loads(
        (GOLDEN_DIR / f"{example.stem}.json").read_text()
    )
    assert normalized_report(example) == expected


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_golden_explain_render(example):
    expected = (GOLDEN_DIR / f"{example.stem}.txt").read_text()
    assert normalized_report(example)["_render"] + "\n" == expected


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_plan_json_keeps_legacy_keys(example):
    """The ``dependencies`` block is additive: every pre-existing key of
    the plan report survives with its original shape, so older consumers
    of the ``--json`` output keep parsing."""
    plan = normalized_report(example)["plan"]
    for key in (
        "ordered",
        "reordered",
        "formula",
        "total",
        "atom_acceleration",
        "shared_subformulas",
        "diagnostics",
        "root",
    ):
        assert key in plan, key
    assert set(plan["dependencies"]) == {
        "query", "by_class", "regions", "diagnostics",
    }

    def walk(node):
        for key in ("op", "formula", "routine", "free_vars", "estimate"):
            assert key in node, key
        for child in node.get("children", []):
            walk(child)

    walk(plan["root"])


def test_module_entry_point():
    """``python -m repro.ftl.explain`` runs as a module."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.ftl.explain", str(EXAMPLES[0])],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    assert "plan:" in result.stdout


def _update() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for example in EXAMPLES:
        report = normalized_report(example)
        render = report.pop("_render")
        (GOLDEN_DIR / f"{example.stem}.txt").write_text(render + "\n")
        report["_render"] = render
        (GOLDEN_DIR / f"{example.stem}.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )
        print(f"updated {GOLDEN_DIR / example.stem}.{{txt,json}}")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
