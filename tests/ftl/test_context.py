"""Unit tests for the FTL evaluation context (term evaluation)."""

import pytest

from repro.core import DynamicAttribute, FutureHistory, MostDatabase, ObjectClass, RecordedHistory
from repro.errors import FtlSemanticsError
from repro.ftl import (
    Arith,
    Attr,
    Const,
    Dist,
    SubAttr,
    TimeTerm,
    Var,
)
from repro.ftl.context import EvalContext
from repro.geometry import Point
from repro.motion import LinearFunction


@pytest.fixture
def ctx() -> EvalContext:
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    db.add_moving_object(
        "cars", "a", Point(0, 0), Point(2, 0), static={"price": 99}
    )
    db.add_moving_object("cars", "b", Point(10, 0), Point(0, 0))
    return EvalContext(FutureHistory(db), horizon=20, bindings={"o": "cars"})


class TestWindow:
    def test_bounds(self, ctx):
        assert ctx.start == 0
        assert ctx.end == 20
        assert list(ctx.ticks()) == list(range(21))
        assert ctx.window.start == 0 and ctx.window.end == 20

    def test_negative_horizon(self, ctx):
        with pytest.raises(FtlSemanticsError):
            EvalContext(ctx.history, -1, {})


class TestDomains:
    def test_object_domain(self, ctx):
        assert ctx.domain("o") == ["a", "b"]
        assert ctx.is_object_var("o")

    def test_unknown_domain(self, ctx):
        with pytest.raises(FtlSemanticsError):
            ctx.domain("zap")

    def test_push_pop(self, ctx):
        ctx.push_domain("x", [1, 2])
        assert ctx.domain("x") == [1, 2]
        assert not ctx.is_object_var("x")
        ctx.pop_domain("x")
        with pytest.raises(FtlSemanticsError):
            ctx.domain("x")

    def test_shadowing_rejected(self, ctx):
        with pytest.raises(FtlSemanticsError):
            ctx.push_domain("o", [1])


class TestTermEvaluation:
    def test_const_time_var(self, ctx):
        assert ctx.eval_term(Const(5), {}, 0) == 5
        assert ctx.eval_term(TimeTerm(), {}, 7) == 7
        assert ctx.eval_term(Var("o"), {"o": "a"}, 0) == "a"
        with pytest.raises(FtlSemanticsError):
            ctx.eval_term(Var("o"), {}, 0)

    def test_attr_static_and_dynamic(self, ctx):
        env = {"o": "a"}
        assert ctx.eval_term(Attr(Var("o"), "price"), env, 9) == 99
        assert ctx.eval_term(Attr(Var("o"), "x_position"), env, 3) == 6

    def test_sub_attr(self, ctx):
        env = {"o": "a"}
        assert (
            ctx.eval_term(SubAttr(Var("o"), "x_position", "function"), env, 5)
            == 2
        )
        assert (
            ctx.eval_term(SubAttr(Var("o"), "x_position", "value"), env, 5)
            == 0
        )
        assert (
            ctx.eval_term(SubAttr(Var("o"), "x_position", "updatetime"), env, 5)
            == 0
        )

    def test_sub_attr_recorded_history(self):
        db = MostDatabase()
        db.create_class(ObjectClass("cars", spatial_dimensions=2))
        db.add_moving_object("cars", "a", Point(0, 0), Point(5, 0))
        db.clock.tick(2)
        db.update_dynamic("a", "x_position", function=LinearFunction(9))
        ctx = EvalContext(RecordedHistory(db, 0), 10, {"o": "cars"})
        env = {"o": "a"}
        term = SubAttr(Var("o"), "x_position", "function")
        assert ctx.eval_term(term, env, 1) == 5  # version in force at t=1
        assert ctx.eval_term(term, env, 2) == 9

    def test_dist(self, ctx):
        env = {"o": "a", "n": "b"}
        term = Dist(Var("o"), Var("n"))
        assert ctx.eval_term(term, env, 0) == 10
        assert ctx.eval_term(term, env, 5) == 0  # a reaches b at t=5

    def test_arith(self, ctx):
        term = Arith("*", Const(3), Arith("+", Const(1), Const(1)))
        assert ctx.eval_term(term, {}, 0) == 6
        assert ctx.eval_term(Arith("-", Const(3), Const(1)), {}, 0) == 2
        assert ctx.eval_term(Arith("/", Const(3), Const(2)), {}, 0) == 1.5

    def test_arith_null_and_errors(self, ctx):
        assert ctx.eval_term(Arith("+", Const(None), Const(1)), {}, 0) is None
        with pytest.raises(FtlSemanticsError):
            ctx.eval_term(Arith("/", Const(1), Const(0)), {}, 0)


class TestInvariance:
    def test_static_attr_invariant(self, ctx):
        assert ctx.term_invariant(Attr(Var("o"), "price"))

    def test_dynamic_attr_varying(self, ctx):
        assert not ctx.term_invariant(Attr(Var("o"), "x_position"))

    def test_sub_attr_invariant(self, ctx):
        assert ctx.term_invariant(SubAttr(Var("o"), "x_position", "function"))

    def test_const_and_time(self, ctx):
        assert ctx.term_invariant(Const(5))
        assert not ctx.term_invariant(TimeTerm())

    def test_dist_varying(self, ctx):
        assert not ctx.term_invariant(Dist(Var("o"), Var("n")))

    def test_arith_combines(self, ctx):
        assert ctx.term_invariant(Arith("+", Const(1), Attr(Var("o"), "price")))
        assert not ctx.term_invariant(
            Arith("+", Const(1), Attr(Var("o"), "x_position"))
        )
