"""Unit tests for the interval relations R_g."""

import pytest

from repro.errors import FtlSemanticsError
from repro.ftl.relations import AnswerTuple, FtlRelation, merge_instantiations
from repro.temporal import DISCRETE, Interval, IntervalSet


def iset(*pairs):
    return IntervalSet.from_pairs(pairs, DISCRETE)


class TestAnswerTuple:
    def test_active_at(self):
        t = AnswerTuple(("o",), 3, 7)
        assert t.active_at(3)
        assert t.active_at(7)
        assert not t.active_at(2)
        assert not t.active_at(8)


class TestFtlRelation:
    def test_set_and_get(self):
        r = FtlRelation(("o",))
        r.set(("a",), iset((0, 5)))
        assert r.get(("a",)) == iset((0, 5))
        assert r.get(("b",)).is_empty
        assert len(r) == 1
        assert bool(r)

    def test_empty_rows_dropped(self):
        r = FtlRelation(("o",))
        r.set(("a",), iset((0, 5)))
        r.set(("a",), IntervalSet.empty(DISCRETE))
        assert len(r) == 0
        assert not r

    def test_arity_checked(self):
        r = FtlRelation(("o", "n"))
        with pytest.raises(FtlSemanticsError):
            r.set(("a",), iset((0, 1)))

    def test_add_unions(self):
        r = FtlRelation(("o",))
        r.add(("a",), iset((0, 2)))
        r.add(("a",), iset((5, 8)))
        assert r.get(("a",)) == iset((0, 2), (5, 8))

    def test_index_of(self):
        r = FtlRelation(("o", "n"))
        assert r.index_of("n") == 1
        with pytest.raises(FtlSemanticsError):
            r.index_of("z")

    def test_map_sets(self):
        r = FtlRelation(("o",))
        r.set(("a",), iset((0, 5)))
        shifted = r.map_sets(lambda s: s.shift(10))
        assert shifted.get(("a",)) == iset((10, 15))
        assert r.get(("a",)) == iset((0, 5))  # original untouched

    def test_project_unions_collapsing_rows(self):
        r = FtlRelation(("o", "n"))
        r.set(("a", "x"), iset((0, 2)))
        r.set(("a", "y"), iset((5, 8)))
        r.set(("b", "x"), iset((1, 1)))
        p = r.project(("o",))
        assert p.get(("a",)) == iset((0, 2), (5, 8))
        assert p.get(("b",)) == iset((1, 1))

    def test_project_reorders(self):
        r = FtlRelation(("o", "n"))
        r.set(("a", "x"), iset((0, 2)))
        p = r.project(("n", "o"))
        assert p.get(("x", "a")) == iset((0, 2))

    def test_satisfied_at(self):
        r = FtlRelation(("o",))
        r.set(("a",), iset((0, 2)))
        r.set(("b",), iset((2, 4)))
        assert r.satisfied_at(2) == {("a",), ("b",)}
        assert r.satisfied_at(9) == set()

    def test_answer_tuples_one_per_interval(self):
        r = FtlRelation(("o",))
        r.set(("a",), iset((0, 2), (5, 8)))
        tuples = r.answer_tuples()
        assert [(t.begin, t.end) for t in tuples] == [(0, 2), (5, 8)]
        assert all(t.values == ("a",) for t in tuples)

    def test_repr(self):
        r = FtlRelation(("o",))
        assert "0 rows" in repr(r)


class TestMerge:
    def test_merge_instantiations(self):
        out = merge_instantiations(
            ("a", "b", "c"),
            ("a", "b"),
            (1, 2),
            ("b", "c"),
            (2, 3),
        )
        assert out == (1, 2, 3)

    def test_later_relation_wins_on_shared(self):
        # Join guarantees equality; the helper just overlays.
        out = merge_instantiations(("x",), ("x",), (1,), ("x",), (1,))
        assert out == (1,)
