"""Property test: dependency pruning is sound for every evaluator.

The contract of :mod:`repro.ftl.analysis.deps` is that an explicit
update whose (class, kind) footprint is not covered by a query's
read-set can never change ``Answer(CQ)``.  Over ~200 seeded worlds
(random formula, random update) and all three evaluation methods, a
dependency-pruned continuous query must stay *bit-identical* to an
unpruned twin that refreshes on every class-relevant update — and when
the update falls outside the read-set, the pruned query must have
skipped it (``skipped_by_deps`` incremented, no reevaluation).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ContinuousQuery, DynamicAttribute, MostDatabase, ObjectClass
from repro.ftl import (
    AndF,
    Attr,
    Compare,
    Dist,
    Eventually,
    EventuallyWithin,
    FtlQuery,
    Inside,
    NotF,
    OrF,
    Const,
    UntilWithin,
    Var,
    WithinSphere,
)
from repro.ftl.analysis.deps import update_footprint
from repro.geometry import Point
from repro.spatial import Polygon

HORIZON = 8
METHODS = ("interval", "naive", "incremental")


def build_db() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "cars",
            static_attributes=("price",),
            dynamic_attributes=("fuel",),
            spatial_dimensions=2,
        )
    )
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    for i, (x, vx) in enumerate([(-4, 2), (3, -1), (8, 0)]):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(float(x), 1.0),
            Point(float(vx), 0.0),
            static={"price": 40.0 * (i + 1)},
            dynamic_extra={
                "fuel": DynamicAttribute.linear(30.0 + 5.0 * i, -1.0)
            },
        )
    return db


bounds = st.integers(min_value=0, max_value=4)

# Atoms deliberately mix read kinds: position-only (spatial), dynamic
# attribute (fuel) and static attribute (price), so generated formulas
# land anywhere on the read-set lattice.
atoms = st.one_of(
    st.builds(Inside, st.just(Var("o")), st.just("P")),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.just(Attr(Var("o"), "x_position")),
        st.builds(Const, st.integers(min_value=-6, max_value=10)),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.builds(Dist, st.just(Var("o")), st.just(Var("n"))),
        st.builds(Const, st.integers(min_value=0, max_value=12)),
    ),
    st.builds(
        WithinSphere,
        st.integers(min_value=1, max_value=6),
        st.just((Var("o"), Var("n"))),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.just(Attr(Var("o"), "fuel")),
        st.builds(Const, st.integers(min_value=0, max_value=40)),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.just(Attr(Var("n"), "price")),
        st.builds(Const, st.integers(min_value=0, max_value=150)),
    ),
)


def formulas(depth: int):
    if depth == 0:
        return atoms
    sub = formulas(depth - 1)
    return st.one_of(
        atoms,
        st.builds(AndF, sub, sub),
        st.builds(OrF, sub, sub),
        st.builds(NotF, sub),
        st.builds(Eventually, sub),
        st.builds(EventuallyWithin, bounds, sub),
        st.builds(UntilWithin, bounds, sub, sub),
    )


updates = st.one_of(
    st.tuples(
        st.just("position"),
        st.sampled_from(["c0", "c1", "c2"]),
        st.integers(min_value=-3, max_value=3),
    ),
    st.tuples(
        st.just("fuel"),
        st.sampled_from(["c0", "c1", "c2"]),
        st.integers(min_value=0, max_value=40),
    ),
    st.tuples(
        st.just("price"),
        st.sampled_from(["c0", "c1", "c2"]),
        st.integers(min_value=10, max_value=200),
    ),
)


def apply_update(db: MostDatabase, update: tuple) -> None:
    what, oid, value = update
    if what == "position":
        db.update_motion(
            oid, Point(float(value), 0.0), position=Point(float(value), 2.0)
        )
    elif what == "fuel":
        db.update_dynamic(oid, "fuel", value=float(value))
    else:
        db.update_static(oid, "price", float(value))


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(formula=formulas(2), update=updates, method=st.sampled_from(METHODS))
def test_pruned_answers_stay_bit_identical(formula, update, method):
    db = build_db()
    query = FtlQuery(
        targets=("o",), bindings={"o": "cars", "n": "cars"}, where=formula
    )
    pruned = ContinuousQuery(db, query, horizon=HORIZON, method=method)
    naive_query = FtlQuery(
        targets=("o",), bindings={"o": "cars", "n": "cars"}, where=formula
    )
    unpruned = ContinuousQuery(db, naive_query, horizon=HORIZON, method=method)
    unpruned._deps = None  # the twin refreshes on every class match

    assert pruned._deps is not None
    evals_before = pruned.evaluations
    skips_before = pruned.skipped_by_deps

    db.clock.tick()
    apply_update(db, update)

    assert pruned.current() == unpruned.current()
    # Answer(CQ) agrees from the present on.  The raw begins can differ:
    # the twins clip to their own last-refresh tick, and a (correctly)
    # skipped update leaves the pruned clip anchored at registration.
    now = db.clock.now

    def visible(cq):
        return {
            (t.values, max(t.begin, now), t.end)
            for t in cq.answer_tuples()
            if t.end >= now
        }

    assert visible(pruned) == visible(unpruned)

    emitted = [
        u for u in db.log if u.time == db.clock.now
    ]
    covered = [
        u
        for u in emitted
        if pruned._deps.covers(update_footprint(u, db))
    ]
    if not covered:
        # Every update of this batch lay outside the read-set: the
        # pruned query must have skipped them all without reevaluating.
        assert pruned.skipped_by_deps == skips_before + len(emitted)
        assert pruned.evaluations == evals_before
    pruned.cancel()
    unpruned.cancel()
