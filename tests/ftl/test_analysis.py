"""Unit tests for the FTL static analyzer.

One class per pass (scope, sorts, safety, fragment, lints), plus the
wiring tests: spans on parsed AST nodes, pre-evaluation gating in the
query classes, the incremental-rejection diagnostic, and the
``QueryCompiler`` front door.
"""

import pytest

from repro.core import (
    ContinuousQuery,
    DynamicAttribute,
    InstantaneousQuery,
    MostDatabase,
    ObjectClass,
    PersistentQuery,
)
from repro.errors import FtlAnalysisError, FtlSyntaxError
from repro.ftl import (
    Arith,
    Attr,
    Compare,
    Const,
    NotF,
    QueryCompiler,
    Until,
    Var,
    analyze_formula,
    analyze_query,
    compile_query,
    parse_formula,
    parse_query,
    supports_incremental,
)
from repro.ftl.analysis import FtlLintWarning, RULES, SchemaInfo
from repro.ftl.query import FtlQuery
from repro.geometry import Point
from repro.spatial import Polygon


def build_db() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "cars",
            static_attributes=("price",),
            dynamic_attributes=("fuel",),
            spatial_dimensions=2,
        )
    )
    db.create_class(ObjectClass("motels", static_attributes=("rating",)))
    db.define_region("P", Polygon.rectangle(0, 0, 10, 10))
    db.add_moving_object(
        "cars",
        "c0",
        Point(0, 0),
        Point(1, 0),
        static={"price": 100.0},
        dynamic_extra={"fuel": DynamicAttribute.linear(50.0, -1.0)},
    )
    return db


def codes(result):
    return result.codes()


class TestScopePass:
    def test_unbound_variable(self):
        f = parse_formula("o.x_position > m")
        result = analyze_formula(f, bindings={"o": "cars"})
        assert "FTL101" in codes(result)
        assert not result.ok

    def test_bound_variables_clean(self):
        f = parse_formula("o.x_position > 3")
        assert analyze_formula(f, bindings={"o": "cars"}).ok

    def test_assignment_binds_body(self):
        f = parse_formula("[m := o.x_position] o.x_position > m")
        result = analyze_formula(f, bindings={"o": "cars"})
        assert "FTL101" not in codes(result)

    def test_assignment_shadowing(self):
        f = parse_formula("[o := o.x_position] o.x_position > 1")
        result = analyze_formula(f, bindings={"o": "cars"})
        assert "FTL103" in codes(result)
        assert not result.ok

    def test_unused_assignment_warns(self):
        f = parse_formula("[m := o.x_position] o.x_position > 1")
        result = analyze_formula(f, bindings={"o": "cars"})
        assert "FTL104" in codes(result)
        assert result.ok  # warning, not error

    def test_target_not_in_where_is_ftl403(self):
        q = parse_query(
            "RETRIEVE o FROM cars o, cars n WHERE n.x_position > 1"
        )
        result = analyze_query(q)
        assert "FTL403" in codes(result)
        assert result.ok  # info only

    def test_target_unbound_is_ftl102(self):
        # FtlQuery.__post_init__ refuses this shape, so exercise the
        # analyzer's defence-in-depth path on a bypassed instance.
        q = object.__new__(FtlQuery)
        object.__setattr__(q, "targets", ("z",))
        object.__setattr__(q, "bindings", {"o": "cars"})
        object.__setattr__(q, "where", parse_formula("o.x_position > 1"))
        object.__setattr__(q, "spans", None)
        result = analyze_query(q)
        assert "FTL102" in codes(result)
        assert not result.ok


class TestSortPass:
    def test_unknown_class(self):
        q = parse_query("RETRIEVE o FROM rockets o WHERE o.x_position > 1")
        result = analyze_query(q, schema=build_db())
        assert "FTL201" in codes(result)

    def test_unknown_attribute(self):
        f = parse_formula("o.altitude > 1")
        result = analyze_formula(f, {"o": "cars"}, schema=build_db())
        assert "FTL202" in codes(result)

    def test_unknown_attribute_skipped_without_schema(self):
        f = parse_formula("o.altitude > 1")
        assert analyze_formula(f, {"o": "cars"}).ok

    def test_subattr_on_static_attribute(self):
        f = parse_formula("o.price.function > 1")
        result = analyze_formula(f, {"o": "cars"}, schema=build_db())
        assert "FTL203" in codes(result)

    def test_subattr_on_dynamic_attribute_ok(self):
        f = parse_formula("o.fuel.function > 1")
        assert analyze_formula(f, {"o": "cars"}, schema=build_db()).ok

    def test_attr_on_number(self):
        f = Compare(">", Attr(Const(5), "x_position"), Const(1))
        result = analyze_formula(f, {}, schema=build_db())
        assert "FTL204" in codes(result)

    def test_spatial_op_on_non_spatial_class(self):
        f = parse_formula("INSIDE(m, P)")
        result = analyze_formula(f, {"m": "motels"}, schema=build_db())
        assert "FTL205" in codes(result)

    def test_dist_on_non_spatial_class(self):
        f = parse_formula("DIST(m, o) < 5")
        result = analyze_formula(
            f, {"m": "motels", "o": "cars"}, schema=build_db()
        )
        assert "FTL205" in codes(result)

    def test_unknown_region(self):
        f = parse_formula("INSIDE(o, NOWHERE)")
        result = analyze_formula(f, {"o": "cars"}, schema=build_db())
        assert "FTL206" in codes(result)

    def test_known_region_ok(self):
        f = parse_formula("INSIDE(o, P)")
        assert analyze_formula(f, {"o": "cars"}, schema=build_db()).ok

    def test_arith_on_string(self):
        f = Compare(">", Arith("+", Const("fast"), Const(1)), Const(0))
        result = analyze_formula(f, {}, schema=build_db())
        assert "FTL207" in codes(result)

    def test_arith_on_object_var(self):
        f = Compare(">", Arith("+", Var("o"), Const(1)), Const(0))
        result = analyze_formula(f, {"o": "cars"}, schema=build_db())
        assert "FTL207" in codes(result)

    def test_ordered_compare_number_string(self):
        f = parse_formula("o.x_position > 'fast'")
        result = analyze_formula(f, {"o": "cars"}, schema=build_db())
        assert "FTL208" in codes(result)
        assert not result.ok

    def test_ordered_compare_on_objects_warns(self):
        f = Compare("<", Var("o"), Var("n"))
        result = analyze_formula(
            f, {"o": "cars", "n": "cars"}, schema=build_db()
        )
        assert "FTL208" in codes(result)
        assert result.ok  # downgraded to a warning


class TestSafetyPass:
    def test_division_by_constant_zero(self):
        f = parse_formula("o.x_position / 0 > 1")
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL301" in codes(result)
        assert not result.ok

    def test_negation_warns(self):
        f = parse_formula("NOT INSIDE(o, P)")
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL302" in codes(result)
        assert result.ok

    def test_variable_mismatched_disjunction(self):
        f = parse_formula("o.x_position > 1 OR n.x_position > 1")
        result = analyze_formula(f, {"o": "cars", "n": "cars"})
        assert "FTL303" in codes(result)

    def test_matched_disjunction_clean(self):
        f = parse_formula("o.x_position > 1 OR o.x_position < -1")
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL303" not in codes(result)

    def test_unknown_construct(self):
        class Mystery(NotF):
            pass

        f = Mystery(parse_formula("o.x_position > 1"))
        # A NotF subclass is still a known node; a truly foreign type:
        class Foreign:
            span = None

            def free_vars(self):
                return set()

        result = analyze_formula(Foreign(), {"o": "cars"})
        assert "FTL304" in codes(result)
        assert not result.ok


class TestFragmentPass:
    def test_state_formula(self):
        f = parse_formula("o.x_position > 1")
        result = analyze_formula(f, {"o": "cars"})
        assert result.fragment.temporal_depth == 0
        assert result.fragment.bounded
        assert result.fragment.incremental

    def test_unbounded_operator_flagged(self):
        f = parse_formula("EVENTUALLY o.x_position > 1")
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL402" in codes(result)
        assert not result.fragment.bounded
        assert result.fragment.temporal_depth == 1

    def test_nested_depth(self):
        f = parse_formula(
            "EVENTUALLY WITHIN 5 ALWAYS FOR 2 o.x_position > 1"
        )
        result = analyze_formula(f, {"o": "cars"})
        assert result.fragment.temporal_depth == 2
        assert result.fragment.bounded

    def test_assignment_blocks_incremental(self):
        f = parse_formula("[m := o.x_position] o.x_position > m")
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL401" in codes(result)
        assert not result.fragment.incremental
        blocker = result.fragment.blockers[0]
        assert "m := o.x_position" in blocker.message

    def test_classification_string(self):
        f = parse_formula("NOT EVENTUALLY o.x_position > 1")
        result = analyze_formula(f, {"o": "cars"})
        # Negation leaves the conjunctive fragment but does not block
        # incremental maintenance (only the assignment quantifier does).
        assert result.fragment.classification == (
            "general/unbounded/incremental"
        )
        f2 = parse_formula("[m := o.x_position] o.x_position > m")
        result2 = analyze_formula(f2, {"o": "cars"})
        assert result2.fragment.classification.endswith("full-reevaluation")

    def test_supports_incremental_compat(self):
        assert supports_incremental(parse_formula("o.x_position > 1"))
        assert not supports_incremental(
            parse_formula("[m := o.x_position] o.x_position > m")
        )


class TestLintPass:
    def test_vacuous_eventually_within(self):
        f = parse_formula("EVENTUALLY WITHIN 0 o.x_position > 1")
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL501" in codes(result)

    def test_negative_bound_programmatic(self):
        from repro.ftl import EventuallyWithin

        f = EventuallyWithin(-3, parse_formula("o.x_position > 1"))
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL502" in codes(result)
        assert not result.ok

    def test_constant_comparison(self):
        f = parse_formula("2 > 1")
        result = analyze_formula(f, {})
        assert "FTL503" in codes(result)

    def test_true_false_sugar_not_flagged(self):
        f = parse_formula("TRUE")
        result = analyze_formula(f, {})
        assert "FTL503" not in codes(result)

    def test_vacuous_until_right_true(self):
        f = parse_formula("o.x_position > 1 UNTIL 1 = 1")
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL504" in codes(result)

    def test_vacuous_until_left_false(self):
        f = Until(
            Compare("=", Const(2), Const(3)),
            parse_formula("o.x_position > 1"),
        )
        result = analyze_formula(f, {"o": "cars"})
        assert "FTL504" in codes(result)


class TestSpans:
    def test_every_parsed_diagnostic_has_a_span(self):
        q = parse_query(
            "RETRIEVE o FROM cars o "
            "WHERE NOT (EVENTUALLY WITHIN 0 o.altitude > 'x')"
        )
        result = analyze_query(q, schema=build_db())
        assert result.diagnostics
        assert all(d.span is not None for d in result.diagnostics)

    def test_span_points_at_offending_token(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE o.altitude > 1")
        result = analyze_query(q, schema=build_db())
        (diag,) = result.errors
        assert diag.code == "FTL202"
        assert diag.span.line == 1
        assert diag.span.col == 30  # 'o.altitude'

    def test_multiline_spans(self):
        q = parse_query(
            "RETRIEVE o\nFROM cars o\nWHERE o.altitude > 1"
        )
        result = analyze_query(q, schema=build_db())
        (diag,) = result.errors
        assert diag.span.line == 3
        assert diag.span.col == 7

    def test_syntax_error_carries_line_col(self):
        with pytest.raises(FtlSyntaxError, match=r"line 2, col"):
            parse_query("RETRIEVE o FROM cars o\nWHERE o.x_position >")

    def test_spans_do_not_break_equality(self):
        parsed = parse_formula("o.x_position > 1")
        built = Compare(">", Attr(Var("o"), "x_position"), Const(1))
        assert parsed == built
        assert hash(parsed) == hash(built)


class TestPreEvaluationGating:
    """Malformed queries that used to surface mid-evaluation (as
    FtlSemanticsError / SchemaError / TypeError from deep inside an
    evaluator) are now rejected before any evaluator runs."""

    CASES = [
        "RETRIEVE o FROM cars o WHERE o.altitude > 1",  # FTL202
        "RETRIEVE o FROM cars o WHERE INSIDE(o, NOWHERE)",  # FTL206
        "RETRIEVE o FROM cars o WHERE o.x_position / 0 > 1",  # FTL301
        "RETRIEVE o FROM cars o WHERE o.x_position > 'fast'",  # FTL208
        "RETRIEVE m FROM motels m WHERE INSIDE(m, P)",  # FTL205
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_continuous_query_fails_fast(self, text):
        db = build_db()
        with pytest.raises(FtlAnalysisError) as exc:
            ContinuousQuery(db, parse_query(text), horizon=10)
        assert exc.value.diagnostics
        assert all(d.span is not None for d in exc.value.diagnostics)

    @pytest.mark.parametrize("text", CASES)
    def test_instantaneous_query_fails_fast(self, text):
        # Schema-free errors (FTL301) raise at construction; the
        # schema-dependent ones at the first evaluation against the db.
        db = build_db()
        with pytest.raises(FtlAnalysisError):
            InstantaneousQuery(parse_query(text), horizon=10).answer(db)

    @pytest.mark.parametrize("text", CASES)
    def test_persistent_query_fails_fast(self, text):
        db = build_db()
        with pytest.raises(FtlAnalysisError):
            PersistentQuery(db, parse_query(text), horizon=10)

    def test_schema_free_error_caught_at_construction(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE o.x_position / 0 > 1")
        with pytest.raises(FtlAnalysisError):
            InstantaneousQuery(q, horizon=10)

    def test_error_message_lists_diagnostics(self):
        db = build_db()
        q = parse_query("RETRIEVE o FROM cars o WHERE o.altitude > 1")
        with pytest.raises(FtlAnalysisError, match=r"FTL202.*line 1"):
            ContinuousQuery(db, q, horizon=10)


class TestIncrementalRejection:
    def test_assign_rejection_names_subformula(self):
        db = build_db()
        q = parse_query(
            "RETRIEVE o FROM cars o "
            "WHERE [m := o.x_position] EVENTUALLY WITHIN 5 o.x_position > m"
        )
        cq = ContinuousQuery(db, q, horizon=10, method="incremental")
        assert cq.incremental_rejection is not None
        assert cq.incremental_rejection.code == "FTL401"
        assert "m := o.x_position" in cq.incremental_rejection.message
        assert cq.incremental_rejection.span is not None
        assert not cq._use_incremental

    def test_free_ranging_target_rejection(self):
        db = build_db()
        q = parse_query(
            "RETRIEVE o FROM cars o, cars n WHERE n.x_position > 1"
        )
        cq = ContinuousQuery(db, q, horizon=10, method="incremental")
        assert cq.incremental_rejection is not None
        assert cq.incremental_rejection.code == "FTL403"
        assert not cq._use_incremental

    def test_eligible_query_has_no_rejection(self):
        db = build_db()
        q = parse_query("RETRIEVE o FROM cars o WHERE o.x_position > 1")
        cq = ContinuousQuery(db, q, horizon=10, method="incremental")
        assert cq.incremental_rejection is None
        assert cq.incremental_rejections == ()
        assert cq._use_incremental

    def test_non_incremental_method_records_no_rejection(self):
        db = build_db()
        q = parse_query(
            "RETRIEVE o FROM cars o "
            "WHERE [m := o.x_position] EVENTUALLY WITHIN 5 o.x_position > m"
        )
        cq = ContinuousQuery(db, q, horizon=10, method="interval")
        assert cq.incremental_rejection is None


class TestQueryCompiler:
    def test_strict_raises_on_errors(self):
        compiler = QueryCompiler(schema=build_db())
        with pytest.raises(FtlAnalysisError):
            compiler.compile("RETRIEVE o FROM cars o WHERE o.altitude > 1")

    def test_non_strict_returns_errors(self):
        compiler = QueryCompiler(schema=build_db(), strict=False)
        compiled = compiler.compile(
            "RETRIEVE o FROM cars o WHERE o.altitude > 1"
        )
        assert not compiled.analysis.ok
        assert "FTL202" in [d.code for d in compiled.diagnostics]

    def test_clean_compile(self):
        compiled = compile_query(
            "RETRIEVE o FROM cars o WHERE o.x_position > 1",
            schema=build_db(),
        )
        assert compiled.analysis.ok
        assert compiled.query.targets == ("o",)

    def test_lints_emit_python_warnings(self):
        with pytest.warns(FtlLintWarning, match="FTL501"):
            compile_query(
                "RETRIEVE o FROM cars o "
                "WHERE EVENTUALLY WITHIN 0 o.x_position > 1",
                schema=build_db(),
            )

    def test_registration_emits_python_warnings(self):
        db = build_db()
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE NOT INSIDE(o, P)"
        )
        with pytest.warns(FtlLintWarning, match="FTL302"):
            ContinuousQuery(db, q, horizon=10)

    def test_accepts_parsed_query(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE o.x_position > 1")
        compiled = compile_query(q, schema=build_db())
        assert compiled.query is q


class TestRegistry:
    def test_rule_codes_partition_by_pass(self):
        for code in RULES:
            assert code.startswith("FTL") and len(code) == 6
            assert code[3] in "12345678"

    def test_schema_info_coercion(self):
        db = build_db()
        info = SchemaInfo.coerce(db)
        assert info.knows_classes() and info.knows_regions()
        assert info.object_class("cars") is not None
        assert info.object_class("rockets") is None
        assert info.has_region("P")
        assert not info.has_region("NOWHERE")
        open_info = SchemaInfo.coerce(None)
        assert open_info.object_class("anything") is None
        assert open_info.has_region("anything")
        with pytest.raises(TypeError):
            SchemaInfo.coerce(42)

    def test_analysis_json_shape(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE o.altitude > 1")
        report = analyze_query(q, schema=build_db()).to_json()
        assert report["ok"] is False
        (diag,) = [
            d for d in report["diagnostics"] if d["code"] == "FTL202"
        ]
        assert diag["severity"] == "error"
        assert diag["span"]["line"] == 1
        assert report["fragment"]["classification"]
