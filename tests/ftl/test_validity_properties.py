"""Property test: validity-horizon reuse is sound for every evaluator.

The contract of :mod:`repro.ftl.analysis.validity` is that an update
whose observable trajectory never diverges from the previous one inside
the query's remaining window can never change ``Answer(CQ)``.  Over
160+ seeded worlds (random formula, random mixed update stream that
includes exact re-anchor heartbeats) and all three evaluation methods, a
horizon-stamped continuous query must stay *bit-identical* to an
unstamped twin built with ``validity_horizons=False`` — and across the
run the stamped side must actually exercise the gate
(``horizon_skipped`` ≥ 1), otherwise the equivalence is vacuous.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ContinuousQuery, DynamicAttribute, MostDatabase, ObjectClass
from repro.ftl import (
    AndF,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyWithin,
    FtlQuery,
    Inside,
    NotF,
    OrF,
    UntilWithin,
    Var,
    WithinSphere,
)
from repro.geometry import Point
from repro.spatial import Polygon

HORIZON = 8
METHODS = ("interval", "naive", "incremental")

# Gate activity accumulated across the whole wall; asserted non-vacuous
# by test_wall_actually_exercised_the_gate below.
GATE_HITS = {"horizon_skipped": 0, "eligible_worlds": 0}


def build_db() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass(
            "cars",
            static_attributes=("price",),
            dynamic_attributes=("fuel",),
            spatial_dimensions=2,
        )
    )
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    for i, (x, vx) in enumerate([(-4, 2), (3, -1), (8, 0)]):
        db.add_moving_object(
            "cars",
            f"c{i}",
            Point(float(x), 1.0),
            Point(float(vx), 0.0),
            static={"price": 40.0 * (i + 1)},
            dynamic_extra={
                "fuel": DynamicAttribute.linear(30.0 + 5.0 * i, -1.0)
            },
        )
    return db


bounds = st.integers(min_value=0, max_value=4)

atoms = st.one_of(
    st.builds(Inside, st.just(Var("o")), st.just("P")),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.just(Attr(Var("o"), "x_position")),
        st.builds(Const, st.integers(min_value=-6, max_value=10)),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.builds(Dist, st.just(Var("o")), st.just(Var("n"))),
        st.builds(Const, st.integers(min_value=0, max_value=12)),
    ),
    st.builds(
        WithinSphere,
        st.integers(min_value=1, max_value=6),
        st.just((Var("o"), Var("n"))),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.just(Attr(Var("o"), "fuel")),
        st.builds(Const, st.integers(min_value=0, max_value=40)),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.just(Attr(Var("n"), "price")),
        st.builds(Const, st.integers(min_value=0, max_value=150)),
    ),
)


def formulas(depth: int):
    if depth == 0:
        return atoms
    sub = formulas(depth - 1)
    return st.one_of(
        atoms,
        st.builds(AndF, sub, sub),
        st.builds(OrF, sub, sub),
        st.builds(NotF, sub),
        st.builds(Eventually, sub),
        st.builds(EventuallyWithin, bounds, sub),
        st.builds(UntilWithin, bounds, sub, sub),
    )


oids = st.sampled_from(["c0", "c1", "c2"])

# Mixed update stream: exact re-anchor heartbeats (position and fuel)
# interleaved with genuinely new motion vectors, dynamic values and
# static rewrites.  Heartbeats are the updates the horizon gate exists
# to prove away; real changes are the ones it must never swallow.
steps = st.one_of(
    st.tuples(st.just("hb_position"), oids, st.just(0)),
    st.tuples(st.just("hb_fuel"), oids, st.just(0)),
    st.tuples(
        st.just("position"), oids, st.integers(min_value=-3, max_value=3)
    ),
    st.tuples(st.just("fuel"), oids, st.integers(min_value=0, max_value=40)),
    st.tuples(
        st.just("price"), oids, st.integers(min_value=10, max_value=200)
    ),
)


def apply_step(db: MostDatabase, step: tuple) -> None:
    what, oid, value = step
    if what == "hb_position":
        obj = db.get(oid)
        now = db.clock.now
        axes = [
            obj.dynamic_attribute(name)
            for name in obj.object_class.position_attributes
        ]
        db.update_motion(
            oid,
            Point(*(a.function.value(1.0) for a in axes)),
            position=Point(*(a.value_at(now) for a in axes)),
        )
    elif what == "hb_fuel":
        old = db.get(oid).dynamic_attribute("fuel")
        db.update_dynamic(oid, "fuel", function=old.function)
    elif what == "position":
        db.update_motion(
            oid, Point(float(value), 0.0), position=Point(float(value), 2.0)
        )
    elif what == "fuel":
        db.update_dynamic(oid, "fuel", value=float(value))
    else:
        db.update_static(oid, "price", float(value))


def visible(cq, now):
    return {
        (t.values, max(t.begin, now), t.end)
        for t in cq.answer_tuples()
        if t.end >= now
    }


@settings(
    max_examples=160,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    formula=formulas(2),
    stream=st.lists(steps, min_size=1, max_size=3),
    method=st.sampled_from(METHODS),
)
def test_stamped_answers_stay_bit_identical(formula, stream, method):
    db = build_db()
    query = FtlQuery(
        targets=("o",), bindings={"o": "cars", "n": "cars"}, where=formula
    )
    stamped = ContinuousQuery(db, query, horizon=HORIZON, method=method)
    twin_query = FtlQuery(
        targets=("o",), bindings={"o": "cars", "n": "cars"}, where=formula
    )
    twin = ContinuousQuery(
        db, twin_query, horizon=HORIZON, method=method,
        validity_horizons=False,
    )
    assert twin.horizon_skipped == 0
    assert twin._validity is None

    for step in stream:
        db.clock.tick()
        apply_step(db, step)
        # Convergence after *every* step, not just at stream end: a
        # wrongly swallowed update would surface here tuple-for-tuple.
        assert stamped.current() == twin.current()
        now = db.clock.now
        assert visible(stamped, now) == visible(twin, now)

    assert twin.horizon_skipped == 0
    GATE_HITS["horizon_skipped"] += stamped.horizon_skipped
    if stamped._horizon_eligible:
        GATE_HITS["eligible_worlds"] += 1
    stamped.cancel()
    twin.cancel()


def test_wall_actually_exercised_the_gate():
    """The differential wall is only meaningful if the gate fired: at
    least one world must have skipped at least one update (and many
    worlds should have been horizon-eligible at all).

    Runs after the wall by file order; also guards against a silent
    regression that disables stamping and turns the wall vacuous.
    """
    assert GATE_HITS["horizon_skipped"] >= 1
    assert GATE_HITS["eligible_worlds"] >= 1


@settings(max_examples=30, deadline=None)
@given(method=st.sampled_from(METHODS), oid=oids, ticks=st.integers(1, 3))
def test_pure_heartbeat_streams_never_reevaluate(method, oid, ticks):
    """Deterministic flank of the wall: on an all-linear fleet every
    query horizon concretizes to infinity, so a stream of exact
    re-anchor heartbeats must be skipped wholesale while the twin
    re-evaluates — with identical answers throughout."""
    db = build_db()
    query = FtlQuery(
        targets=("o",),
        bindings={"o": "cars"},
        where=Eventually(Inside(Var("o"), "P")),
    )
    stamped = ContinuousQuery(db, query, horizon=HORIZON, method=method)
    twin_query = FtlQuery(
        targets=("o",),
        bindings={"o": "cars"},
        where=Eventually(Inside(Var("o"), "P")),
    )
    twin = ContinuousQuery(
        db, twin_query, horizon=HORIZON, method=method,
        validity_horizons=False,
    )
    stamped.current(), twin.current()
    evals = stamped.evaluations
    for _ in range(ticks):
        db.clock.tick()
        apply_step(db, ("hb_position", oid, 0))
        assert stamped.current() == twin.current()
    # One heartbeat emits one MostUpdate per spatial axis.
    assert stamped.horizon_skipped == 2 * ticks
    assert stamped.evaluations == evals
    assert twin.horizon_skipped == 0
    stamped.cancel()
    twin.cancel()
