"""Differential wall for the vectorized batch kinetic backend (DESIGN.md §8).

The batch backend must be answer-invisible *and* counter-invisible: for
every seeded world, query and evaluation method, ``batch_solver=True``
must produce the same relation — tuple for tuple, interval for interval —
and the same acceleration counters as the scalar per-row solver, while
filling the shared kinetic-solve cache with the exact same keys.  The
sweeps reuse the random worlds and formula generator of
``test_differential`` plus the sparse worlds of ``test_atom_pruning``,
and add worlds the vectorized paths cannot take whole (nonlinear movers,
k≠2 spheres, mixed dimensions) so the chunked scalar fallback is
exercised alongside the numpy paths.
"""

import random

import pytest

from repro.core import MostDatabase, ObjectClass
from repro.core.dynamic import DynamicAttribute
from repro.core.history import FutureHistory
from repro.core.queries import ContinuousQuery
from repro.errors import QueryError, SchemaError
from repro.ftl import (
    AndF,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    FtlQuery,
    Inside,
    Outside,
    Var,
    WithinSphere,
)
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.geometry import Point
from repro.motion import SinusoidFunction
from repro.motion.batch import available as batch_available
from repro.spatial import Ball
from repro.temporal import DISCRETE, IntervalSet

from tests.ftl.test_atom_pruning import build_sparse_world, rows_of
from tests.ftl.test_differential import (
    HORIZON,
    STEPS,
    apply_random_updates,
    build_world,
    random_query,
)


def test_backend_is_available():
    """Guard: numpy is baked into the image, so the batch backend must be
    live — otherwise every differential case below degenerates into
    scalar-vs-scalar and proves nothing."""
    assert batch_available()


def both_solvers(query, db, horizon=HORIZON, **kwargs):
    """(scalar rows, batched rows) on snapshots of one db.

    The db-wide solve cache is cleared between the runs so the batched
    run really solves instead of replaying the scalar run's answers."""
    scalar = query.evaluate_full(
        FutureHistory(db), horizon, batch_solver=False, **kwargs
    )
    db.kinetic_cache.clear()
    batched = query.evaluate_full(
        FutureHistory(db), horizon, batch_solver=True, **kwargs
    )
    db.kinetic_cache.clear()
    return rows_of(scalar), rows_of(batched)


def run_with_counters(db, bindings, where, batch, horizon=HORIZON):
    """(rows, counters) of one interval evaluation on a cold cache."""
    db.kinetic_cache.clear()
    ctx = EvalContext(FutureHistory(db), horizon, bindings)
    ev = IntervalEvaluator(ctx, batch_solver=batch)
    rel = ev.evaluate(where)
    return rows_of(rel), ev.counters()


# ---------------------------------------------------------------------------
# The main differential sweep: 300+ seeded scenarios
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(150))
def test_batch_equals_scalar_random_worlds(seed):
    """Random dense-ish worlds and random formulas (all atom kinds, all
    temporal operators): identical relations with the batch backend on
    and off."""
    rng = random.Random(seed)
    db = build_world(rng)
    query = random_query(rng)
    scalar, batched = both_solvers(query, db)
    assert scalar == batched, f"seed {seed}: {query.where}"


@pytest.mark.parametrize("seed", range(150, 260))
def test_batch_equals_scalar_sparse_worlds(seed):
    """Sparse worlds where the index gate prunes most instantiations, so
    the batch sees small, ragged surviving sets."""
    rng = random.Random(seed)
    db = build_sparse_world(rng)
    query = random_query(rng)
    scalar, batched = both_solvers(query, db)
    assert scalar == batched, f"seed {seed}: {query.where}"


@pytest.mark.parametrize("seed", range(260, 300))
def test_batch_counters_equal_scalar_counters(seed):
    """Beyond equal answers, the batch path must report the exact same
    kinetic_solves / pruned / cache hit+miss accounting as scalar."""
    rng = random.Random(seed)
    db = build_world(rng)
    query = random_query(rng)
    free = sorted(query.where.free_vars())
    bindings = {v: query.bindings[v] for v in free}
    rows_s, counters_s = run_with_counters(
        db, bindings, query.where, batch=False
    )
    rows_b, counters_b = run_with_counters(
        db, bindings, query.where, batch=True
    )
    assert rows_s == rows_b, f"seed {seed}: {query.where}"
    assert counters_s == counters_b, f"seed {seed}: {query.where}"


# ---------------------------------------------------------------------------
# Every atom kind, including the shapes that must chunk through the
# scalar fallback
# ---------------------------------------------------------------------------


def build_atom_world(rng: random.Random) -> MostDatabase:
    """A sparse world with a ball region and a third bound class, so the
    atom sweep covers polygon + ball regions and k∈{1,2,3} spheres."""
    db = build_sparse_world(rng)
    db.define_region("B", Ball(Point(5, -5), 9))
    db.create_class(ObjectClass("trucks", spatial_dimensions=2))
    for i in range(2):
        db.add_moving_object(
            "trucks",
            f"t{i}",
            Point(rng.randint(-40, 40), rng.randint(-40, 40)),
            Point(rng.randint(-2, 2), rng.randint(-2, 2)),
        )
    return db


ATOMS = [
    Inside(Var("c"), "P"),
    Outside(Var("c"), "Q"),
    Inside(Var("c"), "B"),
    Outside(Var("v"), "B"),
    WithinSphere(3, (Var("c"),)),
    WithinSphere(3, (Var("c"), Var("v"))),
    WithinSphere(6, (Var("c"), Var("v"), Var("t"))),
    Compare("<=", Dist(Var("c"), Var("v")), Const(5)),
    Compare(">=", Dist(Var("c"), Var("v")), Const(5)),
    Compare("<", Dist(Var("c"), Var("v")), Const(5)),
    Compare(">", Const(5), Dist(Var("c"), Var("v"))),
    Compare("<=", Attr(Var("c"), "x_position"), Const(3)),
    Compare(">=", Attr(Var("c"), "price"), Const(75)),
]

_CLASS_OF = {"c": "cars", "v": "vans", "t": "trucks"}


@pytest.mark.parametrize("atom", ATOMS, ids=lambda a: str(a))
def test_every_atom_kind(atom):
    """Each atom kind, alone and under a temporal operator: equal rows
    and equal counters, batch on and off."""
    for seed in range(6):
        rng = random.Random(2000 + seed)
        db = build_atom_world(rng)
        free = sorted(atom.free_vars())
        bindings = {v: _CLASS_OF[v] for v in free}
        for where in (atom, Eventually(atom)):
            rows_s, counters_s = run_with_counters(
                db, bindings, where, batch=False
            )
            rows_b, counters_b = run_with_counters(
                db, bindings, where, batch=True
            )
            assert rows_s == rows_b, f"seed {seed}: {where}"
            assert counters_s == counters_b, f"seed {seed}: {where}"


def test_nonlinear_movers_chunk_through_the_scalar_fallback():
    """Sinusoid movers have no linear breakpoints, so the batch rejects
    their rows and solves them scalar mid-batch — answers and counters
    must still match the all-scalar run exactly."""
    for seed in range(10):
        rng = random.Random(3000 + seed)
        db = build_world(rng)
        db.add_object(
            "cars",
            "osc",
            static={"price": 10.0},
            dynamic={
                "x_position": DynamicAttribute(
                    2.0, function=SinusoidFunction(8, 0.7)
                ),
                "y_position": DynamicAttribute.static(3.0),
            },
        )
        bindings = {"c": "cars", "v": "vans"}
        for where in (
            Inside(Var("c"), "P"),
            Compare("<=", Dist(Var("c"), Var("v")), Const(6)),
            WithinSphere(4, (Var("c"), Var("v"))),
        ):
            rows_s, counters_s = run_with_counters(
                db, bindings, where, batch=False
            )
            rows_b, counters_b = run_with_counters(
                db, bindings, where, batch=True
            )
            assert rows_s == rows_b, f"seed {seed}: {where}"
            assert counters_s == counters_b, f"seed {seed}: {where}"


# ---------------------------------------------------------------------------
# All three evaluators
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(25))
def test_naive_oracle_agrees_with_batched_interval(seed):
    """The per-state oracle (which ignores batch_solver by design) vs the
    batched interval evaluator on one world."""
    rng = random.Random(seed)
    db = build_world(rng)
    query = random_query(rng)
    oracle = rows_of(
        query.evaluate_full(
            FutureHistory(db), HORIZON, method="naive", batch_solver=True
        )
    )
    db.kinetic_cache.clear()
    batched = rows_of(query.evaluate_full(FutureHistory(db), HORIZON))
    assert oracle == batched, f"seed {seed}: {query.where}"


@pytest.mark.parametrize("seed", range(40))
def test_incremental_continuous_queries_under_updates(seed):
    """Scalar vs batched incremental continuous queries over identical
    update streams: every display and the final Answer(CQ) must agree.
    This drives the batch path through PartialIntervalEvaluator's dirty
    frontiers, where the surviving row sets shift every step."""
    rng = random.Random(seed)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(2):
        rng.setstate(world_bits)
        dbs.append(build_world(rng))
    query = random_query(rng)
    scalar = ContinuousQuery(
        dbs[0],
        query,
        horizon=HORIZON,
        method="incremental",
        batch_solver=False,
    )
    batched = ContinuousQuery(
        dbs[1], query, horizon=HORIZON, method="incremental"
    )
    for step in range(STEPS):
        for db in dbs:
            db.clock.tick()
        apply_random_updates(rng, dbs)
        a, b = scalar.current(), batched.current()
        assert a == b, (
            f"seed {seed} step {step}: displays diverge for {query.where}\n"
            f"scalar:  {sorted(a, key=str)}\n"
            f"batched: {sorted(b, key=str)}"
        )
    tuples = [
        sorted((t.values, t.begin, t.end) for t in cq.answer_tuples())
        for cq in (scalar, batched)
    ]
    assert tuples[0] == tuples[1], f"seed {seed}: {query.where}"


# ---------------------------------------------------------------------------
# The batch path really runs (keeping the suite honest)
# ---------------------------------------------------------------------------


def test_batch_path_actually_used(monkeypatch):
    """Guard: the default-on batch path routes atom evaluation through
    KineticBatch.solve — not a silent fallback to the scalar loop."""
    import repro.ftl.evaluator as evaluator_mod

    solves = []
    orig = evaluator_mod.KineticBatch

    class Counting(orig):
        def solve(self):
            solves.append(1)
            return super().solve()

    monkeypatch.setattr(evaluator_mod, "KineticBatch", Counting)
    rng = random.Random(4)
    db = build_world(rng)
    bindings = {"c": "cars", "v": "vans"}
    where = AndF(
        Inside(Var("c"), "P"),
        Compare("<=", Dist(Var("c"), Var("v")), Const(6)),
    )
    db.kinetic_cache.clear()
    ctx = EvalContext(FutureHistory(db), HORIZON, bindings)
    IntervalEvaluator(ctx).evaluate(where)
    assert solves, "batch_solver=True never reached KineticBatch.solve"


def test_zero_length_window_stays_scalar():
    """A horizon-0 window has no kinetics to batch; the batch flag must
    be inert there (the scalar pairing synthesizes a zero-velocity leg
    the coefficient extraction deliberately does not reproduce)."""
    rng = random.Random(9)
    db = build_world(rng)
    bindings = {"c": "cars", "v": "vans"}
    ctx = EvalContext(FutureHistory(db), 0, bindings)
    assert not IntervalEvaluator(ctx)._use_batch()
    query = random_query(rng)
    scalar, batched = both_solvers(query, db, horizon=0)
    assert scalar == batched


# ---------------------------------------------------------------------------
# Cache-key compatibility and the configurable bound
# ---------------------------------------------------------------------------


def test_batch_and_scalar_fill_the_same_cache_keys():
    """A batched run must leave the shared cache exactly as a scalar run
    would: a scalar rerun over a batch-warmed cache is all hits with zero
    fresh solves, and vice versa."""
    rng = random.Random(5)
    db = build_world(rng)
    bindings = {"c": "cars", "v": "vans"}
    where = AndF(
        Inside(Var("c"), "P"),
        Compare("<=", Dist(Var("c"), Var("v")), Const(6)),
    )

    def run(batch):
        ctx = EvalContext(FutureHistory(db), HORIZON, bindings)
        ev = IntervalEvaluator(ctx, batch_solver=batch)
        ev.evaluate(where)
        return ev

    db.kinetic_cache.clear()
    warm = run(batch=True)
    assert warm.kinetic_solves > 0
    reread = run(batch=False)
    assert reread.kinetic_solves == 0
    assert reread.cache_misses == 0
    assert reread.cache_hits > 0

    db.kinetic_cache.clear()
    warm = run(batch=False)
    assert warm.kinetic_solves > 0
    reread = run(batch=True)
    assert reread.kinetic_solves == 0
    assert reread.cache_misses == 0
    assert reread.cache_hits > 0


def test_database_cache_bound_is_configurable():
    """MostDatabase(kinetic_cache_size=N) bounds the shared cache, with
    the same FIFO eviction order as the default-sized cache."""
    from repro.ftl.atoms import DEFAULT_CACHE_ENTRIES

    db = MostDatabase(kinetic_cache_size=4)
    cache = db.kinetic_cache
    assert cache.max_entries == 4
    empty = IntervalSet.empty(DISCRETE)
    for i in range(10):
        cache.put(("k", i), empty)
    assert len(cache) == 4
    # FIFO: the six oldest are gone, the four newest survive.
    assert all(cache.get(("k", i), record=False) is None for i in range(6))
    assert all(
        cache.get(("k", i), record=False) is not None for i in range(6, 10)
    )
    assert MostDatabase().kinetic_cache.max_entries == DEFAULT_CACHE_ENTRIES


def test_bounded_cache_serves_the_batch_path():
    """A tightly bounded cache (more surviving rows than entries, so the
    batch itself overflows it) evicts mid-run without perturbing answers
    — batch and scalar still agree tuple for tuple."""
    query = FtlQuery(
        targets=("c", "v"),
        bindings={"c": "cars", "v": "vans"},
        where=AndF(
            Inside(Var("c"), "P"),
            Compare("<=", Dist(Var("c"), Var("v")), Const(6)),
        ),
    )
    rows = []
    for batch in (False, True):
        rng = random.Random(21)
        db = build_world(rng)
        # The cache is built lazily on first use, so sizing the db after
        # world construction still applies the bound.
        db.kinetic_cache_size = 3
        assert db.kinetic_cache.max_entries == 3
        rel = query.evaluate_full(
            FutureHistory(db), HORIZON, batch_solver=batch
        )
        assert len(db.kinetic_cache) <= 3
        rows.append(rows_of(rel))
    assert rows[0] == rows[1]


# ---------------------------------------------------------------------------
# Error parity
# ---------------------------------------------------------------------------


def test_batch_preserves_errors_on_nonspatial_objects():
    """An atom over a class without spatial attributes raises the same
    error with the batch backend on and off — batching must never
    reorder or swallow the scalar path's failures."""
    from repro.spatial import Polygon

    db = MostDatabase()
    db.create_class(ObjectClass("tags", dynamic_attributes=("level",)))
    db.define_region("P", Polygon.rectangle(0, 0, 5, 5))
    db.add_object(
        "tags",
        "t0",
        dynamic={"level": DynamicAttribute.linear(1.0, 0.5)},
    )
    query = FtlQuery(
        targets=("t",), bindings={"t": "tags"}, where=Inside(Var("t"), "P")
    )
    with pytest.raises((QueryError, SchemaError)) as scalar_err:
        query.evaluate_full(FutureHistory(db), 5, batch_solver=False)
    with pytest.raises((QueryError, SchemaError)) as batch_err:
        query.evaluate_full(FutureHistory(db), 5, batch_solver=True)
    assert type(scalar_err.value) is type(batch_err.value)
    assert str(scalar_err.value) == str(batch_err.value)
