-- A bounded temporal window: the whole-query horizon slides with the
-- fleet's motion events, offset by the WITHIN bound.
RETRIEVE o
FROM cars o
WHERE EVENTUALLY WITHIN 8 INSIDE(o, P)
