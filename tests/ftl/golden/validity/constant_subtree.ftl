-- The left conjunct reads no time-varying state at all: its horizon is
-- constant (valid forever) and the query horizon comes from the atom.
RETRIEVE o
FROM cars o
WHERE 1 < 2 AND INSIDE(o, P)
