-- Unbounded EVENTUALLY reads to the evaluation horizon: the validity
-- claim is all-or-nothing (guarded on no event before the window end).
RETRIEVE o
FROM cars o
WHERE EVENTUALLY INSIDE(o, P)
