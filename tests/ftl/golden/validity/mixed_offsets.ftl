-- A conjunction of windows: the present-state atom (offset 0) unions
-- with the NEXT-shifted attribute read (offset 1).
RETRIEVE o
FROM cars o
WHERE INSIDE(o, P) AND NEXTTIME (o.fuel < 10)
