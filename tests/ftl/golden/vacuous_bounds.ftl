RETRIEVE o
FROM cars o
WHERE EVENTUALLY WITHIN 0 o.x_position > 1
  AND ALWAYS FOR 0 o.y_position < 5
