-- Plan-level lints (pass 6): the two conjuncts share no variable, so
-- the conjunction is an inherent cross product (FTL601), and the outer
-- negation complements over both variables' domain product (FTL602).
RETRIEVE c
FROM cars c, trucks t
WHERE NOT (INSIDE(c, P) AND INSIDE(t, P))
