RETRIEVE o
FROM cars o
WHERE o.x_position >
