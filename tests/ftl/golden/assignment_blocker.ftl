RETRIEVE o
FROM cars o
WHERE [m := o.x_position]
  EVENTUALLY WITHIN 5 o.x_position > m
