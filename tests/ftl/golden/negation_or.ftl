RETRIEVE o
FROM cars o, cars n
WHERE NOT INSIDE(o, P)
   OR n.x_position > 9
