RETRIEVE o
FROM cars o
WHERE [o := o.x_position] o.x_position > 1
