RETRIEVE o
FROM cars o
WHERE o.x_position > 1 AND 2 > 1
