-- The assignment-bound value variable m carries no class; the deps of
-- t.x_position are charged to trucks where the term occurs.
RETRIEVE c
FROM cars c, trucks t
WHERE [m := t.x_position] EVENTUALLY c.x_position > m
