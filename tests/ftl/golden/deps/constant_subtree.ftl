-- The left conjunct reads no update-sensitive state (FTL701): its
-- relation is constant under explicit updates.
RETRIEVE o
FROM cars o
WHERE 1 < 2 AND INSIDE(o, P)
