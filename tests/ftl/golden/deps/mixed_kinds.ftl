-- Mixed read kinds: a (schema-less ambiguous) fuel attribute plus a
-- spatial atom — sensitive to every update kind of cars.
RETRIEVE o
FROM cars o
WHERE o.fuel < 10 AND INSIDE(o, P)
