-- A purely kinetic query: reads positions and the region geometry
-- only, so attribute and static updates are provably irrelevant.
RETRIEVE o
FROM cars o
WHERE EVENTUALLY WITHIN 8 INSIDE(o, P)
