"""Correctness gates for the cost-based orderer and the rewrite rules.

Two differential properties over seeded random worlds and formulas
(generators shared with ``test_differential``):

1. **Order soundness** — evaluating through the cost-ordered plan must
   produce exactly the same relation, tuple for tuple and interval for
   interval, as the syntactic operand order, under all three methods
   (naive, interval, incremental continuous queries).  The orderer only
   permutes commutative conjuncts and independent assignment links, so
   any divergence is a bug, not an approximation.

2. **Rewrite soundness** — every derived-operator rewrite rule of
   ``rewrite.py`` must preserve ``Answer(CQ)`` when its expansion is
   evaluated *through the plan layer* (ordered and syntactic).  A rule
   failing this gate gets quarantined in ``rewrite.QUARANTINED`` and
   flagged FTL605; the gate doubles as the proof the quarantine set can
   stay empty.
"""

import random

import pytest

from repro.core import FutureHistory
from repro.core.queries import ContinuousQuery
from repro.errors import FtlSemanticsError
from repro.ftl import FtlQuery, expand, quarantined_rules
from repro.ftl.rewrite import RULE_NAMES

from tests.ftl.test_differential import (
    HORIZON,
    apply_random_updates,
    build_world,
    random_formula,
    random_query,
)


def relation_key(relation):
    return sorted(
        (inst, tuple((i.start, i.end) for i in iset.intervals))
        for inst, iset in relation.rows()
    )


# Bounded built-ins erode at the modelled horizon while their Until
# encodings cannot see past it (see test_rewrite.SLACK): evaluate the
# rewrite gates with slack and compare only on [0, HORIZON].
SLACK = 12


def clipped_key(relation):
    out = []
    for inst, iset in relation.rows():
        c = iset.clip(0, HORIZON)
        if not c.is_empty:
            out.append((inst, tuple((i.start, i.end) for i in c.intervals)))
    return sorted(out)


# ---------------------------------------------------------------------------
# 1. Ordered plan ≡ syntactic order
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(120))
def test_ordered_plan_matches_syntactic_order(seed):
    """One-shot evaluation: ordered ≡ syntactic for naive and interval."""
    rng = random.Random(seed)
    db = build_world(rng)
    query = random_query(rng)
    history = FutureHistory(db)
    for method in ("interval", "naive"):
        ordered = query.evaluate_full(
            history, HORIZON, method=method, ordered=True
        )
        syntactic = query.evaluate_full(
            history, HORIZON, method=method, ordered=False
        )
        assert relation_key(ordered) == relation_key(syntactic), (
            f"seed {seed} method {method}: orderer changed the answer "
            f"for {query.where}"
        )


@pytest.mark.parametrize("seed", range(40))
def test_ordered_continuous_queries_match_unordered(seed):
    """Driven continuous queries: ordered and unordered replicas stay in
    lockstep across updates, for all three methods."""
    rng = random.Random(seed)
    world_bits = rng.getstate()
    dbs = []
    for _ in range(6):
        rng.setstate(world_bits)
        dbs.append(build_world(rng))
    query = random_query(rng)
    cqs = []
    for i, method in enumerate(("naive", "interval", "incremental")):
        cqs.append(
            ContinuousQuery(
                dbs[2 * i], query, horizon=HORIZON, method=method,
                ordered=True,
            )
        )
        cqs.append(
            ContinuousQuery(
                dbs[2 * i + 1], query, horizon=HORIZON, method=method,
                ordered=False,
            )
        )
    for step in range(4):
        for db in dbs:
            db.clock.tick()
        apply_random_updates(rng, dbs)
        displays = [cq.current() for cq in cqs]
        assert all(d == displays[0] for d in displays[1:]), (
            f"seed {seed} step {step}: ordered/unordered replicas "
            f"diverge for {query.where}"
        )
    answers = [
        sorted((t.values, t.begin, t.end) for t in cq.answer_tuples())
        for cq in cqs
    ]
    assert all(a == answers[0] for a in answers[1:]), (
        f"seed {seed}: Answer(CQ) diverges for {query.where}"
    )


def test_ordered_queries_build_plans():
    """Guard: the differential suite actually exercises reordered plans,
    not a silent fallthrough to syntactic order."""
    reordered = 0
    for seed in range(200):
        rng = random.Random(seed)
        build_world(rng)  # keep the rng stream aligned with run_case
        query = random_query(rng)
        try:
            plan = query.plan_for()
        except FtlSemanticsError:  # pragma: no cover - fragment is plannable
            continue
        if plan.reordered:
            reordered += 1
    assert reordered >= 10, f"only {reordered} seeds produced reordered plans"


# ---------------------------------------------------------------------------
# 2. Rewrite soundness through the plan layer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(60))
def test_rewrites_preserve_answers_through_plans(seed):
    """expand() ∘ plan ≡ plan: the Until/Nexttime encodings of the
    derived operators answer identically, ordered or not."""
    rng = random.Random(seed)
    db = build_world(rng)
    formula = random_formula(rng, 2)
    free = sorted(formula.free_vars())
    if not free:  # pragma: no cover - atoms always mention a variable
        return
    bindings = {v: ("cars" if v == "c" else "vans") for v in free}
    query = FtlQuery(targets=tuple(free), bindings=bindings, where=formula)
    expanded = FtlQuery(
        targets=tuple(free), bindings=bindings, where=expand(formula)
    )
    history = FutureHistory(db)
    baseline = clipped_key(
        query.evaluate(
            history, HORIZON + SLACK, method="interval", ordered=False
        )
    )
    for ordered in (False, True):
        got = clipped_key(
            expanded.evaluate(
                history, HORIZON + SLACK, method="interval", ordered=ordered
            )
        )
        assert got == baseline, (
            f"seed {seed} ordered={ordered}: rewrite changed the answer "
            f"for {formula}"
        )


def test_every_rule_is_exercised_and_sound():
    """Per-rule gate: each derived operator, rewritten in isolation,
    answers identically to its built-in routine — so no rule needs to
    join ``QUARANTINED``."""
    assert quarantined_rules() == frozenset()
    exercised = set()
    for seed in range(80):
        rng = random.Random(seed)
        db = build_world(rng)
        formula = random_formula(rng, 2)
        rules = {
            RULE_NAMES[type(g)]
            for g in _subformulas(formula)
            if type(g) in RULE_NAMES
        }
        if not rules:
            continue
        exercised |= rules
        free = sorted(formula.free_vars())
        bindings = {v: ("cars" if v == "c" else "vans") for v in free}
        query = FtlQuery(
            targets=tuple(free), bindings=bindings, where=formula
        )
        rewritten = FtlQuery(
            targets=tuple(free), bindings=bindings, where=expand(formula)
        )
        history = FutureHistory(db)
        assert clipped_key(
            query.evaluate(history, HORIZON + SLACK)
        ) == clipped_key(rewritten.evaluate(history, HORIZON + SLACK)), (
            f"seed {seed}: rules {sorted(rules)} unsound for {formula}"
        )
    assert exercised == set(RULE_NAMES.values()), (
        f"rules never generated: {set(RULE_NAMES.values()) - exercised}"
    )


def _subformulas(f):
    yield f
    for attr in ("left", "right", "operand", "body"):
        child = getattr(f, attr, None)
        if child is not None and hasattr(child, "free_vars"):
            yield from _subformulas(child)
