"""Property tests: derived-operator expansion preserves semantics.

Sections 3.2–3.4 claim every derived operator reduces to Until/Nexttime
(+ the time object).  We check the executable reduction on random worlds:
the expanded formula must be satisfied at exactly the same (instantiation,
tick) pairs as the original, under both evaluators.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl import (
    Always,
    AlwaysFor,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Inside,
    Until,
    UntilWithin,
    Var,
    parse_formula,
)
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.ftl.naive import NaiveEvaluator
from repro.ftl.rewrite import expand, uses_only_basic_operators
from repro.geometry import Point
from repro.spatial import Polygon

HORIZON = 10

car_spec = st.tuples(
    st.integers(min_value=-6, max_value=10),
    st.integers(min_value=-6, max_value=10),
    st.integers(min_value=-2, max_value=2),
    st.integers(min_value=-2, max_value=2),
)
worlds = st.lists(car_spec, min_size=1, max_size=3)
bounds = st.integers(min_value=0, max_value=6)

P = Inside(Var("o"), "P")
Q = Inside(Var("o"), "Q")

derived_formulas = st.one_of(
    st.builds(Eventually, st.just(P)),
    st.builds(Always, st.just(P)),
    st.builds(EventuallyWithin, bounds, st.just(P)),
    st.builds(EventuallyAfter, bounds, st.just(P)),
    st.builds(AlwaysFor, bounds, st.just(P)),
    st.builds(UntilWithin, bounds, st.just(P), st.just(Q)),
    st.builds(
        EventuallyWithin,
        bounds,
        st.builds(AlwaysFor, bounds, st.just(P)),
    ),
    st.builds(
        Until,
        st.builds(EventuallyWithin, bounds, st.just(P)),
        st.just(Q),
    ),
)


def build_db(cars) -> MostDatabase:
    db = MostDatabase()
    db.create_class(ObjectClass("cars", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 8, 8))
    db.define_region("Q", Polygon.rectangle(3, -5, 12, 3))
    for i, (x, y, vx, vy) in enumerate(cars):
        db.add_moving_object("cars", f"c{i}", Point(x, y), Point(vx, vy))
    return db


MAX_BOUND = 6  # largest bound the formula strategy generates
# The built-in "Always for c" requires the whole window [t, t+c] to fit
# inside the modelled horizon, while its Until expansion cannot see
# violations beyond it — a pure finite-horizon artifact that nested
# operators propagate up to MAX_BOUND per nesting level.  Evaluating with
# two levels of slack and comparing only on [0, HORIZON] removes it (over
# the paper's infinite history the two coincide everywhere).
SLACK = 2 * MAX_BOUND


def rows(db, formula, method):
    ctx = EvalContext(FutureHistory(db), HORIZON + SLACK, {"o": "cars"})
    if method == "interval":
        rel = IntervalEvaluator(ctx).evaluate(formula)
    else:
        rel = NaiveEvaluator(ctx).evaluate(formula)
    out = {}
    for inst, iset in rel.rows():
        clipped = iset.clip(0, HORIZON)
        if not clipped.is_empty:
            out[inst] = clipped
    return out


class TestStructure:
    def test_expansion_removes_derived_operators(self):
        f = parse_formula(
            "EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P) "
            "AND EVENTUALLY AFTER 5 INSIDE(o, Q))"
        )
        assert not uses_only_basic_operators(f)
        assert uses_only_basic_operators(expand(f))

    def test_expansion_preserves_free_vars(self):
        f = parse_formula("EVENTUALLY WITHIN 3 INSIDE(o, P)")
        assert expand(f).free_vars() == {"o"}

    def test_atoms_unchanged(self):
        f = parse_formula("INSIDE(o, P)")
        assert expand(f) == f

    def test_fresh_variables_do_not_collide(self):
        f = parse_formula(
            "[x := o.x_position] EVENTUALLY WITHIN 2 o.x_position >= x"
        )
        expanded = expand(f)
        assert uses_only_basic_operators(expanded)
        assert expanded.free_vars() == {"o"}

    def test_nexttime_and_until_pass_through(self):
        f = parse_formula("NEXTTIME (INSIDE(o, P) UNTIL INSIDE(o, Q))")
        assert expand(f) == f


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(worlds, derived_formulas)
def test_expansion_preserves_naive_semantics(cars, formula):
    db = build_db(cars)
    assert rows(db, formula, "naive") == rows(db, expand(formula), "naive")


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(worlds, derived_formulas)
def test_expansion_matches_builtin_interval_operators(cars, formula):
    db = build_db(cars)
    builtin = rows(db, formula, "interval")
    expanded = rows(db, expand(formula), "interval")
    assert builtin == expanded
