"""FTL over 3-D moving objects (aircraft with altitude).

The paper's spatial classes carry X/Y/Z positions; these tests exercise
the 3-D path through both evaluators: ball containment, DIST, and
WITHIN_SPHERE in space.
"""

import pytest

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl import parse_query
from repro.geometry import Point
from repro.spatial import Ball


@pytest.fixture
def db() -> MostDatabase:
    database = MostDatabase()
    database.create_class(ObjectClass("aircraft", spatial_dimensions=3))
    database.define_region("APPROACH", Ball(Point(0.0, 0.0, 100.0), 50.0))
    return database


def both(db, text, horizon):
    query = parse_query(text)
    history = FutureHistory(db)
    a = dict(query.evaluate(history, horizon, method="interval").rows())
    b = dict(query.evaluate(history, horizon, method="naive").rows())
    assert a == b
    return a


class Test3D:
    def test_descending_into_approach_sphere(self, db):
        # Starts high and away, descends towards the approach fix.
        db.add_moving_object(
            "aircraft", "inbound", Point(300.0, 0.0, 400.0), Point(-10.0, 0.0, -10.0)
        )
        db.add_moving_object(
            "aircraft", "cruising", Point(300.0, 0.0, 9000.0), Point(-10.0, 0.0, 0.0)
        )
        rows = both(
            db,
            "RETRIEVE a FROM aircraft a WHERE EVENTUALLY INSIDE(a, APPROACH)",
            60,
        )
        assert set(rows) == {("inbound",)}

    def test_dist_in_space(self, db):
        db.add_moving_object(
            "aircraft", "a", Point(0.0, 0.0, 0.0), Point(0.0, 0.0, 10.0)
        )
        db.add_moving_object(
            "aircraft", "b", Point(0.0, 0.0, 200.0), Point(0.0, 0.0, -10.0)
        )
        rows = both(
            db,
            "RETRIEVE a, b FROM aircraft a, aircraft b "
            "WHERE a.z_position < b.z_position AND DIST(a, b) <= 40",
            30,
        )
        # Closing at 20/tick from 200 apart: within 40 during [8, 12]
        # while a is still below b (they cross at t=10).
        iset = rows[("a", "b")]
        assert iset.earliest == 8
        assert iset.latest == 9  # strict < keeps only the pre-crossing side

    def test_unbound_sphere_arguments_rejected(self, db):
        from repro.errors import FtlSemanticsError

        with pytest.raises(FtlSemanticsError):
            parse_query(
                "RETRIEVE a FROM aircraft a WHERE WITHIN_SPHERE(31, p, q, a)"
            )

    def test_within_sphere_triplet(self, db):
        for i, z in enumerate((0.0, 30.0, 60.0)):
            db.add_moving_object(
                "aircraft", f"p{i}", Point(0.0, 0.0, z), Point(0.0, 0.0, 0.0)
            )
        rows = both(
            db,
            "RETRIEVE a, b FROM aircraft a, aircraft b "
            "WHERE a.z_position < b.z_position AND WITHIN_SPHERE(16, a, b)",
            5,
        )
        # Radius-16 sphere encloses pairs at most 32 apart: (p0,p1), (p1,p2).
        assert set(rows) == {("p0", "p1"), ("p1", "p2")}

    def test_altitude_attribute_query(self, db):
        db.add_moving_object(
            "aircraft", "climber", Point(0.0, 0.0, 0.0), Point(0.0, 0.0, 100.0)
        )
        rows = both(
            db,
            "RETRIEVE a FROM aircraft a WHERE a.z_position >= 1000",
            30,
        )
        assert rows[("climber",)].earliest == 10
