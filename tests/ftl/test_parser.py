"""Unit tests for the FTL lexer and parser."""

import pytest

from repro.errors import FtlSemanticsError, FtlSyntaxError
from repro.ftl import (
    Always,
    AlwaysFor,
    AndF,
    Arith,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    SubAttr,
    TimeTerm,
    Until,
    UntilWithin,
    Var,
    WithinSphere,
    parse_formula,
    parse_query,
)
from repro.ftl.lexer import tokenize


class TestLexer:
    def test_keywords(self):
        toks = tokenize("RETRIEVE until Eventually")
        assert [t.value for t in toks[:-1]] == ["RETRIEVE", "UNTIL", "EVENTUALLY"]

    def test_assign_symbol(self):
        toks = tokenize("[x := 5]")
        assert [t.value for t in toks[:-1]] == ["[", "x", ":=", "5", "]"]

    def test_unterminated_string(self):
        with pytest.raises(FtlSyntaxError):
            tokenize("'abc")

    def test_bad_char(self):
        with pytest.raises(FtlSyntaxError):
            tokenize("a ; b")


class TestTermParsing:
    def parse_term(self, text):
        # Embed in a trivially-true comparison to reach the term grammar.
        f = parse_formula(f"{text} = {text}")
        assert isinstance(f, Compare)
        return f.left

    def test_variable(self):
        assert self.parse_term("o") == Var("o")

    def test_attribute(self):
        assert self.parse_term("o.price") == Attr(Var("o"), "price")

    def test_sub_attribute(self):
        assert self.parse_term("o.x_position.function") == SubAttr(
            Var("o"), "x_position", "function"
        )

    def test_bad_sub_attribute(self):
        with pytest.raises(FtlSemanticsError):
            parse_formula("o.a.speedy = 1")

    def test_too_deep_path(self):
        with pytest.raises(FtlSyntaxError):
            parse_formula("o.a.b.c = 1")

    def test_time(self):
        assert self.parse_term("time") == TimeTerm()

    def test_dist(self):
        assert self.parse_term("DIST(o, n)") == Dist(Var("o"), Var("n"))

    def test_arith_precedence(self):
        t = self.parse_term("1 + 2 * x")
        assert isinstance(t, Arith)
        assert t.op == "+"

    def test_unary_minus(self):
        assert self.parse_term("-3") == Const(-3)

    def test_strings_and_floats(self):
        assert self.parse_term("'hi'") == Const("hi")
        assert self.parse_term("2.5") == Const(2.5)


class TestFormulaParsing:
    def test_spatial_atoms(self):
        assert parse_formula("INSIDE(o, P)") == Inside(Var("o"), "P")
        assert parse_formula("OUTSIDE(o, P)") == Outside(Var("o"), "P")
        f = parse_formula("WITHIN_SPHERE(2.5, a, b, c)")
        assert f == WithinSphere(2.5, (Var("a"), Var("b"), Var("c")))

    def test_within_sphere_needs_objects(self):
        with pytest.raises(FtlSyntaxError):
            parse_formula("WITHIN_SPHERE(2.5)")

    def test_boolean_precedence(self):
        f = parse_formula("INSIDE(o, P) OR INSIDE(o, Q) AND INSIDE(o, R)")
        assert isinstance(f, OrF)
        assert isinstance(f.right, AndF)

    def test_until_loosest(self):
        f = parse_formula("DIST(o, n) <= 5 UNTIL INSIDE(o, P) AND INSIDE(n, P)")
        assert isinstance(f, Until)
        assert isinstance(f.right, AndF)

    def test_until_right_associative(self):
        f = parse_formula("INSIDE(o, A) UNTIL INSIDE(o, B) UNTIL INSIDE(o, C)")
        assert isinstance(f, Until)
        assert isinstance(f.right, Until)

    def test_until_within(self):
        f = parse_formula("INSIDE(o, A) UNTIL WITHIN 4 INSIDE(o, B)")
        assert f == UntilWithin(4, Inside(Var("o"), "A"), Inside(Var("o"), "B"))

    def test_prefix_operators(self):
        assert isinstance(parse_formula("NOT INSIDE(o, P)"), NotF)
        assert isinstance(parse_formula("NEXTTIME INSIDE(o, P)"), Nexttime)
        assert isinstance(parse_formula("EVENTUALLY INSIDE(o, P)"), Eventually)
        assert parse_formula("EVENTUALLY WITHIN 3 INSIDE(o, P)") == (
            EventuallyWithin(3, Inside(Var("o"), "P"))
        )
        assert parse_formula("EVENTUALLY AFTER 5 INSIDE(o, P)") == (
            EventuallyAfter(5, Inside(Var("o"), "P"))
        )
        assert isinstance(parse_formula("ALWAYS INSIDE(o, P)"), Always)
        assert parse_formula("ALWAYS FOR 2 INSIDE(o, P)") == AlwaysFor(
            2, Inside(Var("o"), "P")
        )

    def test_assignment(self):
        f = parse_formula("[x := o.speed] EVENTUALLY o.speed >= 2 * x")
        assert isinstance(f, Assign)
        assert f.var == "x"
        assert f.term == Attr(Var("o"), "speed")
        assert isinstance(f.body, Eventually)

    def test_parenthesised_formula_vs_term(self):
        f = parse_formula("(INSIDE(o, P) AND INSIDE(o, Q))")
        assert isinstance(f, AndF)
        g = parse_formula("(o.a + 1) < 5")
        assert isinstance(g, Compare)

    def test_example_II_section_34(self):
        f = parse_formula(
            "EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P))"
        )
        assert isinstance(f, EventuallyWithin)
        assert isinstance(f.operand, AndF)

    def test_true_false_sugar(self):
        t = parse_formula("TRUE")
        f = parse_formula("FALSE")
        assert isinstance(t, Compare) and isinstance(f, Compare)

    def test_trailing_garbage(self):
        with pytest.raises(FtlSyntaxError):
            parse_formula("INSIDE(o, P) extra")

    def test_missing_comparison_op(self):
        with pytest.raises(FtlSyntaxError):
            parse_formula("o.price")


class TestQueryParsing:
    def test_full_query(self):
        q = parse_query(
            "RETRIEVE o, n FROM cars o, cars n "
            "WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))"
        )
        assert q.targets == ("o", "n")
        assert q.bindings == {"o": "cars", "n": "cars"}
        assert isinstance(q.where, Until)
        assert q.is_conjunctive

    def test_nonconjunctive_flag(self):
        q = parse_query("RETRIEVE o FROM cars o WHERE NOT INSIDE(o, P)")
        assert not q.is_conjunctive

    def test_unbound_free_variable_rejected(self):
        with pytest.raises(FtlSemanticsError):
            parse_query("RETRIEVE o FROM cars o WHERE INSIDE(n, P)")

    def test_unbound_target_rejected(self):
        with pytest.raises(FtlSemanticsError):
            parse_query("RETRIEVE z FROM cars o WHERE INSIDE(o, P)")

    def test_duplicate_from_variable(self):
        with pytest.raises(FtlSyntaxError):
            parse_query("RETRIEVE o FROM cars o, cars o WHERE INSIDE(o, P)")

    def test_assigned_variables_are_bound(self):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE [x := o.x_position.value]"
            " EVENTUALLY o.x_position.value >= x + 10"
        )
        assert q.where.free_vars() == {"o"}

    def test_free_vars_of_ast_nodes(self):
        f = parse_formula("[x := o.a] (n.b >= x AND INSIDE(o, P))")
        assert f.free_vars() == {"o", "n"}
        assert parse_formula("WITHIN_SPHERE(1, a, b)").free_vars() == {"a", "b"}

    def test_str_roundtrip_smoke(self):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE EVENTUALLY WITHIN 3 "
            "(INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P) "
            "AND EVENTUALLY AFTER 5 INSIDE(o, Q))"
        )
        text = str(q.where)
        assert "EVENTUALLY WITHIN 3" in text
        assert "ALWAYS FOR 2" in text
        assert "EVENTUALLY AFTER 5" in text
