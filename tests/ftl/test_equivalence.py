"""Property test: the appendix interval algorithm ≡ the per-state
semantics of section 3.3, on randomly generated formulas and worlds.

This is the core soundness check of the reproduction: for random fleets of
moving objects (integer positions/velocities to avoid tick-boundary float
noise) and random FTL formulas drawn from the full operator set, the
relation computed by :class:`IntervalEvaluator` must equal the one from
:class:`NaiveEvaluator` exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.ftl import (
    Arith,
    Always,
    AlwaysFor,
    AndF,
    Assign,
    Attr,
    Compare,
    Const,
    Dist,
    Eventually,
    EventuallyAfter,
    EventuallyWithin,
    Inside,
    Nexttime,
    NotF,
    OrF,
    Outside,
    UntilWithin,
    Until,
    Var,
    WithinSphere,
)
from repro.ftl.context import EvalContext
from repro.ftl.evaluator import IntervalEvaluator
from repro.ftl.naive import NaiveEvaluator
from repro.geometry import Point
from repro.spatial import Polygon

HORIZON = 12

# ---------------------------------------------------------------------------
# World strategy: 1-3 cars with small integer positions and velocities
# ---------------------------------------------------------------------------
car_spec = st.tuples(
    st.integers(min_value=-8, max_value=12),  # x
    st.integers(min_value=-8, max_value=12),  # y
    st.integers(min_value=-2, max_value=2),   # vx
    st.integers(min_value=-2, max_value=2),   # vy
    st.integers(min_value=0, max_value=150),  # price
)

worlds = st.lists(car_spec, min_size=1, max_size=3)


def build_db(cars) -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    db.define_region("Q", Polygon.rectangle(4, -6, 15, 3))
    for i, (x, y, vx, vy, price) in enumerate(cars):
        db.add_moving_object(
            "cars", f"c{i}", Point(x, y), Point(vx, vy), static={"price": price}
        )
    return db


# ---------------------------------------------------------------------------
# Formula strategy over variables o (always) and n (sometimes)
# ---------------------------------------------------------------------------
bounds = st.integers(min_value=0, max_value=5)

atoms = st.one_of(
    st.builds(Inside, st.just(Var("o")), st.sampled_from(["P", "Q"])),
    st.builds(Outside, st.just(Var("o")), st.sampled_from(["P", "Q"])),
    # Atoms over the *other* variable exercise disjoint-variable joins
    # (the outer Until join, Or/Not domain enumeration).
    st.builds(Inside, st.just(Var("n")), st.sampled_from(["P", "Q"])),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.just(Attr(Var("n"), "x_position")),
        st.builds(Const, st.integers(min_value=-10, max_value=15)),
    ),
    st.builds(
        Compare,
        st.just("<="),
        st.just(Attr(Var("o"), "price")),
        st.builds(Const, st.integers(min_value=0, max_value=150)),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">=", "<", ">"]),
        st.just(Attr(Var("o"), "x_position")),
        st.builds(Const, st.integers(min_value=-10, max_value=15)),
    ),
    st.builds(
        Compare,
        st.sampled_from(["<=", ">="]),
        st.builds(Dist, st.just(Var("o")), st.just(Var("n"))),
        st.builds(Const, st.integers(min_value=0, max_value=12)),
    ),
    st.builds(
        WithinSphere,
        st.integers(min_value=1, max_value=6),
        st.just((Var("o"), Var("n"))),
    ),
)


def formulas(depth: int):
    if depth == 0:
        return atoms
    sub = formulas(depth - 1)
    return st.one_of(
        atoms,
        st.builds(AndF, sub, sub),
        st.builds(OrF, sub, sub),
        st.builds(NotF, sub),
        st.builds(Until, sub, sub),
        st.builds(UntilWithin, bounds, sub, sub),
        st.builds(Nexttime, sub),
        st.builds(Eventually, sub),
        st.builds(EventuallyWithin, bounds, sub),
        st.builds(EventuallyAfter, bounds, sub),
        st.builds(Always, sub),
        st.builds(AlwaysFor, bounds, sub),
        st.builds(
            Assign,
            st.just("v"),
            st.just(Attr(Var("o"), "x_position")),
            st.builds(
                Compare,
                st.sampled_from(["<=", ">="]),
                st.just(Attr(Var("o"), "x_position")),
                st.builds(
                    lambda c: Const(c),
                    st.integers(min_value=-5, max_value=5),
                ).map(lambda c: c),
            ),
        ),
    )


# Assign bodies that actually use the bound variable.
assign_formulas = st.builds(
    Assign,
    st.just("v"),
    st.just(Attr(Var("o"), "x_position")),
    st.builds(
        lambda op, delta, inner: AndF(
            Compare(op, Attr(Var("o"), "x_position"), Const(delta)), inner
        )
        if inner is not None
        else Compare(op, Attr(Var("o"), "x_position"), Const(delta)),
        st.sampled_from(["<=", ">="]),
        st.integers(min_value=-5, max_value=15),
        st.none(),
    ),
)


def relation_as_dict(rel):
    return {inst: iset for inst, iset in rel.rows()}


def assert_equivalent(db: MostDatabase, formula) -> None:
    bindings = {v: "cars" for v in sorted(formula.free_vars())}
    if not bindings:
        bindings = {"o": "cars"}
    history = FutureHistory(db)
    ctx_i = EvalContext(history, HORIZON, bindings)
    ctx_n = EvalContext(history, HORIZON, bindings)
    interval = relation_as_dict(IntervalEvaluator(ctx_i).evaluate(formula))
    naive = relation_as_dict(NaiveEvaluator(ctx_n).evaluate(formula))
    assert interval == naive, (
        f"evaluators disagree on {formula}\n"
        f"interval: {interval}\nnaive:    {naive}"
    )


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(worlds, formulas(2))
def test_interval_equals_naive(cars, formula):
    assert_equivalent(build_db(cars), formula)


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(worlds, formulas(3))
def test_interval_equals_naive_deep(cars, formula):
    assert_equivalent(build_db(cars), formula)


@settings(max_examples=60, deadline=None)
@given(worlds)
def test_assignment_equivalence(cars):
    # [v := o.x_position] Eventually o.x_position >= v + 3
    formula = Assign(
        "v",
        Attr(Var("o"), "x_position"),
        Eventually(
            Compare(
                ">=",
                Attr(Var("o"), "x_position"),
                Arith("+", Var("v"), Const(3)),
            )
        ),
    )
    assert_equivalent(build_db(cars), formula)


@settings(max_examples=60, deadline=None)
@given(worlds, st.integers(min_value=0, max_value=HORIZON))
def test_instantaneous_answers_agree(cars, at_tick):
    db = build_db(cars)
    formula = Until(
        Compare("<=", Dist(Var("o"), Var("n")), Const(6)),
        AndF(Inside(Var("o"), "P"), Inside(Var("n"), "P")),
    )
    bindings = {"o": "cars", "n": "cars"}
    history = FutureHistory(db)
    r1 = IntervalEvaluator(EvalContext(history, HORIZON, bindings)).evaluate(formula)
    r2 = NaiveEvaluator(EvalContext(history, HORIZON, bindings)).evaluate(formula)
    assert r1.satisfied_at(at_tick) == r2.satisfied_at(at_tick)
