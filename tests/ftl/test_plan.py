"""Tests of the evaluation-plan IR, the cost model and the orderer.

Covers lowering (one operator node per subformula, correct op kinds),
the cost-based conjunct/assignment orderer, plan-level FTL6xx
diagnostics, subformula sharing, and the ``CompiledQuery`` surface
(``.plan`` / ``.estimates`` / drift recording).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import FutureHistory, MostDatabase, ObjectClass
from repro.errors import FtlSemanticsError
from repro.ftl import (
    AndF,
    Assign,
    Attr,
    Compare,
    Const,
    EventuallyWithin,
    Inside,
    OrF,
    Var,
    compile_query,
    parse_formula,
    parse_query,
    plan_formula,
    plan_query,
)
from repro.ftl.analysis.cost import CostModel
from repro.ftl.analysis.order import connected_components, order_conjuncts
from repro.ftl.analysis.plan import (
    ATOM_SCAN,
    COMPARE,
    COMPLEMENT,
    INTERSECT_JOIN,
    INTERVAL_MAP,
    PROJECT,
    UNION,
    UNTIL_MERGE,
)
from repro.geometry import Point
from repro.spatial import Polygon

from tests.ftl.test_analysis_properties import build_db, formulas

BINDINGS = {"c": "cars", "v": "vans", "w": "vans"}


def plan_of(text, order=True, bindings=BINDINGS, model=None):
    return plan_formula(
        parse_formula(text), bindings=bindings, model=model, order=order
    )


def codes(plan):
    return [d.code for d in plan.diagnostics]


# ---------------------------------------------------------------------------
# Lowering: op kinds, totality, paths
# ---------------------------------------------------------------------------


class TestLowering:
    def test_op_kinds_per_node(self):
        plan = plan_of(
            "[m := c.x_position] (INSIDE(c, P) AND NOT INSIDE(v, P) "
            "OR (c.price <= 3 UNTIL v.x_position > m))"
        )
        ops = {node.op for _p, node in plan.nodes_with_paths()}
        assert ops == {
            PROJECT, UNION, INTERSECT_JOIN, COMPLEMENT, UNTIL_MERGE,
            ATOM_SCAN, COMPARE,
        }

    def test_interval_map_kinds(self):
        plan = plan_of("EVENTUALLY WITHIN 8 INSIDE(c, P)")
        assert plan.root.op == INTERVAL_MAP
        assert plan.root.detail == "eventually-within 8"
        assert plan.root.children[0].op == ATOM_SCAN

    def test_every_node_names_a_routine_and_estimate(self):
        plan = plan_of(
            "(ALWAYS FOR 4 c.x_position <= 9) UNTIL WITHIN 6 INSIDE(v, Q)"
        )
        for _path, node in plan.nodes_with_paths():
            assert node.routine.startswith(("IntervalEvaluator.", "FtlRelation."))
            assert node.estimate.tuples >= 0
            assert node.estimate.cost > 0

    def test_paths_are_stable_tree_addresses(self):
        plan = plan_of("INSIDE(c, P) AND c.price <= 3")
        paths = [p for p, _n in plan.nodes_with_paths()]
        assert paths[0] == "root"
        assert set(paths[1:]) == {"root.0", "root.1"}
        assert set(plan.estimates) == set(paths)

    def test_unchanged_formula_is_reused_by_identity(self):
        q = parse_query(
            "RETRIEVE o FROM cars o WHERE EVENTUALLY INSIDE(o, P)"
        )
        plan = plan_query(q)
        assert plan.ordered_where is q.where
        assert plan.resolve(q.where) is q.where

    def test_resolve_swaps_only_the_root(self):
        q = parse_query(
            "RETRIEVE c FROM cars c, vans v, vans w "
            "WHERE DIST(c, v) <= 4 AND DIST(v, w) <= 4 AND c.price <= 3"
        )
        plan = plan_query(q)
        assert plan.reordered
        assert plan.resolve(q.where) is plan.ordered_where
        other = parse_formula("INSIDE(c, P)")
        assert plan.resolve(other) is other

    def test_ordered_conjunction_stays_left_deep_binary(self):
        plan = plan_of(
            "DIST(c, v) <= 4 AND DIST(v, w) <= 4 AND c.price <= 3"
        )
        f = plan.ordered_where
        assert isinstance(f, AndF)
        assert isinstance(f.left, AndF)
        assert not isinstance(f.right, AndF)


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------


class TestOrdering:
    def test_selective_cheap_conjunct_first(self):
        plan = plan_of(
            "DIST(c, v) <= 4 AND DIST(v, w) <= 4 AND c.price <= 3"
        )
        first = plan.root.children[0]
        assert str(first.formula) == "c.price <= 3"
        assert plan.root.reordered
        assert plan.reordered

    def test_growth_prefers_connected_conjuncts(self):
        # price(c) starts; DIST(c,v) shares c so it must precede
        # DIST(v,w) even though both distance atoms cost the same.
        plan = plan_of(
            "DIST(v, w) <= 4 AND DIST(c, v) <= 4 AND c.price <= 3"
        )
        order = [str(n.formula) for n in plan.root.children]
        assert order == [
            "c.price <= 3", "DIST(c, v) <= 4", "DIST(v, w) <= 4",
        ]

    def test_no_order_keeps_syntactic_sequence(self):
        plan = plan_of(
            "DIST(c, v) <= 4 AND DIST(v, w) <= 4 AND c.price <= 3",
            order=False,
        )
        assert not plan.ordered
        assert not plan.reordered
        order = [str(n.formula) for n in plan.root.children]
        assert order[0] == "DIST(c, v) <= 4"

    def test_ordering_is_deterministic(self):
        text = "DIST(v, w) <= 4 AND c.price <= 3 AND DIST(c, v) <= 4"
        a = plan_of(text).render()
        b = plan_of(text).render()
        assert a == b

    def test_independent_assignment_chain_nests_widest_outermost(self):
        f = Assign(
            "m",
            Const(3),
            Assign(
                "n",
                Attr(Var("c"), "x_position"),
                AndF(
                    Compare("<=", Attr(Var("c"), "x_position"), Var("m")),
                    Compare("<=", Attr(Var("v"), "x_position"), Var("n")),
                ),
            ),
        )
        plan = plan_formula(f, bindings=BINDINGS)
        assert plan.root.op == PROJECT
        # The time-varying (wide) binding moves outermost; the constant
        # (width-1) binding nests innermost.
        assert plan.root.detail == "[n := c.x_position]"
        assert plan.root.children[0].detail == "[m := 3]"
        assert plan.root.reordered

    def test_dependent_assignment_chain_is_never_reordered(self):
        f = Assign(
            "m",
            Const(3),
            Assign(
                "n",
                Var("m"),  # depends on the outer binding
                Compare("<=", Attr(Var("c"), "x_position"), Var("n")),
            ),
        )
        plan = plan_formula(f, bindings=BINDINGS)
        assert plan.root.detail == "[m := 3]"
        assert not plan.reordered

    def test_order_conjuncts_unit(self):
        from repro.ftl.analysis.cost import CostEstimate

        def est(tuples, cost, sel):
            return CostEstimate(
                tuples=tuples, intervals=1.0, cost=cost, selectivity=sel
            )

        widths = {"a": 10.0, "b": 10.0, "c": 10.0}
        entries = [
            (frozenset({"a", "b"}), est(50.0, 500.0, 0.5)),
            (frozenset({"b", "c"}), est(50.0, 500.0, 0.5)),
            (frozenset({"a"}), est(1.0, 10.0, 0.1)),
        ]
        assert order_conjuncts(entries, widths) == [2, 0, 1]

    def test_connected_components_order_independent(self):
        sets = [frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})]
        assert len(connected_components(sets)) == 1
        assert len(connected_components(sets[:2])) == 2
        # Variable-free conjuncts never split the graph.
        assert len(connected_components([frozenset(), frozenset({"a"})])) == 1


# ---------------------------------------------------------------------------
# Diagnostics FTL601-605
# ---------------------------------------------------------------------------


class TestPlanDiagnostics:
    def test_ftl601_cross_product(self):
        plan = plan_of("INSIDE(c, P) AND INSIDE(v, P)")
        assert codes(plan) == ["FTL601"]

    def test_ftl601_not_fired_when_connected(self):
        plan = plan_of("INSIDE(c, P) AND DIST(c, v) <= 4")
        assert "FTL601" not in codes(plan)

    def test_ftl601_ignores_variable_free_conjuncts(self):
        plan = plan_of("INSIDE(c, P) AND time <= 5")
        assert "FTL601" not in codes(plan)

    def test_ftl602_multi_variable_negation(self):
        plan = plan_of("NOT DIST(c, v) <= 4")
        assert codes(plan) == ["FTL602"]
        assert "domain product" in plan.diagnostics[0].message

    def test_ftl602_single_variable_negation_clean(self):
        plan = plan_of("NOT INSIDE(c, P)")
        assert codes(plan) == []

    def test_ftl603_unbounded_until_with_extras(self):
        plan = plan_of("DIST(c, v) <= 9 UNTIL INSIDE(c, P)")
        assert codes(plan) == ["FTL603"]
        assert "'v'" in plan.diagnostics[0].message

    def test_ftl603_not_fired_when_bounded_or_covered(self):
        assert codes(
            plan_of("DIST(c, v) <= 9 UNTIL WITHIN 5 INSIDE(c, P)")
        ) == []
        assert codes(plan_of("INSIDE(c, P) UNTIL DIST(c, v) <= 9")) == []

    def test_ftl604_shared_subformula(self):
        plan = plan_of(
            "(INSIDE(c, P) AND c.price <= 3) OR "
            "(INSIDE(c, P) AND c.price >= 9)"
        )
        assert "FTL604" in codes(plan)
        assert len(plan.shared_ids) == 1
        shared = [n for _p, n in plan.nodes_with_paths() if n.shared]
        assert [str(n.formula) for n in shared] == ["INSIDE(c, P)"]

    def test_shared_nodes_disabled_inside_assignment_scope(self):
        # v <= m is scope-dependent (m is assignment-bound): equal
        # occurrences in different scopes must NOT be consed together.
        f = parse_formula(
            "([m := c.x_position] v.x_position <= m) AND "
            "([m := c.y_position] v.x_position <= m)"
        )
        plan = plan_formula(f, bindings=BINDINGS)
        assert plan.shared_ids == frozenset()

    def test_ftl605_quarantined_rule(self, monkeypatch):
        import repro.ftl.rewrite as rewrite

        monkeypatch.setattr(
            rewrite, "QUARANTINED", frozenset({"eventually-within"})
        )
        plan = plan_of("EVENTUALLY WITHIN 8 INSIDE(c, P)")
        assert codes(plan) == ["FTL605"]
        # expand() leaves the quarantined operator in place.
        f = parse_formula("EVENTUALLY WITHIN 8 INSIDE(c, P)")
        assert isinstance(rewrite.expand(f), EventuallyWithin)

    def test_quarantine_is_empty(self):
        """The soundness gate passes for every rule: nothing quarantined."""
        from repro.ftl import quarantined_rules

        assert quarantined_rules() == frozenset()

    def test_diagnostics_flow_into_analyzer(self):
        analysis = parse_query(
            "RETRIEVE c FROM cars c, vans v "
            "WHERE INSIDE(c, P) AND INSIDE(v, P)"
        ).analyze()
        assert "FTL601" in {d.code for d in analysis.diagnostics}


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


class TestRender:
    def test_render_shows_markers_and_estimates(self):
        plan = plan_of(
            "DIST(c, v) <= 4 AND DIST(v, w) <= 4 AND c.price <= 3"
        )
        text = plan.render()
        assert "[reordered]" in text
        assert "intersect-join" in text
        assert "cost" in text and "rows" in text

    def test_render_marks_repeat_occurrences_of_shared_nodes(self):
        plan = plan_of("INSIDE(c, P) OR INSIDE(c, P)")
        text = plan.render()
        assert "[shared]" in text
        assert "(shared)" in text

    def test_to_json_round_trips_through_json(self):
        import json

        plan = plan_of("EVENTUALLY WITHIN 8 INSIDE(c, P)")
        blob = json.dumps(plan.to_json())
        data = json.loads(blob)
        assert data["root"]["op"] == INTERVAL_MAP
        assert data["total"]["cost"] > 0


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_class_sizes_scale_estimates(self):
        small = plan_of(
            "DIST(c, v) <= 4", model=CostModel(default_class_size=4)
        )
        large = plan_of(
            "DIST(c, v) <= 4", model=CostModel(default_class_size=40)
        )
        assert large.total.tuples > small.total.tuples
        assert large.total.cost > small.total.cost

    def test_kinetic_atoms_cheaper_than_per_tick(self):
        kinetic = plan_of("c.x_position <= 5")
        per_tick = plan_of("c.fuel <= 5", bindings={"c": "cars"})
        # fuel is not a kinetic-solvable spatial attribute under the
        # schema-less model; x_position is.
        assert kinetic.total.cost <= per_tick.total.cost

    def test_equality_more_selective_than_inequality(self):
        eq = plan_of("c.x_position = 5")
        ne = plan_of("c.x_position != 5")
        assert eq.total.selectivity < ne.total.selectivity

    def test_plan_rejects_unsupported_nodes(self):
        class Bogus(Compare):
            pass

        f = OrF(Inside(Var("c"), "P"), Inside(Var("c"), "P"))
        object.__setattr__(f, "left", 3)  # corrupt to a non-formula
        with pytest.raises((FtlSemanticsError, AttributeError, TypeError)):
            plan_formula(f, bindings=BINDINGS)


# ---------------------------------------------------------------------------
# CompiledQuery surface: .plan, .estimates, drift
# ---------------------------------------------------------------------------


def build_db_with_vans() -> MostDatabase:
    db = MostDatabase()
    db.create_class(
        ObjectClass("cars", static_attributes=("price",), spatial_dimensions=2)
    )
    db.create_class(ObjectClass("vans", spatial_dimensions=2))
    db.define_region("P", Polygon.rectangle(0, 0, 9, 9))
    for i, x in enumerate((-4.0, 2.0, 7.0)):
        db.add_moving_object(
            "cars", f"c{i}", Point(x, 1.0), Point(1.0, 0.0),
            static={"price": 30.0 * (i + 1)},
        )
    for i, x in enumerate((0.0, 5.0)):
        db.add_moving_object(
            "vans", f"v{i}", Point(x, 2.0), Point(-1.0, 0.0)
        )
    return db


class TestCompiledQuery:
    TEXT = (
        "RETRIEVE c FROM cars c, vans v "
        "WHERE DIST(c, v) <= 6 AND c.price <= 70"
    )

    def test_compile_attaches_plan_and_estimates(self):
        db = build_db_with_vans()
        compiled = compile_query(self.TEXT, schema=db)
        assert compiled.plan is not None
        assert compiled.plan.reordered
        assert "root" in compiled.estimates
        assert compiled.estimates["root"].cost > 0

    def test_record_relations_populates_drift(self):
        db = build_db_with_vans()
        compiled = compile_query(self.TEXT, schema=db)
        assert compiled.drift is None
        result = compiled.evaluate(
            FutureHistory(db), 10, record_relations=True
        )
        plain = compiled.query.evaluate(FutureHistory(db), 10)
        assert dict(result.rows()) == dict(plain.rows())
        assert compiled.drift, "drift report empty"
        for row in compiled.drift:
            assert set(row) >= {
                "path", "op", "formula",
                "estimated_tuples", "observed_tuples", "ratio",
            }
            assert row["observed_tuples"] >= 0
        root = next(r for r in compiled.drift if r["path"] == "root")
        assert root["ratio"] is None or root["ratio"] > 0

    def test_record_relations_requires_interval_method(self):
        db = build_db_with_vans()
        compiled = compile_query(self.TEXT, schema=db)
        with pytest.raises(FtlSemanticsError):
            compiled.evaluate(
                FutureHistory(db), 10, method="naive", record_relations=True
            )

    def test_plan_for_uses_history_populations(self):
        db = build_db_with_vans()
        query = parse_query(self.TEXT)
        plan = query.plan_for(history=FutureHistory(db), horizon=10)
        assert plan.model.class_sizes == {"cars": 3, "vans": 2}
        assert plan.model.horizon == 10


# ---------------------------------------------------------------------------
# Property: lowering is total on analyzer-accepted formulas
# ---------------------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(formula=formulas(2))
def test_plan_lowering_total_on_accepted_formulas(formula):
    """Every formula the analyzer accepts lowers to a plan whose node set
    covers every subformula occurrence and whose ordered tree evaluates
    identically (spot-checked in test_plan_differential)."""
    from repro.ftl import analyze_formula

    db = build_db()
    bindings = {"o": "cars", "n": "cars"}
    assert analyze_formula(formula, bindings, schema=db).ok
    plan = plan_formula(formula, bindings=bindings)
    nodes = list(plan.nodes_with_paths())
    assert nodes
    assert plan.root.estimate.cost > 0
    # Re-lowering the ordered tree is a fixpoint: already-ordered plans
    # do not reorder again.
    replan = plan_formula(plan.ordered_where, bindings=bindings)
    assert str(replan.ordered_where) == str(plan.ordered_where)
