"""Golden-file tests for analyzer diagnostics.

Each ``golden/*.ftl`` fixture has a ``*.expected.json`` sibling listing
the diagnostics the linter must produce — rule code, severity and the
line/column of the source span.  The golden files pin the analyzer's
user-visible contract: a rule firing on a new subformula, drifting to a
different span, or changing severity fails here.

To regenerate after an intentional change::

    PYTHONPATH=src python tests/ftl/test_golden_diagnostics.py --update
"""

import json
import sys
from pathlib import Path

import pytest

from repro.ftl.lint import lint_file

GOLDEN_DIR = Path(__file__).parent / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.ftl"))


def summarize(report: dict) -> list[dict]:
    """Reduce a lint report to the golden shape (code/severity/span)."""
    return [
        {
            "code": d["code"],
            "severity": d["severity"],
            "line": d.get("span", {}).get("line"),
            "col": d.get("span", {}).get("col"),
        }
        for d in report["diagnostics"]
    ]


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[p.stem for p in FIXTURES]
)
def test_golden_diagnostics(fixture):
    expected = json.loads(
        fixture.with_suffix(".expected.json").read_text()
    )
    actual = summarize(lint_file(str(fixture)))
    assert actual == expected


def test_fixtures_cover_all_severities():
    """The fixture set exercises errors, warnings and infos."""
    seen = set()
    for fixture in FIXTURES:
        for d in summarize(lint_file(str(fixture))):
            seen.add(d["severity"])
    assert seen == {"error", "warning", "info"}


def test_every_diagnostic_is_spanned():
    """Diagnostics from parsed sources always carry a source position."""
    for fixture in FIXTURES:
        for d in summarize(lint_file(str(fixture))):
            assert d["line"] is not None, f"{fixture.name}: {d}"
            assert d["col"] is not None, f"{fixture.name}: {d}"


def _update() -> None:
    for fixture in FIXTURES:
        expected = summarize(lint_file(str(fixture)))
        fixture.with_suffix(".expected.json").write_text(
            json.dumps(expected, indent=2) + "\n"
        )
        print(f"updated {fixture.with_suffix('.expected.json')}")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
