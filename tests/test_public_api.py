"""Meta-tests over the public API surface.

Guards the documentation deliverable: every ``__all__`` export must
resolve, and every public class/function must carry a docstring.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.temporal",
    "repro.motion",
    "repro.spatial",
    "repro.core",
    "repro.ftl",
    "repro.dbms",
    "repro.dbms.sql",
    "repro.dbms.indexes",
    "repro.index",
    "repro.bridge",
    "repro.distributed",
    "repro.workloads",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.{export} does not resolve"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_items_documented(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        item = getattr(module, export)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert inspect.getdoc(item), f"{name}.{export} lacks a docstring"
            if inspect.isclass(item):
                for attr_name, attr in vars(item).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr):
                        assert inspect.getdoc(attr), (
                            f"{name}.{export}.{attr_name} lacks a docstring"
                        )


def test_version():
    import repro

    assert repro.__version__ == "0.1.0"


def test_error_hierarchy():
    from repro import ReproError
    from repro import errors

    subclasses = [
        errors.TemporalError,
        errors.SpatialError,
        errors.MotionError,
        errors.SchemaError,
        errors.SqlError,
        errors.FtlSyntaxError,
        errors.FtlSemanticsError,
        errors.IndexError_,
        errors.DistributedError,
        errors.QueryError,
    ]
    for cls in subclasses:
        assert issubclass(cls, ReproError)
        assert cls.__doc__
