"""Epoch-loop server tests: ingest, backpressure, fan-out, crash-restart."""

import asyncio

import pytest

from repro.core.database import MostDatabase
from repro.core.objects import ObjectClass
from repro.distributed.network import FaultPlan, SimNetwork
from repro.distributed.node import MobileNode
from repro.distributed.updates import MotionReporter
from repro.geometry import Point
from repro.motion import linear_moving_point
from repro.server import (
    BACKPRESSURE,
    NORMAL,
    SHEDDING,
    BatchingReporter,
    CQServer,
    IngestBatch,
    SubscriberClient,
    SubscribeMsg,
)
from repro.server.protocol import INGEST_ACK, INGEST_BATCH, INGEST_BUSY
from repro.server.transport import ProtocolNode
from repro.temporal import SimulationClock

QUERY = "RETRIEVE v FROM trackers v, beacons b WHERE DIST(v, b) <= 60"


def build_world(n_trackers=2, **server_kw):
    clock = SimulationClock()
    db = MostDatabase(clock)
    network = SimNetwork(clock, faults=FaultPlan(seed=0))
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    server = CQServer(db, network, **server_kw)
    reporters = []
    for i in range(n_trackers):
        oid = f"tracker-{i}"
        db.add_moving_object("trackers", oid, Point(10.0 * i, 0.0), Point(1.0, 0.0))
        db.track(oid)
        node = MobileNode(
            oid, network, linear_moving_point(Point(10.0 * i, 0.0), Point(1.0, 0.0))
        )
        reporters.append(BatchingReporter(node, object_id=oid))
    return db, network, server, reporters


def drive(server, epochs):
    asyncio.run(server.serve(epochs=epochs))


class TestSubscription:
    def test_snapshot_resync_then_truth(self):
        db, network, server, reporters = build_world()
        client = SubscriberClient(network, "c1", QUERY, horizon=200)
        drive(server, 6)
        assert client.subscribed
        assert client.snapshots_received >= 1
        rq = next(iter(server.registry.queries.values()))
        assert client.display_at() == rq.cq.current()

    def test_unknown_class_refused_with_schema_error(self):
        db, network, server, _ = build_world()
        bad = SubscriberClient(
            network, "c1", "RETRIEVE g FROM ghosts g WHERE DIST(g, g) <= 1",
            horizon=50,
        )
        drive(server, 4)
        assert bad.error is not None
        assert "SchemaError" in bad.error
        assert "ghosts" in bad.error
        assert not bad.subscribed
        assert server.registry.queries == {}

    def test_identical_subscriptions_share_one_query(self):
        db, network, server, _ = build_world()
        a = SubscriberClient(network, "c1", QUERY, horizon=200)
        b = SubscriberClient(network, "c2", QUERY, horizon=200)
        drive(server, 5)
        assert a.subscribed and b.subscribed
        assert len(server.registry.queries) == 1
        assert server.metrics.subscriptions == 2

    def test_updates_flow_to_display(self):
        db, network, server, reporters = build_world(n_trackers=1)
        client = SubscriberClient(network, "c1", QUERY, horizon=200)
        drive(server, 4)
        # Send the tracker far away; the display must drop it.
        reporters[0].report(Point(50.0, 0.0), position=Point(500.0, 0.0))
        drive(server, 10)
        assert client.display_at() == set()
        rq = next(iter(server.registry.queries.values()))
        assert rq.cq.current() == set()


class TestBackpressure:
    def _flood_world(self, capacity, batch_limit):
        clock = SimulationClock()
        db = MostDatabase(clock)
        network = SimNetwork(clock)  # synchronous: sends deliver inline
        db.create_class(ObjectClass("trackers", spatial_dimensions=2))
        db.add_moving_object("trackers", "t0", Point(0.0, 0.0), Point(1.0, 0.0))
        db.track("t0")
        server = CQServer(
            db, network, inbox_capacity=capacity, batch_limit=batch_limit
        )
        sender = ProtocolNode("r0", network)
        replies = []
        sender.on_kind(INGEST_ACK, lambda m: replies.append(("ack", m.payload)))
        sender.on_kind(INGEST_BUSY, lambda m: replies.append(("busy", m.payload)))
        return db, server, sender, replies

    def _batch(self, batch_seq, n, start_seq=0):
        from repro.distributed.updates import MotionUpdate

        return IngestBatch(
            "r0",
            batch_seq,
            tuple(
                MotionUpdate("t0", start_seq + i, 0, Point(0.0, 0.0), Point(1.0, 0.0))
                for i in range(n)
            ),
        )

    def test_full_inbox_refuses_batch_explicitly(self):
        db, server, sender, replies = self._flood_world(capacity=6, batch_limit=64)
        assert sender.send("cq-server", INGEST_BATCH, self._batch(0, 4))
        sender.send("cq-server", INGEST_BATCH, self._batch(1, 4, start_seq=4))
        # Second batch exceeds headroom: refused atomically, nothing dropped.
        assert server.inbox_depth == 4
        kinds = [k for k, _ in replies]
        assert kinds == ["busy"]
        assert replies[0][1].batch_seq == 1
        assert replies[0][1].retry_after >= 1
        assert server.metrics.busy_signals == 1

    def test_inbox_never_exceeds_capacity(self):
        db, server, sender, replies = self._flood_world(capacity=8, batch_limit=4)
        seq = 0
        for b in range(12):
            sender.send("cq-server", INGEST_BATCH, self._batch(b, 3, start_seq=seq))
            seq += 3
        assert server.metrics.inbox_high_water <= 8
        assert server.inbox_depth <= 8

    def test_credits_vanish_above_high_watermark(self):
        db, server, sender, replies = self._flood_world(capacity=8, batch_limit=64)
        sender.send("cq-server", INGEST_BATCH, self._batch(0, 7))
        assert server._credits() == 0  # 7/8 >= 0.75 watermark
        drive(server, 1)
        acks = [p for k, p in replies if k == "ack"]
        assert acks and acks[-1].credits >= 1  # drained: allowance restored

    def test_shedding_level_under_backlog(self):
        db, server, sender, replies = self._flood_world(capacity=12, batch_limit=2)
        sender.send("cq-server", INGEST_BATCH, self._batch(0, 2))
        sender.send("cq-server", INGEST_BATCH, self._batch(1, 2, 2))
        sender.send("cq-server", INGEST_BATCH, self._batch(2, 2, 4))
        drive(server, 1)
        assert server.level == SHEDDING  # backlog left after the batch limit
        drive(server, 4)
        assert server.level == NORMAL
        assert server.metrics.epochs_at_level[SHEDDING] >= 1

    def test_ladder_level_names(self):
        assert {NORMAL, BACKPRESSURE, SHEDDING} == {
            "normal", "backpressure", "shedding"
        }


class TestHorizonAttribution:
    """Clean-query skips are credited to the gate that earned them:
    the temporal-validity gate when covered updates were dropped beyond
    the horizon since the last round, the dependency gate otherwise."""

    def test_clean_skips_attributed_to_their_gate(self):
        db, network, server, _ = build_world()
        rq = server.registry.register(
            SubscribeMsg(client_id="c0", text=QUERY, horizon=100)
        )
        # Round 1: no update arrived at all — the plain dependency gate.
        server.registry.refresh_round(now=0)
        assert server.metrics.deps_skipped_refreshes == 1
        assert server.metrics.horizon_skipped_refreshes == 0
        # Heartbeat: re-issues the exact current motion law, which the
        # validity gate proves a no-op inside the query window.
        db.update_motion(
            "tracker-0", Point(1.0, 0.0), position=Point(0.0, 0.0)
        )
        assert rq.cq.horizon_skipped > 0
        server.registry.refresh_round(now=0)
        assert server.metrics.horizon_skipped_refreshes == 1
        assert server.metrics.deps_skipped_refreshes == 1
        # A genuinely new motion vector dirties and refreshes: neither
        # skip counter moves.
        refreshes_before = server.metrics.refreshes
        db.update_motion("tracker-0", Point(2.0, 0.0))
        server.registry.refresh_round(now=0)
        assert server.metrics.refreshes == refreshes_before + 1
        assert server.metrics.horizon_skipped_refreshes == 1
        assert server.metrics.deps_skipped_refreshes == 1

    def test_metrics_export_horizon_counter(self):
        from repro.server.metrics import ServerMetrics

        assert ServerMetrics().to_dict()["horizon_skipped_refreshes"] == 0

    def test_rebuild_reanchors_the_attribution_baseline(self):
        db, network, server, _ = build_world()
        rq = server.registry.register(
            SubscribeMsg(client_id="c0", text=QUERY, horizon=100)
        )
        db.update_motion(
            "tracker-0", Point(1.0, 0.0), position=Point(0.0, 0.0)
        )
        assert rq.cq.horizon_skipped > 0
        server.registry.crash()
        server.registry.rebuild()
        # The rebuilt query starts with a fresh skip counter; without
        # re-anchoring, the next clean round would be mis-credited.
        server.registry.refresh_round(now=0)
        assert server.metrics.horizon_skipped_refreshes == 0
        assert server.metrics.deps_skipped_refreshes == 1


class TestLegacyIngest:
    def test_motion_reporter_singles_are_served_and_acked(self):
        db, network, server, _ = build_world(n_trackers=0)
        db.add_moving_object("trackers", "m0", Point(5.0, 0.0), Point(0.0, 0.0))
        db.track("m0")
        node = MobileNode(
            "m0", network, linear_moving_point(Point(5.0, 0.0), Point(0.0, 0.0))
        )
        reporter = MotionReporter(node, server_id="cq-server", object_id="m0")
        drive(server, 2)
        reporter.report(Point(2.0, 0.0))
        drive(server, 6)
        assert reporter.in_flight == 0  # acked on the PR 2 ack kind
        assert server.metrics.updates_applied >= 1

    def test_malformed_update_rejected_not_fatal(self):
        db, network, server, _ = build_world(n_trackers=0)
        sender = ProtocolNode("rx", network)
        from repro.distributed.updates import UPDATE_KIND, MotionUpdate

        sender.send(
            "cq-server",
            UPDATE_KIND,
            MotionUpdate("no-such-object", 0, 0, Point(0.0, 0.0), Point(0.0, 0.0)),
        )
        drive(server, 3)  # must not raise
        assert server.metrics.updates_rejected >= 1


class TestCrashRestart:
    def test_restart_resyncs_by_snapshot_with_new_incarnation(self):
        db, network, server, reporters = build_world(n_trackers=1)
        client = SubscriberClient(network, "c1", QUERY, horizon=300)
        drive(server, 5)
        snaps_before = client.snapshots_received
        server.crash()
        reporters[0].report(Point(-1.0, 0.0))  # retried across the outage
        drive(server, 3)
        assert server.crashed
        server.restart()
        drive(server, 20)
        assert server.incarnation == 2
        assert client.incarnation == 2
        assert client.snapshots_received > snaps_before
        assert server.metrics.crashes == 1 and server.metrics.restarts == 1
        assert reporters[0].drained()  # the update survived the crash
        rq = next(iter(server.registry.queries.values()))
        assert client.display_at() == rq.cq.current()

    def test_registry_table_is_durable_sessions_are_not(self):
        db, network, server, _ = build_world()
        SubscriberClient(network, "c1", QUERY, horizon=200)
        drive(server, 4)
        assert server.sessions
        server.crash()
        assert server.sessions == {}
        assert server.registry.records  # durable subscription table
        server.restart()
        assert server.sessions  # rebuilt from the table


class TestLiveness:
    def test_silent_client_pauses_sends_then_resumes(self):
        db, network, server, reporters = build_world(n_trackers=1)
        client = SubscriberClient(network, "c1", QUERY, horizon=300)
        drive(server, 5)
        network.set_disconnections("c1", [(6, 20)])
        drive(server, 24)  # outage exceeds the heartbeat timeout
        assert server.metrics.disconnects >= 1
        assert server.metrics.reconnects >= 1
        drive(server, 10)
        rq = next(iter(server.registry.queries.values()))
        assert client.display_at() == rq.cq.current()
        session = next(iter(server.sessions.values()))
        assert session.connected


class TestShedding:
    def test_round_robin_budget_refreshes_all_eventually(self):
        db, network, server, _ = build_world()
        texts = [
            QUERY,
            QUERY.replace("60", "40"),
            QUERY.replace("60", "20"),
        ]
        for i, text in enumerate(texts):
            server.registry.register(
                SubscribeMsg(client_id=f"c{i}", text=text, horizon=100)
            )
        for epoch in range(3):
            # Dirty every query (a position update is in every DIST
            # query's read-set) so the budget, not dependency pruning,
            # decides who refreshes this round.  The half-tick position
            # jump breaks the motion law, so the temporal-validity gate
            # cannot prove the update a no-op either.
            db.update_motion(
                "tracker-0",
                Point(1.0, 0.0),
                position=Point(float(epoch) + 0.5, 0.0),
            )
            server.registry.refresh_round(now=0, budget=1)
        assert server.metrics.refreshes == 3
        # Each round: 1 refreshed within budget; the other two dirty
        # queries are shed (they stay dirty and would refresh next).
        assert server.metrics.shed_refreshes == 6  # 2 skipped per round
