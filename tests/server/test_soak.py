"""Differential chaos soak: faulty run converges with a fault-free twin."""

import dataclasses

import pytest

from repro.server.soak import SoakConfig, run_soak, soak_sweep

pytestmark = pytest.mark.chaos

CONFIG = SoakConfig(seed=3, run_epochs=30, server_crash_at=10, server_restart_at=13)


@pytest.fixture(scope="module")
def result():
    return run_soak(CONFIG)


class TestSoak:
    def test_soak_passes_end_to_end(self, result):
        assert result.ok, result.summary()

    def test_every_client_converges_with_clean_twin(self, result):
        assert result.clients
        for outcome in result.clients:
            assert outcome.converged, outcome.client_id

    def test_clean_twin_matches_server_truth(self, result):
        assert result.truth_match

    def test_no_staleness_violations(self, result):
        assert result.staleness_violations == 0

    def test_chaos_actually_happened(self, result):
        # The soak is vacuous unless faults really fired and recovery
        # paths really ran.
        assert result.metrics["crashes"] == 1
        assert result.metrics["restarts"] == 1
        assert result.metrics["snapshots_sent"] > 0
        assert result.metrics["delta_retransmissions"] > 0
        assert any(c.resumes_sent > 0 for c in result.clients)

    def test_both_runs_drained(self, result):
        assert result.drained and result.clean_drained


def counters(metrics):
    """The deterministic slice of a metrics dict (drop wall-clock timings)."""
    return {
        k: v
        for k, v in metrics.items()
        if k not in ("refresh_latency", "epoch_latency")
    }


class TestDeterminism:
    def test_same_seed_reproduces_the_run(self):
        a = run_soak(CONFIG)
        b = run_soak(CONFIG)
        assert counters(a.metrics) == counters(b.metrics)
        assert [c.display for c in a.clients] == [c.display for c in b.clients]

    def test_different_seed_changes_the_run(self):
        other = dataclasses.replace(CONFIG, seed=CONFIG.seed + 1)
        assert run_soak(other).ok


class TestSweep:
    def test_short_sweep_all_ok(self):
        results = soak_sweep(seeds=range(2))
        assert all(r.ok for r in results), [r.summary() for r in results]
