"""Dependency-pruned refresh rounds at the subscription-registry layer.

An E14-style mixed-workload soak: position and attribute updates
interleave while the registry refreshes every epoch.  With the static
update-impact analysis in place, the registry must (a) skip refresh
work for queries no relevant update dirtied — counted in
``metrics.deps_skipped_refreshes`` — while (b) every served answer
stays tuple-for-tuple identical to an unpruned continuous query
maintained side by side.
"""

import random

from repro.core import ContinuousQuery, DynamicAttribute, MostDatabase, ObjectClass
from repro.ftl import parse_query
from repro.geometry import Point
from repro.server.metrics import ServerMetrics
from repro.server.protocol import SubscribeMsg
from repro.server.registry import SubscriptionRegistry
from repro.temporal import SimulationClock

POSITION_QUERY = (
    "RETRIEVE v FROM trackers v, beacons b WHERE DIST(v, b) <= 60"
)
BATTERY_QUERY = (
    "RETRIEVE v FROM trackers v WHERE EVENTUALLY WITHIN 10 v.battery < 20"
)
HORIZON = 400


def build_world(n_trackers: int = 3):
    clock = SimulationClock()
    db = MostDatabase(clock)
    db.create_class(
        ObjectClass(
            "trackers",
            dynamic_attributes=("battery",),
            spatial_dimensions=2,
        )
    )
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    for i in range(n_trackers):
        db.add_moving_object(
            "trackers",
            f"tracker-{i}",
            Point(10.0 * i, 0.0),
            Point(1.0, 0.0),
            dynamic_extra={"battery": DynamicAttribute.linear(80.0, -0.5)},
        )
    metrics = ServerMetrics()
    registry = SubscriptionRegistry(db, metrics)
    return db, registry, metrics


def register(registry, client_id, text):
    return registry.register(
        SubscribeMsg(client_id=client_id, text=text, horizon=HORIZON)
    )


class TestDepsRefreshRounds:
    def test_clean_queries_are_skipped_not_refreshed(self):
        db, registry, metrics = build_world()
        register(registry, "c1", POSITION_QUERY)
        register(registry, "c2", BATTERY_QUERY)
        registry.refresh_round(now=db.clock.now)
        assert metrics.refreshes == 0
        assert metrics.deps_skipped_refreshes == 2

    def test_kind_routed_refreshes(self):
        db, registry, metrics = build_world()
        register(registry, "c1", POSITION_QUERY)
        register(registry, "c2", BATTERY_QUERY)
        db.clock.tick()
        # A battery update dirties only the battery query.
        db.update_dynamic("tracker-0", "battery", value=10.0)
        refreshed = registry.refresh_round(now=db.clock.now)
        assert refreshed == 1
        assert metrics.deps_skipped_refreshes == 1
        db.clock.tick()
        # A motion update dirties only the position query.
        db.update_motion("tracker-0", Point(2.0, 0.0))
        refreshed = registry.refresh_round(now=db.clock.now)
        assert refreshed == 1
        assert metrics.deps_skipped_refreshes == 2

    def test_mixed_soak_converges_tuple_for_tuple(self):
        db, registry, metrics = build_world()
        rq_pos = register(registry, "c1", POSITION_QUERY)
        rq_bat = register(registry, "c2", BATTERY_QUERY)
        # Unpruned twins maintained outside the registry: they accept
        # every class-relevant update and refresh eagerly.
        twins = {}
        for key, text in (("pos", POSITION_QUERY), ("bat", BATTERY_QUERY)):
            cq = ContinuousQuery(db, parse_query(text), horizon=HORIZON)
            cq._deps = None
            twins[key] = cq

        rng = random.Random(42)
        epochs = 40
        for _ in range(epochs):
            db.clock.tick()
            roll = rng.random()
            tracker = f"tracker-{rng.randrange(3)}"
            if roll < 0.4:
                db.update_motion(
                    tracker,
                    Point(rng.uniform(-2, 2), rng.uniform(-2, 2)),
                    position=Point(rng.uniform(-50, 50), rng.uniform(-50, 50)),
                )
            elif roll < 0.8:
                db.update_dynamic(
                    tracker, "battery", value=rng.uniform(0.0, 100.0)
                )
            # else: a quiet epoch — nothing changed at all.
            registry.refresh_round(now=db.clock.now)
            assert rq_pos.cq.current() == twins["pos"].current()
            assert rq_bat.cq.current() == twins["bat"].current()

        # The mixed workload never dirtied both queries at once, so the
        # registry skipped a substantial share of the refresh work.
        assert metrics.deps_skipped_refreshes > 0
        assert metrics.refreshes < epochs * len(registry.queries)
        assert (
            metrics.refreshes + metrics.deps_skipped_refreshes
            == epochs * len(registry.queries)
        )

    def test_budget_not_consumed_by_clean_queries(self):
        db, registry, metrics = build_world()
        register(registry, "c1", POSITION_QUERY)
        register(registry, "c2", BATTERY_QUERY)
        register(registry, "c3", POSITION_QUERY.replace("60", "40"))
        db.clock.tick()
        db.update_motion("tracker-0", Point(2.0, 0.0))
        # Budget 1 with two dirty position queries and one clean battery
        # query: the clean one is skipped for free, one dirty refreshes,
        # one is shed.
        refreshed = registry.refresh_round(now=db.clock.now, budget=1)
        assert refreshed == 1
        assert metrics.deps_skipped_refreshes == 1
        assert metrics.shed_refreshes == 1

    def test_metrics_dict_exposes_deps_skips(self):
        _, _, metrics = build_world()
        metrics.deps_skipped_refreshes = 5
        assert metrics.to_dict()["deps_skipped_refreshes"] == 5
