"""Wire-protocol tests: identity semantics and the JSON codec."""

import pytest

from repro.distributed.updates import MotionUpdate
from repro.errors import DistributedError
from repro.geometry import Point
from repro.server.protocol import (
    DELTA,
    DELTA_ACK,
    HEARTBEAT,
    INGEST_ACK,
    INGEST_BATCH,
    INGEST_BUSY,
    RESUME,
    SUBSCRIBE,
    SUBSCRIBED,
    DeltaAck,
    DeltaMsg,
    HeartbeatMsg,
    IngestAck,
    IngestBatch,
    IngestBusy,
    ResumeMsg,
    SubscribedMsg,
    SubscribeMsg,
    WireTuple,
    decode_line,
    encode_line,
)


class TestWireTuple:
    def test_max_age_excluded_from_identity(self):
        a = WireTuple(("v",), 0.0, 5.0, ("v", "b"), max_age=1.0)
        b = WireTuple(("v",), 0.0, 5.0, ("v", "b"), max_age=9.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_interval_identity_distinguishes(self):
        a = WireTuple(("v",), 0.0, 5.0, ("v", "b"))
        b = WireTuple(("v",), 0.0, 6.0, ("v", "b"))
        assert a != b

    def test_active_at_is_closed(self):
        t = WireTuple(("v",), 2.0, 5.0, ("v",))
        assert t.active_at(2.0) and t.active_at(5.0)
        assert not t.active_at(1.9) and not t.active_at(5.1)


def _update(seq=0):
    return MotionUpdate(
        object_id="car-1",
        seq=seq,
        measured_at=3,
        position=Point(1.0, 2.0),
        velocity=Point(-1.0, 0.0),
    )


ROUND_TRIPS = [
    (INGEST_BATCH, IngestBatch("r1", 4, (_update(0), _update(1)))),
    (INGEST_ACK, IngestAck(4, (("car-1", 1),), credits=7)),
    (INGEST_BUSY, IngestBusy(4, retry_after=3)),
    (
        SUBSCRIBE,
        SubscribeMsg(
            client_id="c1",
            text="RETRIEVE o FROM cars o WHERE DIST(o, b) <= 5",
            horizon=100,
            policy="periodic",
            period=4,
            window=8,
            staleness_bound=6.0,
            have_seq=11,
            incarnation=2,
        ),
    ),
    (SUBSCRIBED, SubscribedMsg("c1", "q0", 2)),
    (SUBSCRIBED, SubscribedMsg("c1", "", 1, error="SchemaError: nope")),
    (
        DELTA,
        DeltaMsg(
            query_id="q0",
            incarnation=2,
            seq=9,
            aged_from=40,
            adds=(WireTuple(("v",), 1.0, 9.0, ("v", "b"), max_age=2.0),),
            retracts=(WireTuple(("w",), 0.0, 3.0, ("w", "b")),),
            snapshot=True,
        ),
    ),
    (DELTA_ACK, DeltaAck("c1", "q0", 2, 9, free_slots=3)),
    (RESUME, ResumeMsg("c1", "q0", 2, 9)),
    (HEARTBEAT, HeartbeatMsg("c1", 41, free_slots=None)),
]


class TestCodec:
    @pytest.mark.parametrize("kind,payload", ROUND_TRIPS)
    def test_round_trip(self, kind, payload):
        decoded_kind, decoded = decode_line(encode_line(kind, payload))
        assert decoded_kind == kind
        # Object ids / values are stringified on the wire; re-encode to
        # compare the canonical JSON forms instead of raw dataclasses.
        assert encode_line(decoded_kind, decoded) == encode_line(kind, payload)

    def test_garbage_raises(self):
        with pytest.raises(DistributedError):
            decode_line(b"not json\n")
        with pytest.raises(DistributedError):
            decode_line(b"[1, 2]\n")
        with pytest.raises(DistributedError):
            decode_line(b'{"kind": "no-such-kind"}\n')
