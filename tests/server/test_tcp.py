"""TCP transport smoke tests: the epoch loop over real sockets."""

import asyncio

import pytest

from repro.core.database import MostDatabase
from repro.core.objects import ObjectClass
from repro.geometry import Point
from repro.server.epoch import CQServer
from repro.server.protocol import (
    DELTA,
    DELTA_ACK,
    INGEST_BATCH,
    SUBSCRIBE,
    SUBSCRIBED,
    DeltaAck,
    IngestBatch,
    SubscribeMsg,
    decode_line,
    encode_line,
)
from repro.server.tcp import TcpTransport
from repro.distributed.updates import MotionUpdate

QUERY = "RETRIEVE v FROM trackers v, beacons b WHERE DIST(v, b) <= 60"


def make_server():
    db = MostDatabase()
    db.create_class(ObjectClass("trackers", spatial_dimensions=2))
    db.create_class(ObjectClass("beacons", spatial_dimensions=2))
    db.add_moving_object("beacons", "beacon", Point(0.0, 0.0))
    db.add_moving_object("trackers", "t0", Point(5.0, 0.0), Point(0.0, 0.0))
    db.track("t0")
    return CQServer(db)


async def _subscribe_and_collect(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        encode_line(
            SUBSCRIBE,
            SubscribeMsg(client_id="c1", text=QUERY, horizon=100),
        )
    )
    await writer.drain()
    got = {"subscribed": None, "deltas": []}
    try:
        while len(got["deltas"]) < 1:
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if not line:
                break
            kind, payload = decode_line(line)
            if kind == SUBSCRIBED:
                got["subscribed"] = payload
            elif kind == DELTA:
                got["deltas"].append(payload)
                writer.write(
                    encode_line(
                        DELTA_ACK,
                        DeltaAck(
                            "c1", payload.query_id, payload.incarnation,
                            payload.seq,
                        ),
                    )
                )
                await writer.drain()
    finally:
        writer.close()
    return got


async def _run_smoke():
    server = make_server()
    transport = TcpTransport(server)
    try:
        await transport.start()
    except OSError:
        pytest.skip("cannot bind a loopback socket in this environment")
    try:
        client = asyncio.create_task(_subscribe_and_collect(transport.port))
        # Feed one batch over a second connection while epochs run.
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", transport.port
        )
        writer.write(
            encode_line(
                INGEST_BATCH,
                IngestBatch(
                    "r0",
                    0,
                    (
                        MotionUpdate(
                            "t0", 0, 0, Point(3.0, 0.0), Point(0.0, 0.0)
                        ),
                    ),
                ),
            )
        )
        await writer.drain()
        serve = asyncio.create_task(server.serve(epochs=20, interval=0.01))
        got = await asyncio.wait_for(client, timeout=10.0)
        await serve
        writer.close()
        return server, got
    finally:
        await transport.stop()


class TestTcpSmoke:
    def test_subscribe_snapshot_and_ingest_over_sockets(self):
        server, got = asyncio.run(_run_smoke())
        assert got["subscribed"] is not None and not got["subscribed"].error
        assert got["deltas"] and got["deltas"][0].snapshot
        values = {t.values[0] for t in got["deltas"][0].adds}
        assert values == {"t0"}
        assert server.metrics.updates_applied >= 1

    def test_malformed_line_drops_connection_not_server(self):
        async def run():
            server = make_server()
            transport = TcpTransport(server)
            try:
                await transport.start()
            except OSError:
                pytest.skip("cannot bind a loopback socket")
            try:
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", transport.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                await server.serve(epochs=3, interval=0.01)
                return transport.bad_lines
            finally:
                await transport.stop()

        assert asyncio.run(run()) == 1
