"""ClientSession unit tests: reliable delivery, replay, policy pacing."""

import pytest

from repro.distributed.backoff import RetrySchedule
from repro.errors import DistributedError
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    DeltaAck,
    HeartbeatMsg,
    ResumeMsg,
    WireTuple,
)
from repro.server.registry import AnswerState, SubscriberRecord
from repro.server.session import ClientSession, make_policy


def record(policy="immediate", period=1, window=None, bound=None):
    return SubscriberRecord(
        client_id="c1",
        query_id="q0",
        policy=policy,
        period=period,
        window=window,
        staleness_bound=bound,
    )


def state(tuples, computed_at=0):
    wire = tuple(
        WireTuple(values=(v,), begin=b, end=e, support=(v, "beacon"))
        for v, b, e in tuples
    )
    return AnswerState(
        computed_at=computed_at,
        tuples=wire,
        keys=frozenset(t.key() for t in wire),
    )


class Collector:
    def __init__(self):
        self.sent = []

    def __call__(self, dst, kind, payload, size):
        self.sent.append((dst, kind, payload))
        return True

    def deltas(self):
        return [p for _, k, p in self.sent if k == "cq-delta"]


def build(policy="immediate", window=None, schedule=None, max_log=256):
    out = Collector()
    session = ClientSession(
        record(policy=policy, window=window),
        send=out,
        metrics=ServerMetrics(),
        incarnation=1,
        now=0,
        schedule=schedule or RetrySchedule(base=2, factor=2, cap=8, jitter=0.0),
        max_log=max_log,
    )
    return session, out


class TestDelivery:
    def test_first_step_is_a_snapshot(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        (msg,) = out.deltas()
        assert msg.snapshot and msg.seq == 1
        assert [t.values for t in msg.adds] == [("a",)]

    def test_seqs_are_monotonic_and_acks_prune_the_log(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        session.step(1, state([("a", 0.0, 10.0), ("b", 1.0, 9.0)]))
        seqs = [m.seq for m in out.deltas()]
        assert seqs == [1, 2]
        assert session.unacked == 2
        session.on_ack(DeltaAck("c1", "q0", 1, 2), now=2)
        assert session.unacked == 0 and session.acked_through == 2

    def test_answer_shrink_sends_retract(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0), ("b", 0.0, 10.0)]))
        session.on_ack(DeltaAck("c1", "q0", 1, 1), now=1)
        session.step(1, state([("a", 0.0, 10.0)]))
        msg = out.deltas()[-1]
        assert [t.values for t in msg.retracts] == [("b",)]
        assert msg.adds == ()

    def test_expired_tuples_drop_silently(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 3.0)]))
        session.on_ack(DeltaAck("c1", "q0", 1, 1), now=1)
        session.step(5, state([]))  # end 3 < now 5: the client evicted it
        assert len(out.deltas()) == 1  # no retract message needed
        assert session.drained()

    def test_unacked_deltas_retransmit_with_backoff(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        assert len(out.deltas()) == 1
        session.step(1, state([("a", 0.0, 10.0)]))  # not due yet (base 2)
        assert len(out.deltas()) == 1
        session.step(2, state([("a", 0.0, 10.0)]))  # due: retransmit
        assert len(out.deltas()) == 2
        assert session.metrics.delta_retransmissions == 1
        # Second retry backs off multiplicatively (2 * 2 = 4 ticks).
        session.step(5, state([("a", 0.0, 10.0)]))
        assert len(out.deltas()) == 2
        session.step(6, state([("a", 0.0, 10.0)]))
        assert len(out.deltas()) == 3

    def test_stale_incarnation_ack_ignored(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        session.on_ack(DeltaAck("c1", "q0", incarnation=0, seq=1), now=1)
        assert session.unacked == 1


class TestResume:
    def test_resume_replays_logged_deltas(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        session.step(1, state([("a", 0.0, 10.0), ("b", 1.0, 9.0)]))
        n = len(out.deltas())
        session.on_resume(ResumeMsg("c1", "q0", 1, have_seq=1), now=2)
        session.step(2, state([("a", 0.0, 10.0), ("b", 1.0, 9.0)]))
        replayed = out.deltas()[n:]
        assert [m.seq for m in replayed] == [2]

    def test_resume_behind_pruned_log_forces_snapshot(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        session.on_ack(DeltaAck("c1", "q0", 1, 1), now=1)  # seq 1 pruned
        session.step(1, state([("a", 0.0, 10.0), ("b", 1.0, 9.0)]))  # seq 2
        session.on_ack(DeltaAck("c1", "q0", 1, 2), now=2)
        session.step(2, state([("a", 0.0, 10.0), ("b", 1.0, 9.0), ("c", 2.0, 8.0)]))
        # Client claims it only has seq 1; 2 is gone from the log.
        session.on_resume(ResumeMsg("c1", "q0", 1, have_seq=1), now=3)
        assert session.needs_snapshot
        session.step(3, state([("c", 2.0, 8.0)]))
        assert out.deltas()[-1].snapshot

    def test_log_overflow_degrades_to_snapshot(self):
        session, out = build(max_log=2)
        for i in range(4):
            session.step(
                i, state([(f"v{j}", float(j), 50.0) for j in range(i + 1)])
            )
        assert session.needs_snapshot or any(
            m.snapshot for m in out.deltas()[1:]
        )

    def test_wrong_incarnation_resume_forces_snapshot(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        session.on_resume(ResumeMsg("c1", "q0", incarnation=0, have_seq=0), now=1)
        assert session.needs_snapshot


class TestLiveness:
    def test_heartbeat_timeout_disconnects_and_touch_reconnects(self):
        session, out = build()
        session.step(0, state([("a", 0.0, 10.0)]))
        session.check_liveness(9)  # default timeout 8, last_heard 0
        assert not session.connected
        n = len(out.deltas())
        session.step(10, state([("a", 0.0, 10.0), ("b", 0.0, 9.0)]))
        assert len(out.deltas()) == n  # no sends while disconnected
        session.on_heartbeat(HeartbeatMsg("c1", 11), now=11)
        assert session.connected
        assert session.metrics.disconnects == 1
        assert session.metrics.reconnects == 1


class TestPolicyPacing:
    def test_delayed_policy_holds_future_tuples(self):
        session, out = build(policy="delayed")
        session.step(0, state([("now", 0.0, 10.0), ("later", 6.0, 12.0)]))
        snap = out.deltas()[0]
        assert snap.snapshot
        assert [t.values for t in snap.adds] == [("now",)]
        session.on_ack(DeltaAck("c1", "q0", 1, 1), now=1)
        session.step(3, state([("now", 0.0, 10.0), ("later", 6.0, 12.0)]))
        assert len(out.deltas()) == 1  # begin 6 still in the future
        session.step(6, state([("now", 0.0, 10.0), ("later", 6.0, 12.0)]))
        assert [t.values for t in out.deltas()[-1].adds] == [("later",)]

    def test_window_limits_tuples_per_delta(self):
        session, out = build(window=2)
        session.step(
            0, state([(f"v{i}", 0.0, 10.0) for i in range(5)])
        )
        first = out.deltas()[0]
        assert len(first.adds) == 2  # the advertised window caps each send
        session.on_ack(DeltaAck("c1", "q0", 1, 1, free_slots=2), now=1)
        session.step(1, state([(f"v{i}", 0.0, 10.0) for i in range(5)]))
        assert len(out.deltas()[-1].adds) == 2

    def test_zero_free_slots_sends_nothing(self):
        session, out = build(window=4)
        session.step(0, state([("a", 0.0, 10.0)]))
        session.on_ack(DeltaAck("c1", "q0", 1, 1, free_slots=0), now=1)
        session.step(1, state([("a", 0.0, 10.0), ("b", 0.0, 10.0)]))
        assert len(out.deltas()) == 1  # window exhausted: hold the delta


class TestMakePolicy:
    def test_known_policies(self):
        assert make_policy("immediate").__class__.__name__ == "ImmediatePolicy"
        assert make_policy("delayed").__class__.__name__ == "DelayedPolicy"
        assert make_policy("periodic", 3).period == 3

    def test_unknown_policy_raises(self):
        with pytest.raises(DistributedError):
            make_policy("sometimes")
